// Full compaction for TsStore: rewrites the store as one file of disjoint,
// latest-only chunks. Compaction applies the merge function of Definition
// 2.7 once, eagerly, which is exactly the work M4-LSM exists to avoid doing
// per query.
//
// Concurrency protocol: the merge runs on a snapshot taken under the lock,
// with the output file id and a version range reserved at snapshot time.
// One version per base chunk is reserved — output chunks are sliced at
// points_per_chunk just like flushed chunks, so there are never more of
// them than base chunks — and each output chunk gets its own version from
// that range, preserving the invariant that a version uniquely identifies
// a chunk (DataReader keys its per-query cache on it). Anything that lands
// after the snapshot (tombstones; flushes are excluded by the maintenance
// mutex) gets a version strictly larger than the whole reserved range and
// therefore still applies to the merged data. The swap keeps the
// post-snapshot suffix of the state vectors untouched and rewrites the
// mods file to exactly the surviving tombstones.

#include <algorithm>
#include <filesystem>
#include <map>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "storage/file_format.h"
#include "storage/store.h"

namespace tsviz {

namespace fs = std::filesystem;

Status TsStore::Compact() {
  Timer timer;
  uint64_t bytes_rewritten = 0;
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  TSVIZ_RETURN_IF_ERROR(FlushHoldingMaintenance());

  // Snapshot the state to merge and reserve the output's identity.
  std::shared_ptr<const StoreState> base;
  uint64_t file_id = 0;
  Version first_version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = state_;
    if (base->chunks.empty() && base->deletes.empty()) return Status::OK();
    file_id = next_file_id_++;
    first_version = next_version_;
    next_version_ += std::max<Version>(1, base->chunks.size());
  }

  // Merge: iterate chunks in ascending version so later writes overwrite
  // earlier ones, keeping the winning version for delete filtering.
  std::vector<ChunkHandle> ordered = base->chunks;
  std::sort(ordered.begin(), ordered.end(),
            [](const ChunkHandle& a, const ChunkHandle& b) {
              return a.meta->version < b.meta->version;
            });
  std::map<Timestamp, std::pair<Version, Value>> latest;
  for (const ChunkHandle& handle : ordered) {
    for (const PageInfo& page : handle.meta->pages) {
      TSVIZ_ASSIGN_OR_RETURN(
          std::string raw,
          handle.file->ReadRange(handle.meta->data_offset + page.offset,
                                 page.length));
      std::vector<Point> points;
      TSVIZ_RETURN_IF_ERROR(DecodePage(raw, &points));
      bytes_rewritten += page.length;
      for (const Point& p : points) {
        latest[p.t] = {handle.meta->version, p.v};
      }
    }
  }
  std::vector<Point> merged;
  merged.reserve(latest.size());
  for (const auto& [t, entry] : latest) {
    const auto& [version, value] = entry;
    bool deleted = false;
    for (const DeleteRecord& del : base->deletes) {
      if (del.Deletes(t, version)) {
        deleted = true;
        break;
      }
    }
    if (!deleted) merged.push_back(Point{t, value});
  }

  // Write the compacted file before touching the published state. Each
  // chunk gets its own version from the reserved range (see the protocol
  // note above).
  const std::string path = FilePath(file_id);
  std::shared_ptr<FileReader> reader;
  if (!merged.empty()) {
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer,
                           FileWriter::Create(path));
    Version chunk_version = first_version;
    for (size_t begin = 0; begin < merged.size();
         begin += config_.points_per_chunk) {
      size_t count =
          std::min(config_.points_per_chunk, merged.size() - begin);
      std::vector<Point> slice(merged.begin() + begin,
                               merged.begin() + begin + count);
      TSVIZ_RETURN_IF_ERROR(writer->AppendChunk(slice, chunk_version++,
                                                config_.encoding, nullptr));
    }
    TSVIZ_RETURN_IF_ERROR(writer->Finish());
    TSVIZ_ASSIGN_OR_RETURN(reader, FileReader::Open(path));
  }

  // Swap: the merged file replaces the base prefix; whatever was appended
  // after the snapshot (only tombstones — flushes hold the maintenance
  // mutex) is carried over verbatim.
  std::vector<std::string> old_paths;
  old_paths.reserve(base->files.size());
  for (const auto& file : base->files) old_paths.push_back(file->path());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<StoreState>();
    if (reader != nullptr) {
      for (const ChunkMetadata& meta : reader->chunks()) {
        next->chunks.push_back(ChunkHandle{reader, &meta});
      }
      next->files.push_back(reader);
    }
    next->files.insert(next->files.end(),
                       state_->files.begin() + base->files.size(),
                       state_->files.end());
    next->chunks.insert(next->chunks.end(),
                        state_->chunks.begin() + base->chunks.size(),
                        state_->chunks.end());
    next->deletes.assign(state_->deletes.begin() + base->deletes.size(),
                         state_->deletes.end());
    TSVIZ_RETURN_IF_ERROR(RewriteModsLocked(next->deletes));
    PublishLocked(std::move(next));
  }

  // The base files are no longer referenced by the published state; queries
  // that pinned them via a snapshot keep their open descriptors.
  std::error_code ec;
  for (const std::string& old_path : old_paths) {
    fs::remove(old_path, ec);
    if (ec) TSVIZ_WARN << "could not remove file" << Field("path", old_path);
  }

  static obs::Counter& compactions_total =
      obs::GetCounter("storage_compactions_total", "Full compaction runs");
  static obs::Counter& compaction_bytes = obs::GetCounter(
      "storage_compaction_bytes_rewritten_total",
      "Chunk data bytes read and rewritten by compaction");
  static obs::Histogram& compaction_millis = obs::GetHistogram(
      "storage_compaction_millis", "Compaction latency (ms)");
  compactions_total.Inc();
  compaction_bytes.Inc(bytes_rewritten);
  compaction_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

}  // namespace tsviz
