// Full compaction for TsStore: rewrites the store as one file of disjoint,
// latest-only chunks. Compaction applies the merge function of Definition
// 2.7 once, eagerly, which is exactly the work M4-LSM exists to avoid doing
// per query.

#include <algorithm>
#include <filesystem>
#include <map>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "storage/file_format.h"
#include "storage/store.h"

namespace tsviz {

namespace fs = std::filesystem;

Status TsStore::Compact() {
  Timer timer;
  uint64_t bytes_rewritten = 0;
  TSVIZ_RETURN_IF_ERROR(Flush());
  if (chunks_.empty()) {
    // Nothing to merge; still drop any orphan tombstones.
    deletes_.clear();
    std::error_code ec;
    fs::remove(ModsPath(), ec);
    return Status::OK();
  }

  // Merge: iterate chunks in ascending version so later writes overwrite
  // earlier ones, keeping the winning version for delete filtering.
  std::vector<ChunkHandle> ordered = chunks_;
  std::sort(ordered.begin(), ordered.end(),
            [](const ChunkHandle& a, const ChunkHandle& b) {
              return a.meta->version < b.meta->version;
            });
  std::map<Timestamp, std::pair<Version, Value>> latest;
  for (const ChunkHandle& handle : ordered) {
    for (const PageInfo& page : handle.meta->pages) {
      TSVIZ_ASSIGN_OR_RETURN(
          std::string raw,
          handle.file->ReadRange(handle.meta->data_offset + page.offset,
                                 page.length));
      std::vector<Point> points;
      TSVIZ_RETURN_IF_ERROR(DecodePage(raw, &points));
      bytes_rewritten += page.length;
      for (const Point& p : points) {
        latest[p.t] = {handle.meta->version, p.v};
      }
    }
  }
  std::vector<Point> merged;
  merged.reserve(latest.size());
  for (const auto& [t, entry] : latest) {
    const auto& [version, value] = entry;
    bool deleted = false;
    for (const DeleteRecord& del : deletes_) {
      if (del.Deletes(t, version)) {
        deleted = true;
        break;
      }
    }
    if (!deleted) merged.push_back(Point{t, value});
  }

  // Write the compacted file before touching the old state.
  const uint64_t file_id = next_file_id_++;
  const std::string path = FilePath(file_id);
  if (!merged.empty()) {
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer,
                           FileWriter::Create(path));
    for (size_t begin = 0; begin < merged.size();
         begin += config_.points_per_chunk) {
      size_t count =
          std::min(config_.points_per_chunk, merged.size() - begin);
      std::vector<Point> slice(merged.begin() + begin,
                               merged.begin() + begin + count);
      TSVIZ_RETURN_IF_ERROR(writer->AppendChunk(slice, next_version_++,
                                                config_.encoding, nullptr));
    }
    TSVIZ_RETURN_IF_ERROR(writer->Finish());
  }

  // Swap in the new state: drop old files, tombstones become no-ops.
  std::vector<std::string> old_paths;
  old_paths.reserve(files_.size());
  for (const auto& file : files_) old_paths.push_back(file->path());
  chunks_.clear();
  files_.clear();
  deletes_.clear();
  std::error_code ec;
  for (const std::string& old_path : old_paths) {
    fs::remove(old_path, ec);
    if (ec) TSVIZ_WARN << "could not remove file" << Field("path", old_path);
  }
  fs::remove(ModsPath(), ec);

  if (!merged.empty()) {
    TSVIZ_ASSIGN_OR_RETURN(std::shared_ptr<FileReader> reader,
                           FileReader::Open(path));
    for (const ChunkMetadata& meta : reader->chunks()) {
      chunks_.push_back(ChunkHandle{reader, &meta});
    }
    files_.push_back(std::move(reader));
  }
  ++state_version_;
  static obs::Counter& compactions_total =
      obs::GetCounter("storage_compactions_total", "Full compaction runs");
  static obs::Counter& compaction_bytes = obs::GetCounter(
      "storage_compaction_bytes_rewritten_total",
      "Chunk data bytes read and rewritten by compaction");
  static obs::Histogram& compaction_millis = obs::GetHistogram(
      "storage_compaction_millis", "Compaction latency (ms)");
  compactions_total.Inc();
  compaction_bytes.Inc(bytes_rewritten);
  compaction_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

}  // namespace tsviz
