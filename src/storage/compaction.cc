// Compaction for TsStore: rewrites file groups as disjoint, latest-only
// chunks. Compaction applies the merge function of Definition 2.7 once,
// eagerly, which is exactly the work M4-LSM exists to avoid doing per
// query. With time partitioning the merge is scoped to one partition's
// file group — partitions never overlap in time, so merging across a
// boundary could never deduplicate anything and would only rewrite cold
// bytes.
//
// Concurrency protocol: the merge runs on a snapshot taken under the lock,
// with the output file ids and a version range reserved at snapshot time.
// One version per base chunk is reserved — output chunks are sliced at
// points_per_chunk just like flushed chunks, so there are never more of
// them than base chunks — and each output chunk gets its own version from
// that range, preserving the invariant that a version uniquely identifies
// a chunk (DataReader keys its per-query cache on it). Anything that lands
// after the snapshot (tombstones; flushes are excluded by the maintenance
// mutex) gets a version strictly larger than the whole reserved range and
// therefore still applies to the merged data. The full Compact() swap
// keeps the post-snapshot suffix of the delete vector untouched and
// rewrites the mods file to exactly the surviving tombstones;
// CompactPartition() leaves the mods file alone because its tombstones may
// still cover other partitions' chunks.
//
// Crash ordering: publish, then unlink the base files, then rewrite the
// mods file — strictly in that order. A crash after the publish leaves old
// and new files coexisting (versions resolve the duplicates); a crash
// after the unlink leaves tombstones that are stale but harmless (every
// merged chunk's version exceeds every covered tombstone's). Rewriting the
// mods file any earlier would open a window where a crash resurrects
// deleted points: old files still on disk, their tombstones already gone.

#include <algorithm>
#include <map>

#include "common/env.h"
#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "storage/file_format.h"
#include "storage/store.h"

namespace tsviz {

namespace {

// Merges one partition's chunks in ascending version (later writes
// overwrite earlier ones at the same timestamp), applies the tombstones,
// and returns the surviving latest-only points in time order.
Result<std::vector<Point>> MergePartitionChunks(
    const std::vector<ChunkHandle>& chunks,
    const std::vector<DeleteRecord>& deletes, uint64_t* bytes_rewritten) {
  std::vector<ChunkHandle> ordered = chunks;
  std::sort(ordered.begin(), ordered.end(),
            [](const ChunkHandle& a, const ChunkHandle& b) {
              return a.meta->version < b.meta->version;
            });
  std::map<Timestamp, std::pair<Version, Value>> latest;
  for (const ChunkHandle& handle : ordered) {
    for (const PageInfo& page : handle.meta->pages) {
      TSVIZ_ASSIGN_OR_RETURN(
          std::string raw,
          handle.file->ReadRange(handle.meta->data_offset + page.offset,
                                 page.length));
      std::vector<Point> points;
      TSVIZ_RETURN_IF_ERROR(DecodePage(raw, &points));
      *bytes_rewritten += page.length;
      for (const Point& p : points) {
        latest[p.t] = {handle.meta->version, p.v};
      }
    }
  }
  std::vector<Point> merged;
  merged.reserve(latest.size());
  for (const auto& [t, entry] : latest) {
    const auto& [version, value] = entry;
    bool deleted = false;
    for (const DeleteRecord& del : deletes) {
      if (del.Deletes(t, version)) {
        deleted = true;
        break;
      }
    }
    if (!deleted) merged.push_back(Point{t, value});
  }
  return merged;
}

}  // namespace

Status TsStore::Compact() {
  Timer timer;
  uint64_t bytes_rewritten = 0;
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  TSVIZ_RETURN_IF_ERROR(FlushHoldingMaintenance());

  // Snapshot the state to merge and reserve one output identity per
  // non-empty partition.
  struct PartitionJob {
    size_t slot = 0;  // index into base->partitions
    uint64_t file_id = 0;
    Version first_version = 0;
    std::shared_ptr<FileReader> reader;  // merged output; null when empty
  };
  std::shared_ptr<const StoreState> base;
  std::vector<PartitionJob> jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = state_;
    if (base->chunks.empty() && base->deletes.empty()) return Status::OK();
    for (size_t i = 0; i < base->partitions.size(); ++i) {
      if (base->partitions[i].chunks.empty()) continue;
      PartitionJob job;
      job.slot = i;
      job.file_id = next_file_id_++;
      job.first_version = next_version_;
      next_version_ +=
          std::max<Version>(1, base->partitions[i].chunks.size());
      jobs.push_back(job);
    }
  }

  // Merge and write each partition's output before touching the published
  // state. Each output chunk gets its own version from the partition's
  // reserved range (see the protocol note above).
  for (PartitionJob& job : jobs) {
    const StorePartition& part = base->partitions[job.slot];
    TSVIZ_ASSIGN_OR_RETURN(
        std::vector<Point> merged,
        MergePartitionChunks(part.chunks, base->deletes, &bytes_rewritten));
    if (merged.empty()) continue;
    const std::string path = FilePath(job.file_id, part.index);
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer,
                           FileWriter::Create(path, durable_fsync()));
    Version chunk_version = job.first_version;
    for (size_t begin = 0; begin < merged.size();
         begin += config_.points_per_chunk) {
      size_t count =
          std::min(config_.points_per_chunk, merged.size() - begin);
      std::vector<Point> slice(merged.begin() + begin,
                               merged.begin() + begin + count);
      TSVIZ_RETURN_IF_ERROR(writer->AppendChunk(slice, chunk_version++,
                                                config_.encoding, nullptr));
    }
    TSVIZ_RETURN_IF_ERROR(writer->Finish());
    TSVIZ_ASSIGN_OR_RETURN(job.reader, FileReader::Open(path));
  }
  // Outputs complete and named; old files, tombstones and state untouched.
  TSVIZ_CRASHPOINT("compact.after_data");

  // Swap: the merged files replace the base partitions; whatever was
  // appended after the snapshot (only tombstones — flushes hold the
  // maintenance mutex) is carried over verbatim. The mods file is NOT
  // rewritten yet — see the crash-ordering note at the top of this file.
  std::vector<std::string> old_paths;
  old_paths.reserve(base->files.size());
  for (const auto& file : base->files) old_paths.push_back(file->path());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<StoreState>();
    for (const PartitionJob& job : jobs) {
      if (job.reader == nullptr) continue;
      const StorePartition& src = base->partitions[job.slot];
      StorePartition part;
      part.index = src.index;
      part.interval = src.interval;
      for (const ChunkMetadata& meta : job.reader->chunks()) {
        part.chunks.push_back(ChunkHandle{job.reader, &meta});
      }
      part.files.push_back(job.reader);
      next->partitions.push_back(std::move(part));
    }
    next->deletes.assign(state_->deletes.begin() + base->deletes.size(),
                         state_->deletes.end());
    PublishLocked(std::move(next));
  }
  TSVIZ_CRASHPOINT("compact.after_swap");

  // The base files are no longer referenced by the published state; queries
  // that pinned them via a snapshot keep their open descriptors. Partition
  // directories whose group merged to nothing are removed too (RemoveDir
  // refuses non-empty directories, which is exactly what we want).
  for (const std::string& old_path : old_paths) {
    if (Status s = GetEnv()->RemoveFile(old_path); !s.ok()) {
      TSVIZ_WARN << "could not remove file" << Field("path", old_path);
    }
  }
  for (const StorePartition& part : base->partitions) {
    if (part.legacy()) continue;
    (void)GetEnv()->RemoveDir(PartitionDirPath(part.index));
  }
  TSVIZ_CRASHPOINT("compact.after_unlink");

  // Only now that the covered chunks are gone is it safe to drop their
  // tombstones. A concurrent DeleteRange since the publish is already in
  // state_->deletes (and appended to the old mods file), so the rewrite
  // from the live vector cannot lose it.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TSVIZ_RETURN_IF_ERROR(RewriteModsLocked(state_->deletes));
  }

  static obs::Counter& compactions_total =
      obs::GetCounter("storage_compactions_total", "Full compaction runs");
  static obs::Counter& compaction_bytes = obs::GetCounter(
      "storage_compaction_bytes_rewritten_total",
      "Chunk data bytes read and rewritten by compaction");
  static obs::Histogram& compaction_millis = obs::GetHistogram(
      "storage_compaction_millis", "Compaction latency (ms)");
  compactions_total.Inc();
  compaction_bytes.Inc(bytes_rewritten);
  compaction_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

Status TsStore::CompactPartition(int64_t index) {
  Timer timer;
  uint64_t bytes_rewritten = 0;
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Snapshot and reserve. Unlike Compact() there is no flush first: this
  // entry point only reorganizes files already on disk, so the background
  // policy can compact a cold partition without forcing a memtable flush
  // of unrelated hot data.
  std::shared_ptr<const StoreState> base;
  const StorePartition* src = nullptr;
  uint64_t file_id = 0;
  Version first_version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = state_;
    for (const StorePartition& part : base->partitions) {
      if (part.index == index) {
        src = &part;
        break;
      }
    }
    if (src == nullptr || src->chunks.empty()) return Status::OK();
    file_id = next_file_id_++;
    first_version = next_version_;
    next_version_ += std::max<Version>(1, src->chunks.size());
  }

  TSVIZ_ASSIGN_OR_RETURN(
      std::vector<Point> merged,
      MergePartitionChunks(src->chunks, base->deletes, &bytes_rewritten));

  std::shared_ptr<FileReader> reader;
  if (!merged.empty()) {
    const std::string path = FilePath(file_id, index);
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer,
                           FileWriter::Create(path, durable_fsync()));
    Version chunk_version = first_version;
    for (size_t begin = 0; begin < merged.size();
         begin += config_.points_per_chunk) {
      size_t count =
          std::min(config_.points_per_chunk, merged.size() - begin);
      std::vector<Point> slice(merged.begin() + begin,
                               merged.begin() + begin + count);
      TSVIZ_RETURN_IF_ERROR(writer->AppendChunk(slice, chunk_version++,
                                                config_.encoding, nullptr));
    }
    TSVIZ_RETURN_IF_ERROR(writer->Finish());
    TSVIZ_ASSIGN_OR_RETURN(reader, FileReader::Open(path));
  }

  // Swap just this partition; every other partition's files — and the mods
  // file — stay untouched. The maintenance mutex excludes flushes, so the
  // partition's file set is exactly the snapshot's.
  std::vector<std::string> old_paths;
  old_paths.reserve(src->files.size());
  for (const auto& file : src->files) old_paths.push_back(file->path());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<StoreState>(*state_);
    auto it = std::find_if(
        next->partitions.begin(), next->partitions.end(),
        [index](const StorePartition& p) { return p.index == index; });
    if (it != next->partitions.end()) {
      if (reader == nullptr) {
        next->partitions.erase(it);
      } else {
        it->files.assign(1, reader);
        it->chunks.clear();
        for (const ChunkMetadata& meta : reader->chunks()) {
          it->chunks.push_back(ChunkHandle{reader, &meta});
        }
      }
    }
    PublishLocked(std::move(next));
  }

  for (const std::string& old_path : old_paths) {
    if (Status s = GetEnv()->RemoveFile(old_path); !s.ok()) {
      TSVIZ_WARN << "could not remove file" << Field("path", old_path);
    }
  }
  if (reader == nullptr && index != kLegacyPartitionIndex) {
    (void)GetEnv()->RemoveDir(PartitionDirPath(index));
  }

  static obs::Counter& partition_compactions = obs::GetCounter(
      "partition_compactions_total", "Single-partition compaction runs");
  static obs::Counter& compaction_bytes = obs::GetCounter(
      "storage_compaction_bytes_rewritten_total",
      "Chunk data bytes read and rewritten by compaction");
  static obs::Histogram& compaction_millis = obs::GetHistogram(
      "storage_compaction_millis", "Compaction latency (ms)");
  partition_compactions.Inc();
  compaction_bytes.Inc(bytes_rewritten);
  compaction_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

}  // namespace tsviz
