#include "storage/file_format.h"

#include "encoding/varint.h"

namespace tsviz {

std::string SerializeFileTail(const std::vector<ChunkMetadata>& chunks) {
  std::string footer;
  PutVarint64(&footer, chunks.size());
  for (const ChunkMetadata& meta : chunks) {
    meta.SerializeTo(&footer);
  }
  std::string tail = footer;
  PutFixed64(&tail, footer.size());
  PutFixed64(&tail, Fnv1a64(footer));
  tail.append(kFileMagic);
  return tail;
}

Result<std::vector<ChunkMetadata>> ParseFileTail(std::string_view tail,
                                                 uint64_t file_size) {
  if (tail.size() < kFileTrailerSize) {
    return Status::Corruption("file tail too small");
  }
  std::string_view trailer = tail.substr(tail.size() - kFileTrailerSize);
  TSVIZ_ASSIGN_OR_RETURN(uint64_t footer_len, GetFixed64(&trailer));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t checksum, GetFixed64(&trailer));
  if (trailer != kFileMagic) {
    return Status::Corruption("bad trailing magic");
  }
  if (footer_len + kFileTrailerSize > tail.size()) {
    return Status::Corruption("footer length exceeds provided tail");
  }
  std::string_view footer =
      tail.substr(tail.size() - kFileTrailerSize - footer_len, footer_len);
  if (Fnv1a64(footer) != checksum) {
    return Status::Corruption("footer checksum mismatch");
  }

  TSVIZ_ASSIGN_OR_RETURN(uint64_t n_chunks, GetVarint64(&footer));
  if (n_chunks > (1u << 26)) return Status::Corruption("absurd chunk count");
  std::vector<ChunkMetadata> chunks;
  chunks.reserve(n_chunks);
  for (uint64_t i = 0; i < n_chunks; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(ChunkMetadata meta,
                           ChunkMetadata::Deserialize(&footer));
    if (meta.data_offset + meta.data_length > file_size) {
      return Status::Corruption("chunk blob extends past end of file");
    }
    chunks.push_back(std::move(meta));
  }
  return chunks;
}

void SerializeDeleteRecord(const DeleteRecord& del, std::string* dst) {
  PutFixed64(dst, static_cast<uint64_t>(del.range.start));
  PutFixed64(dst, static_cast<uint64_t>(del.range.end));
  PutFixed64(dst, del.version);
}

Result<DeleteRecord> ParseDeleteRecord(std::string_view* src) {
  DeleteRecord del;
  TSVIZ_ASSIGN_OR_RETURN(uint64_t start, GetFixed64(src));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t end, GetFixed64(src));
  TSVIZ_ASSIGN_OR_RETURN(del.version, GetFixed64(src));
  del.range.start = static_cast<Timestamp>(start);
  del.range.end = static_cast<Timestamp>(end);
  return del;
}

}  // namespace tsviz
