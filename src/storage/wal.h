#ifndef TSVIZ_STORAGE_WAL_H_
#define TSVIZ_STORAGE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"

namespace tsviz {

// Write-ahead log for the memtable: every point write and range delete is
// appended (checksummed) before it is applied, so an unflushed memtable
// survives a crash. The log is truncated after each successful flush — the
// flushed chunks and the .mods file then carry the state.
//
// Record layout: u8 type | payload | fixed64 FNV-1a of (type | payload).
//   type 1 (put):    fixed64 timestamp, fixed64 value bits
//   type 2 (delete): fixed64 start, fixed64 end
//
// Appends are unbuffered (one write(2) each), so an acknowledged record
// survives a process crash; with `durable` the segment is additionally
// fsynced at rotation/reset boundaries for power-loss safety. A failed
// append truncates the segment back to the last good record, so a torn
// write can never sit in the middle of the log.
//
// Replay is torn-tail tolerant: a truncated or corrupt record ends the
// replay at the last good record, which is the standard WAL contract for a
// crash mid-append.

struct WalRecord {
  enum class Type : uint8_t { kPut = 1, kDelete = 2 };
  Type type = Type::kPut;
  Point point;      // kPut
  TimeRange range;  // kDelete

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

class WalWriter {
 public:
  // Opens the log for appending (creating it if missing). With `durable`,
  // segment boundaries (rotation, reset) fsync before renaming/truncating.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 bool durable = false);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status AppendPut(const Point& p);
  Status AppendDelete(const TimeRange& range);

  // Batched put: all records are encoded into one buffer and land in a
  // single write(2), so an N-point ingest batch costs one physical WAL
  // interaction instead of N. Each record keeps its own checksum — replay
  // is unchanged, and a torn tail mid-batch replays the batch's prefix,
  // exactly like N separate appends interrupted at the same byte.
  Status AppendPuts(const std::vector<Point>& points);

  void set_durable(bool durable) { durable_ = durable; }

  // Discards the log contents (after a successful flush).
  Status Reset();

  // Segment rotation for background flush: moves the current log to
  // `old_path` (clobbering any leftover segment there) and keeps appending
  // to a fresh, empty log at the original path. The caller owns the old
  // segment's lifetime — it is deleted once the flush that drained those
  // records lands, and replayed before the active log on recovery.
  //
  // On failure the live segment is left intact at the original path and
  // appends keep working; only if the filesystem also refuses to undo a
  // half-made rotation does the writer latch into a fail-stop state where
  // every later operation returns the error.
  Status RotateTo(const std::string& old_path);

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path,
            bool durable);
  Status AppendRecord(const WalRecord& record);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  bool durable_;
  // Set when the on-disk state no longer matches what the writer believes
  // (failed truncate-back, failed rotation undo). Fail-stop: no further
  // appends are accepted, so the damage cannot spread past the point the
  // caller was already told about.
  bool broken_ = false;
};

// Replays a log. Missing file yields an empty vector; a corrupt tail stops
// the replay (records before it are returned). *truncated_tail (optional)
// reports whether a bad tail was skipped.
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* truncated_tail = nullptr);

// One incremental read of a WAL segment, for consumers that tail a live log
// (replication relays, tools) instead of replaying it whole.
struct WalSegmentSlice {
  std::vector<WalRecord> records;
  // Byte offset just past the last whole record decoded; pass it back as
  // the next call's `offset` to resume. Never points into a record.
  uint64_t next_offset = 0;
  // A checksum/size mismatch stopped the decode before the end of the
  // segment. On a live log this is usually an append racing the read and
  // clears on the next call; after a crash it marks the torn tail.
  bool truncated_tail = false;
};

// Decodes whole records from byte `offset` to the end of the segment.
// `offset` must be a record boundary previously returned in next_offset (or
// 0). A missing file yields an empty slice with next_offset == offset, so
// tailing a not-yet-created log is not an error.
Result<WalSegmentSlice> ReadWalFrom(const std::string& path, uint64_t offset);

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_WAL_H_
