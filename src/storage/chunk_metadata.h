#ifndef TSVIZ_STORAGE_CHUNK_METADATA_H_
#define TSVIZ_STORAGE_CHUNK_METADATA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"
#include "encoding/page.h"
#include "index/step_regression.h"

namespace tsviz {

// The four M4 representation points every chunk maintains as metadata
// (Section 2.2.1): {G(C) | G in {FP, LP, BP, TP}}.
struct ChunkStats {
  Point first;   // FP(C): minimal time
  Point last;    // LP(C): maximal time
  Point bottom;  // BP(C): a point with minimal value
  Point top;     // TP(C): a point with maximal value

  friend bool operator==(const ChunkStats&, const ChunkStats&) = default;
};

// Everything a reader can know about a chunk without touching its data:
// statistics, page directory, learned index, and the blob's location in its
// file. Stored in the file footer (the ChunkMetadata region of a TsFile).
struct ChunkMetadata {
  Version version = 0;
  uint64_t count = 0;
  ChunkStats stats;
  std::vector<PageInfo> pages;
  StepRegressionModel index;
  uint64_t data_offset = 0;  // chunk blob offset within the file
  uint64_t data_length = 0;  // chunk blob length in bytes

  // The chunk's time interval [FP(C).t, LP(C).t].
  TimeRange Interval() const { return TimeRange(stats.first.t, stats.last.t); }

  void SerializeTo(std::string* dst) const;
  static Result<ChunkMetadata> Deserialize(std::string_view* src);

  friend bool operator==(const ChunkMetadata&,
                         const ChunkMetadata&) = default;
};

// Computes the four statistics from sorted points (ties on extreme values
// resolved to the earliest point, matching the writer).
ChunkStats ComputeChunkStats(const std::vector<Point>& points);

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_CHUNK_METADATA_H_
