#include "storage/page_cache.h"

#include "obs/metrics.h"

namespace tsviz {

namespace {

// Default budget: enough for a dashboard session's working set without
// being noticeable next to the OS page cache. SET page_cache_bytes / the
// DatabaseConfig knob override it.
constexpr size_t kDefaultCapacityBytes = 64u << 20;

// Accounting overhead per entry (list/map nodes, control blocks). Keeping
// the estimate on the high side makes the byte bound honest.
constexpr size_t kEntryOverheadBytes = 128;

obs::Counter& HitsCounter() {
  static obs::Counter& c = obs::GetCounter(
      "page_cache_hits_total", "Shared page cache hits (decoded pages)");
  return c;
}

obs::Counter& MissesCounter() {
  static obs::Counter& c = obs::GetCounter(
      "page_cache_misses_total", "Shared page cache misses");
  return c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter& c = obs::GetCounter(
      "page_cache_evictions_total",
      "Shared page cache entries evicted (LRU / file close / corruption)");
  return c;
}

}  // namespace

size_t SharedPageCache::KeyHash::operator()(const PageKey& key) const {
  // splitmix64-style mix over the three fields.
  uint64_t h = key.file_id;
  h ^= key.chunk_offset + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= key.page_index + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return static_cast<size_t>(h);
}

SharedPageCache& SharedPageCache::Instance() {
  static SharedPageCache* cache = [] {
    auto* c = new SharedPageCache(kDefaultCapacityBytes);
    obs::MetricsRegistry::Instance().RegisterCallback(
        "page_cache_bytes", "Decoded bytes resident in the shared page cache",
        [c] { return static_cast<double>(c->size_bytes()); });
    obs::MetricsRegistry::Instance().RegisterCallback(
        "page_cache_entries", "Pages resident in the shared page cache",
        [c] { return static_cast<double>(c->entries()); });
    return c;
  }();
  return *cache;
}

SharedPageCache::SharedPageCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  // Initialize the counters before any operation can run under mutex_: a
  // first-use registration there would take the metrics-registry mutex
  // while holding the cache mutex — the inverse order of a SHOW METRICS
  // scrape invoking the size callbacks.
  HitsCounter();
  MissesCounter();
  EvictionsCounter();
}

SharedPageCache::PagePtr SharedPageCache::Lookup(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter().Inc();
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  HitsCounter().Inc();
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
  return it->second->points;
}

void SharedPageCache::Insert(const PageKey& key, PagePtr points) {
  if (points == nullptr) return;
  size_t bytes = points->size() * sizeof(Point) + kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_bytes_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent loaders may decode the same cold page; keep the fresher
    // copy and rebalance the byte accounting.
    size_bytes_ -= it->second->bytes;
    it->second->points = std::move(points);
    it->second->bytes = bytes;
    size_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(points), bytes});
    index_[key] = lru_.begin();
    size_bytes_ += bytes;
  }
  EvictTailLocked();
}

void SharedPageCache::Erase(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  RemoveLocked(it->second);
  EvictionsCounter().Inc();
}

void SharedPageCache::EvictFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->key.file_id == file_id) {
      RemoveLocked(it);
      ++evicted;
    }
    it = next;
  }
  if (evicted > 0) EvictionsCounter().Inc(evicted);
}

void SharedPageCache::set_capacity_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = bytes;
  EvictTailLocked();
}

size_t SharedPageCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_bytes_;
}

size_t SharedPageCache::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_bytes_;
}

size_t SharedPageCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void SharedPageCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  size_bytes_ = 0;
}

void SharedPageCache::EvictTailLocked() {
  while (size_bytes_ > capacity_bytes_ && !lru_.empty()) {
    RemoveLocked(std::prev(lru_.end()));
    EvictionsCounter().Inc();
  }
}

void SharedPageCache::RemoveLocked(std::list<Entry>::iterator it) {
  size_bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace tsviz
