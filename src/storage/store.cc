#include "storage/store.h"

#include <algorithm>
#include <cmath>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "storage/file_format.h"

namespace tsviz {

namespace fs = std::filesystem;

namespace {

// Data files are named f<id>.tsdat; ids increase with creation order.
constexpr char kDataSuffix[] = ".tsdat";

Result<uint64_t> ParseFileId(const std::string& name) {
  if (name.size() < 2 || name[0] != 'f') {
    return Status::InvalidArgument("not a data file: " + name);
  }
  uint64_t id = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("not a data file: " + name);
    }
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

Result<std::unique_ptr<TsStore>> TsStore::Open(StoreConfig config) {
  if (config.data_dir.empty()) {
    return Status::InvalidArgument("data_dir must be set");
  }
  if (config.points_per_chunk == 0 || config.memtable_flush_threshold == 0) {
    return Status::InvalidArgument("chunk/flush sizes must be positive");
  }
  std::error_code ec;
  fs::create_directories(config.data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + config.data_dir + ": " +
                           ec.message());
  }
  auto store = std::unique_ptr<TsStore>(new TsStore(std::move(config)));
  TSVIZ_RETURN_IF_ERROR(store->Recover());
  return store;
}

Status TsStore::Recover() {
  // Collect data files ordered by id so chunk versions replay in order.
  std::vector<std::pair<uint64_t, std::string>> data_files;
  for (const auto& entry : fs::directory_iterator(config_.data_dir)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > sizeof(kDataSuffix) &&
        name.ends_with(kDataSuffix)) {
      std::string stem = name.substr(0, name.size() - strlen(kDataSuffix));
      auto id = ParseFileId(stem);
      if (id.ok()) data_files.emplace_back(*id, entry.path().string());
    }
  }
  std::sort(data_files.begin(), data_files.end());

  for (const auto& [id, path] : data_files) {
    TSVIZ_ASSIGN_OR_RETURN(std::shared_ptr<FileReader> reader,
                           FileReader::Open(path));
    for (const ChunkMetadata& meta : reader->chunks()) {
      chunks_.push_back(ChunkHandle{reader, &meta});
      next_version_ = std::max(next_version_, meta.version + 1);
    }
    files_.push_back(std::move(reader));
    next_file_id_ = std::max(next_file_id_, id + 1);
  }

  // Replay delete tombstones.
  std::FILE* mods = std::fopen(ModsPath().c_str(), "rb");
  if (mods != nullptr) {
    std::string content;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), mods)) > 0) {
      content.append(buffer, n);
    }
    std::fclose(mods);
    std::string_view cursor = content;
    if (cursor.size() < kModsMagic.size() ||
        cursor.substr(0, kModsMagic.size()) != kModsMagic) {
      return Status::Corruption("bad mods file magic");
    }
    cursor.remove_prefix(kModsMagic.size());
    while (!cursor.empty()) {
      TSVIZ_ASSIGN_OR_RETURN(DeleteRecord del, ParseDeleteRecord(&cursor));
      deletes_.push_back(del);
      next_version_ = std::max(next_version_, del.version + 1);
    }
  }

  // Replay the WAL into the memtable (deletes there are the memtable
  // purges; their versioned tombstones were already restored from mods).
  if (config_.enable_wal) {
    bool truncated = false;
    TSVIZ_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           ReadWal(WalPath(), &truncated));
    for (const WalRecord& record : records) {
      if (record.type == WalRecord::Type::kPut) {
        memtable_.Put(record.point.t, record.point.v);
      } else {
        memtable_.EraseRange(record.range);
      }
    }
    TSVIZ_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath()));
    if (truncated) {
      TSVIZ_WARN << "wal had a torn tail; rewriting the log"
                 << Field("replayed", records.size());
      TSVIZ_RETURN_IF_ERROR(wal_->Reset());
      for (const WalRecord& record : records) {
        TSVIZ_RETURN_IF_ERROR(
            record.type == WalRecord::Type::kPut
                ? wal_->AppendPut(record.point)
                : wal_->AppendDelete(record.range));
      }
    }
  }
  return Status::OK();
}

std::string TsStore::FilePath(uint64_t file_id) const {
  return config_.data_dir + "/f" + std::to_string(file_id) + kDataSuffix;
}

std::string TsStore::ModsPath() const {
  return config_.data_dir + "/deletes.mods";
}

std::string TsStore::WalPath() const { return config_.data_dir + "/wal.log"; }

Status TsStore::Write(Timestamp t, Value v) {
  if (!std::isfinite(v)) {
    // NaN/Inf would poison the value-ordered chunk statistics (BP/TP) and
    // the merge semantics; reject at the door like IoTDB does.
    return Status::InvalidArgument("value must be finite");
  }
  if (wal_ != nullptr) {
    TSVIZ_RETURN_IF_ERROR(wal_->AppendPut(Point{t, v}));
  }
  memtable_.Put(t, v);
  if (memtable_.size() >= config_.memtable_flush_threshold) {
    return Flush();
  }
  return Status::OK();
}

Status TsStore::WriteAll(const std::vector<Point>& points) {
  for (const Point& p : points) {
    TSVIZ_RETURN_IF_ERROR(Write(p.t, p.v));
  }
  return Status::OK();
}

Status TsStore::DeleteRange(const TimeRange& range) {
  if (range.Empty()) {
    return Status::InvalidArgument("empty delete range");
  }
  DeleteRecord del{range, next_version_++};
  TSVIZ_RETURN_IF_ERROR(AppendModsRecord(del));
  if (wal_ != nullptr) {
    TSVIZ_RETURN_IF_ERROR(wal_->AppendDelete(range));
  }
  deletes_.push_back(del);
  // Deletes apply to unflushed data immediately; flushed chunks are
  // filtered at read time via the versioned tombstone.
  memtable_.EraseRange(range);
  ++state_version_;
  static obs::Counter& deletes_total = obs::GetCounter(
      "storage_deletes_total", "Range tombstones appended");
  deletes_total.Inc();
  return Status::OK();
}

Status TsStore::AppendModsRecord(const DeleteRecord& del) {
  const std::string path = ModsPath();
  const bool fresh = !fs::exists(path);
  std::FILE* mods = std::fopen(path.c_str(), "ab");
  if (mods == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string record;
  if (fresh) record.append(kModsMagic);
  SerializeDeleteRecord(del, &record);
  size_t written = std::fwrite(record.data(), 1, record.size(), mods);
  int close_rc = std::fclose(mods);
  if (written != record.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status TsStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  Timer timer;
  std::vector<Point> points = memtable_.Drain();

  const uint64_t file_id = next_file_id_++;
  const std::string path = FilePath(file_id);
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer,
                         FileWriter::Create(path));
  for (size_t begin = 0; begin < points.size();
       begin += config_.points_per_chunk) {
    size_t count = std::min(config_.points_per_chunk, points.size() - begin);
    std::vector<Point> slice(points.begin() + begin,
                             points.begin() + begin + count);
    TSVIZ_RETURN_IF_ERROR(writer->AppendChunk(slice, next_version_++,
                                              config_.encoding, nullptr));
  }
  TSVIZ_RETURN_IF_ERROR(writer->Finish());

  TSVIZ_ASSIGN_OR_RETURN(std::shared_ptr<FileReader> reader,
                         FileReader::Open(path));
  for (const ChunkMetadata& meta : reader->chunks()) {
    chunks_.push_back(ChunkHandle{reader, &meta});
  }
  files_.push_back(std::move(reader));
  if (wal_ != nullptr) {
    TSVIZ_RETURN_IF_ERROR(wal_->Reset());
  }
  ++state_version_;
  static obs::Counter& flushes_total = obs::GetCounter(
      "storage_flushes_total", "Memtable flushes to data files");
  static obs::Counter& flush_points_total = obs::GetCounter(
      "storage_flush_points_total", "Points written by memtable flushes");
  static obs::Histogram& flush_millis = obs::GetHistogram(
      "storage_flush_millis", "Memtable flush latency (ms)");
  flushes_total.Inc();
  flush_points_total.Inc(points.size());
  flush_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

uint64_t TsStore::TotalStoredPoints() const {
  uint64_t total = 0;
  for (const ChunkHandle& chunk : chunks_) {
    total += chunk.meta->count;
  }
  return total;
}

TimeRange TsStore::DataInterval() const {
  if (chunks_.empty()) return TimeRange(1, 0);  // empty
  Timestamp lo = kMaxTimestamp;
  Timestamp hi = kMinTimestamp;
  for (const ChunkHandle& chunk : chunks_) {
    lo = std::min(lo, chunk.meta->stats.first.t);
    hi = std::max(hi, chunk.meta->stats.last.t);
  }
  return TimeRange(lo, hi);
}

size_t TsStore::CountUnsequenceFiles() const {
  size_t unseq = 0;
  Timestamp max_end = kMinTimestamp;
  bool any = false;
  for (const auto& file : files_) {
    Timestamp file_min = kMaxTimestamp;
    Timestamp file_max = kMinTimestamp;
    for (const ChunkMetadata& meta : file->chunks()) {
      file_min = std::min(file_min, meta.stats.first.t);
      file_max = std::max(file_max, meta.stats.last.t);
    }
    if (file->chunks().empty()) continue;
    if (any && file_min <= max_end) ++unseq;
    max_end = std::max(max_end, file_max);
    any = true;
  }
  return unseq;
}

double TsStore::OverlapFraction() const {
  if (chunks_.size() < 2) return 0.0;
  std::vector<TimeRange> intervals;
  intervals.reserve(chunks_.size());
  for (const ChunkHandle& chunk : chunks_) {
    intervals.push_back(chunk.meta->Interval());
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeRange& a, const TimeRange& b) {
              return a.start < b.start;
            });
  // With intervals sorted by start, interval i overlaps an earlier one iff
  // its start is <= the max end seen so far, and a later one iff the next
  // start is <= its end.
  size_t overlapping = 0;
  Timestamp max_end_before = kMinTimestamp;
  for (size_t i = 0; i < intervals.size(); ++i) {
    bool with_earlier = i > 0 && intervals[i].start <= max_end_before;
    bool with_later =
        i + 1 < intervals.size() && intervals[i + 1].start <= intervals[i].end;
    if (with_earlier || with_later) ++overlapping;
    max_end_before = std::max(max_end_before, intervals[i].end);
  }
  return static_cast<double>(overlapping) /
         static_cast<double>(intervals.size());
}

}  // namespace tsviz
