#include "storage/store.h"

#include <algorithm>
#include <cmath>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "storage/file_format.h"

namespace tsviz {

namespace fs = std::filesystem;

namespace {

// Data files are named f<id>.tsdat; ids increase with creation order.
constexpr char kDataSuffix[] = ".tsdat";

Result<uint64_t> ParseFileId(const std::string& name) {
  if (name.size() < 2 || name[0] != 'f') {
    return Status::InvalidArgument("not a data file: " + name);
  }
  uint64_t id = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("not a data file: " + name);
    }
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

StoreView::StoreView(const TsStore& store) : state_(store.SnapshotState()) {}

TimeRange StoreView::DataInterval() const {
  if (state_->chunks.empty()) return TimeRange(1, 0);  // empty
  Timestamp lo = kMaxTimestamp;
  Timestamp hi = kMinTimestamp;
  for (const ChunkHandle& chunk : state_->chunks) {
    lo = std::min(lo, chunk.meta->stats.first.t);
    hi = std::max(hi, chunk.meta->stats.last.t);
  }
  return TimeRange(lo, hi);
}

std::shared_ptr<const StoreState> TsStore::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void TsStore::PublishLocked(std::shared_ptr<StoreState> next) {
  next->owner = this;
  next->state_version = state_->state_version + 1;
  state_ = std::move(next);
}

Result<std::unique_ptr<TsStore>> TsStore::Open(StoreConfig config) {
  if (config.data_dir.empty()) {
    return Status::InvalidArgument("data_dir must be set");
  }
  if (config.points_per_chunk == 0 || config.memtable_flush_threshold == 0) {
    return Status::InvalidArgument("chunk/flush sizes must be positive");
  }
  std::error_code ec;
  fs::create_directories(config.data_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + config.data_dir + ": " +
                           ec.message());
  }
  auto store = std::unique_ptr<TsStore>(new TsStore(std::move(config)));
  TSVIZ_RETURN_IF_ERROR(store->Recover());
  return store;
}

Status TsStore::Recover() {
  auto state = std::make_shared<StoreState>();
  state->owner = this;

  // Collect data files ordered by id so chunk versions replay in order.
  std::vector<std::pair<uint64_t, std::string>> data_files;
  for (const auto& entry : fs::directory_iterator(config_.data_dir)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > sizeof(kDataSuffix) &&
        name.ends_with(kDataSuffix)) {
      std::string stem = name.substr(0, name.size() - strlen(kDataSuffix));
      auto id = ParseFileId(stem);
      if (id.ok()) data_files.emplace_back(*id, entry.path().string());
    }
  }
  std::sort(data_files.begin(), data_files.end());

  for (const auto& [id, path] : data_files) {
    TSVIZ_ASSIGN_OR_RETURN(std::shared_ptr<FileReader> reader,
                           FileReader::Open(path));
    for (const ChunkMetadata& meta : reader->chunks()) {
      state->chunks.push_back(ChunkHandle{reader, &meta});
      next_version_ = std::max(next_version_, meta.version + 1);
    }
    state->files.push_back(std::move(reader));
    next_file_id_ = std::max(next_file_id_, id + 1);
  }

  // Replay delete tombstones.
  std::FILE* mods = std::fopen(ModsPath().c_str(), "rb");
  if (mods != nullptr) {
    std::string content;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), mods)) > 0) {
      content.append(buffer, n);
    }
    std::fclose(mods);
    std::string_view cursor = content;
    if (cursor.size() < kModsMagic.size() ||
        cursor.substr(0, kModsMagic.size()) != kModsMagic) {
      return Status::Corruption("bad mods file magic");
    }
    cursor.remove_prefix(kModsMagic.size());
    while (!cursor.empty()) {
      TSVIZ_ASSIGN_OR_RETURN(DeleteRecord del, ParseDeleteRecord(&cursor));
      state->deletes.push_back(del);
      next_version_ = std::max(next_version_, del.version + 1);
    }
  }

  state_ = std::move(state);

  // Replay the WAL into the memtable (deletes there are the memtable
  // purges; their versioned tombstones were already restored from mods). A
  // crash between a flush's segment rotation and its completion leaves the
  // pinned old segment behind; it replays first, before the active log.
  if (config_.enable_wal) {
    const bool had_old_segment = fs::exists(OldWalPath());
    std::vector<WalRecord> records;
    bool truncated = false;
    if (had_old_segment) {
      bool old_truncated = false;
      TSVIZ_ASSIGN_OR_RETURN(records, ReadWal(OldWalPath(), &old_truncated));
      truncated = old_truncated;
    }
    {
      bool active_truncated = false;
      TSVIZ_ASSIGN_OR_RETURN(std::vector<WalRecord> active,
                             ReadWal(WalPath(), &active_truncated));
      truncated = truncated || active_truncated;
      records.insert(records.end(), active.begin(), active.end());
    }
    for (const WalRecord& record : records) {
      if (record.type == WalRecord::Type::kPut) {
        memtable_.Put(record.point.t, record.point.v);
      } else {
        memtable_.EraseRange(record.range);
      }
    }
    TSVIZ_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath()));
    if (truncated || had_old_segment) {
      // Consolidate everything into the active log so the old segment can
      // be dropped (and a torn tail rewritten).
      if (truncated) {
        TSVIZ_WARN << "wal had a torn tail; rewriting the log"
                   << Field("replayed", records.size());
      }
      TSVIZ_RETURN_IF_ERROR(wal_->Reset());
      for (const WalRecord& record : records) {
        TSVIZ_RETURN_IF_ERROR(
            record.type == WalRecord::Type::kPut
                ? wal_->AppendPut(record.point)
                : wal_->AppendDelete(record.range));
      }
      std::error_code ec;
      fs::remove(OldWalPath(), ec);
    }
  }
  return Status::OK();
}

std::string TsStore::FilePath(uint64_t file_id) const {
  return config_.data_dir + "/f" + std::to_string(file_id) + kDataSuffix;
}

std::string TsStore::ModsPath() const {
  return config_.data_dir + "/deletes.mods";
}

std::string TsStore::WalPath() const { return config_.data_dir + "/wal.log"; }

std::string TsStore::OldWalPath() const {
  return config_.data_dir + "/wal.old.log";
}

size_t TsStore::memtable_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memtable_.size();
}

size_t TsStore::memtable_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memtable_.ApproxBytes();
}

Status TsStore::Write(Timestamp t, Value v) {
  if (!std::isfinite(v)) {
    // NaN/Inf would poison the value-ordered chunk statistics (BP/TP) and
    // the merge semantics; reject at the door like IoTDB does.
    return Status::InvalidArgument("value must be finite");
  }
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (wal_ != nullptr) {
      TSVIZ_RETURN_IF_ERROR(wal_->AppendPut(Point{t, v}));
    }
    memtable_.Put(t, v);
    flush_now = memtable_.size() >= config_.memtable_flush_threshold;
  }
  // The inline (foreground) flush of the size threshold; taken outside the
  // lock so Flush can acquire the maintenance mutex first.
  if (flush_now) return Flush();
  return Status::OK();
}

Status TsStore::WriteAll(const std::vector<Point>& points) {
  for (const Point& p : points) {
    TSVIZ_RETURN_IF_ERROR(Write(p.t, p.v));
  }
  return Status::OK();
}

Status TsStore::DeleteRange(const TimeRange& range) {
  if (range.Empty()) {
    return Status::InvalidArgument("empty delete range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  DeleteRecord del{range, next_version_++};
  TSVIZ_RETURN_IF_ERROR(AppendModsRecordLocked(del));
  if (wal_ != nullptr) {
    TSVIZ_RETURN_IF_ERROR(wal_->AppendDelete(range));
  }
  auto next = std::make_shared<StoreState>(*state_);
  next->deletes.push_back(del);
  PublishLocked(std::move(next));
  // Deletes apply to unflushed data immediately; flushed chunks are
  // filtered at read time via the versioned tombstone.
  memtable_.EraseRange(range);
  static obs::Counter& deletes_total = obs::GetCounter(
      "storage_deletes_total", "Range tombstones appended");
  deletes_total.Inc();
  return Status::OK();
}

Status TsStore::AppendModsRecordLocked(const DeleteRecord& del) {
  const std::string path = ModsPath();
  const bool fresh = !fs::exists(path);
  std::FILE* mods = std::fopen(path.c_str(), "ab");
  if (mods == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string record;
  if (fresh) record.append(kModsMagic);
  SerializeDeleteRecord(del, &record);
  size_t written = std::fwrite(record.data(), 1, record.size(), mods);
  int close_rc = std::fclose(mods);
  if (written != record.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status TsStore::RewriteModsLocked(const std::vector<DeleteRecord>& deletes) {
  const std::string path = ModsPath();
  std::error_code ec;
  if (deletes.empty()) {
    fs::remove(path, ec);
    return Status::OK();
  }
  const std::string tmp = path + ".tmp";
  std::FILE* mods = std::fopen(tmp.c_str(), "wb");
  if (mods == nullptr) {
    return Status::IoError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  std::string content(kModsMagic);
  for (const DeleteRecord& del : deletes) {
    SerializeDeleteRecord(del, &content);
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), mods);
  int close_rc = std::fclose(mods);
  if (written != content.size() || close_rc != 0) {
    return Status::IoError("short write to " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot replace " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status TsStore::Flush() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  return FlushHoldingMaintenance();
}

Status TsStore::FlushHoldingMaintenance() {
  Timer timer;
  std::vector<Point> points;
  uint64_t file_id = 0;
  Version first_version = 0;
  bool rotated = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (memtable_.empty()) return Status::OK();
    points = memtable_.Drain();
    if (wal_ != nullptr) {
      // Pin the drained points' log records in a side segment; writes that
      // land while the flush encodes go to a fresh active log, so neither
      // the flushed nor the concurrent points can be lost by a crash.
      TSVIZ_RETURN_IF_ERROR(wal_->RotateTo(OldWalPath()));
      rotated = true;
    }
    file_id = next_file_id_++;
    const size_t num_chunks =
        (points.size() + config_.points_per_chunk - 1) /
        config_.points_per_chunk;
    first_version = next_version_;
    next_version_ += num_chunks;
  }

  const std::string path = FilePath(file_id);
  // Undo on failure: the drained points go back to the memtable (without
  // clobbering newer concurrent writes at the same timestamps) and back
  // into the active log; the pinned segment and any partial file drop.
  auto fail = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Point& p : points) {
      memtable_.PutIfAbsent(p.t, p.v);
      if (wal_ != nullptr) (void)wal_->AppendPut(p);
    }
    std::error_code ec;
    fs::remove(path, ec);
    if (rotated) fs::remove(OldWalPath(), ec);
    return status;
  };

  auto writer_or = FileWriter::Create(path);
  if (!writer_or.ok()) return fail(writer_or.status());
  std::unique_ptr<FileWriter> writer = std::move(writer_or).value();
  size_t chunk_index = 0;
  for (size_t begin = 0; begin < points.size();
       begin += config_.points_per_chunk) {
    size_t count = std::min(config_.points_per_chunk, points.size() - begin);
    std::vector<Point> slice(points.begin() + begin,
                             points.begin() + begin + count);
    Status s = writer->AppendChunk(slice, first_version + chunk_index++,
                                   config_.encoding, nullptr);
    if (!s.ok()) return fail(s);
  }
  if (Status s = writer->Finish(); !s.ok()) return fail(s);

  auto reader_or = FileReader::Open(path);
  if (!reader_or.ok()) return fail(reader_or.status());
  std::shared_ptr<FileReader> reader = std::move(reader_or).value();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<StoreState>(*state_);
    for (const ChunkMetadata& meta : reader->chunks()) {
      next->chunks.push_back(ChunkHandle{reader, &meta});
    }
    next->files.push_back(std::move(reader));
    PublishLocked(std::move(next));
  }
  if (rotated) {
    // The flushed file now carries the pinned segment's data.
    std::error_code ec;
    fs::remove(OldWalPath(), ec);
  }
  static obs::Counter& flushes_total = obs::GetCounter(
      "storage_flushes_total", "Memtable flushes to data files");
  static obs::Counter& flush_points_total = obs::GetCounter(
      "storage_flush_points_total", "Points written by memtable flushes");
  static obs::Histogram& flush_millis = obs::GetHistogram(
      "storage_flush_millis", "Memtable flush latency (ms)");
  flushes_total.Inc();
  flush_points_total.Inc(points.size());
  flush_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

Status TsStore::ExpireTtl(int64_t ttl, bool* expired) {
  if (expired != nullptr) *expired = false;
  if (ttl <= 0) {
    return Status::InvalidArgument("ttl must be positive");
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  TimeRange interval = CurrentView().DataInterval();
  if (interval.Empty()) return Status::OK();
  if (interval.end < kMinTimestamp + ttl) return Status::OK();  // underflow
  const Timestamp watermark = interval.end - ttl;
  if (watermark <= interval.start) return Status::OK();  // nothing older
  if (watermark <= ttl_watermark_) return Status::OK();  // already covered
  TSVIZ_RETURN_IF_ERROR(
      DeleteRange(TimeRange(interval.start, watermark - 1)));
  ttl_watermark_ = watermark;
  if (expired != nullptr) *expired = true;
  static obs::Counter& ttl_expirations = obs::GetCounter(
      "storage_ttl_expirations_total",
      "Range tombstones appended by TTL expiry");
  ttl_expirations.Inc();
  return Status::OK();
}

size_t TsStore::CountFullyExpiredFiles(int64_t ttl) const {
  if (ttl <= 0) return 0;
  StoreView view = CurrentView();
  TimeRange interval = view.DataInterval();
  if (interval.Empty() || interval.end < kMinTimestamp + ttl) return 0;
  const Timestamp watermark = interval.end - ttl;
  size_t expired = 0;
  for (const auto& file : view.files()) {
    if (!file->chunks().empty() && file->interval().end < watermark) {
      ++expired;
    }
  }
  return expired;
}

uint64_t TsStore::TotalStoredPoints() const {
  uint64_t total = 0;
  for (const ChunkHandle& chunk : CurrentView().chunks()) {
    total += chunk.meta->count;
  }
  return total;
}

size_t TsStore::CountUnsequenceFiles() const {
  size_t unseq = 0;
  Timestamp max_end = kMinTimestamp;
  bool any = false;
  StoreView view = CurrentView();
  for (const auto& file : view.files()) {
    Timestamp file_min = kMaxTimestamp;
    Timestamp file_max = kMinTimestamp;
    for (const ChunkMetadata& meta : file->chunks()) {
      file_min = std::min(file_min, meta.stats.first.t);
      file_max = std::max(file_max, meta.stats.last.t);
    }
    if (file->chunks().empty()) continue;
    if (any && file_min <= max_end) ++unseq;
    max_end = std::max(max_end, file_max);
    any = true;
  }
  return unseq;
}

double TsStore::OverlapFraction() const {
  StoreView view = CurrentView();
  if (view.chunks().size() < 2) return 0.0;
  std::vector<TimeRange> intervals;
  intervals.reserve(view.chunks().size());
  for (const ChunkHandle& chunk : view.chunks()) {
    intervals.push_back(chunk.meta->Interval());
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeRange& a, const TimeRange& b) {
              return a.start < b.start;
            });
  // With intervals sorted by start, interval i overlaps an earlier one iff
  // its start is <= the max end seen so far, and a later one iff the next
  // start is <= its end.
  size_t overlapping = 0;
  Timestamp max_end_before = kMinTimestamp;
  for (size_t i = 0; i < intervals.size(); ++i) {
    bool with_earlier = i > 0 && intervals[i].start <= max_end_before;
    bool with_later =
        i + 1 < intervals.size() && intervals[i + 1].start <= intervals[i].end;
    if (with_earlier || with_later) ++overlapping;
    max_end_before = std::max(max_end_before, intervals[i].end);
  }
  return static_cast<double>(overlapping) /
         static_cast<double>(intervals.size());
}

}  // namespace tsviz
