#include "storage/store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>

#include "common/env.h"
#include "common/logging.h"
#include "common/stats.h"
#include "encoding/varint.h"
#include "obs/metrics.h"
#include "storage/file_format.h"
#include "storage/quarantine.h"

namespace tsviz {

namespace fs = std::filesystem;

namespace {

// Data files are named f<id>.tsdat; ids increase with creation order.
constexpr char kDataSuffix[] = ".tsdat";

Result<uint64_t> ParseFileId(const std::string& name) {
  if (name.size() < 2 || name[0] != 'f') {
    return Status::InvalidArgument("not a data file: " + name);
  }
  uint64_t id = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("not a data file: " + name);
    }
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

// Partition directories are named p<index> (index may be negative for
// pre-epoch timestamps).
Result<int64_t> ParsePartitionDirIndex(const std::string& name) {
  if (name.size() < 2 || name[0] != 'p') {
    return Status::InvalidArgument("not a partition dir: " + name);
  }
  size_t i = 1;
  bool negative = false;
  if (name[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= name.size()) {
    return Status::InvalidArgument("not a partition dir: " + name);
  }
  int64_t index = 0;
  for (; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("not a partition dir: " + name);
    }
    index = index * 10 + (name[i] - '0');
  }
  return negative ? -index : index;
}

// The manifest pins the store's partition interval at creation time. v2
// appends an FNV-1a checksum of the interval digits so a torn or bit-flipped
// manifest is detected instead of silently repartitioning the store; v1
// manifests (no checksum) stay readable.
constexpr char kManifestPrefixV1[] = "tsviz.partition.v1 ";
constexpr char kManifestPrefixV2[] = "tsviz.partition.v2 ";

std::string FormatManifest(int64_t interval) {
  const std::string digits = std::to_string(interval);
  return std::string(kManifestPrefixV2) + digits + " " +
         std::to_string(Fnv1a64(digits)) + "\n";
}

// Parses either manifest version; any structural problem (wrong prefix,
// non-positive interval, checksum mismatch) is a Corruption.
Result<int64_t> ParseManifest(const std::string& content,
                              const std::string& path) {
  const Status corrupt = Status::Corruption("bad partition manifest: " + path);
  const size_t prefix_len = strlen(kManifestPrefixV2);
  static_assert(sizeof(kManifestPrefixV1) == sizeof(kManifestPrefixV2));
  const bool v2 = content.compare(0, prefix_len, kManifestPrefixV2) == 0;
  if (!v2 && content.compare(0, prefix_len, kManifestPrefixV1) != 0) {
    return corrupt;
  }
  char* end = nullptr;
  const int64_t value = std::strtoll(content.c_str() + prefix_len, &end, 10);
  if (value <= 0) return corrupt;
  if (v2) {
    const char* digits_begin = content.c_str() + prefix_len;
    const std::string digits(digits_begin,
                             static_cast<size_t>(end - digits_begin));
    char* checksum_end = nullptr;
    const uint64_t checksum = std::strtoull(end, &checksum_end, 10);
    if (checksum_end == end || checksum != Fnv1a64(digits)) return corrupt;
  }
  return value;
}

// Rebuilds the derived flat file/chunk vectors from the partitions (in
// partition order) and refreshes the legacy group's pruning interval from
// its files' data bounds. Indexed partitions keep their fixed interval.
void RebuildDerived(StoreState* state) {
  state->files.clear();
  state->chunks.clear();
  for (StorePartition& part : state->partitions) {
    if (part.legacy()) {
      Timestamp lo = kMaxTimestamp;
      Timestamp hi = kMinTimestamp;
      bool any = false;
      for (const auto& file : part.files) {
        if (file->chunks().empty()) continue;
        any = true;
        lo = std::min(lo, file->interval().start);
        hi = std::max(hi, file->interval().end);
      }
      part.interval = any ? TimeRange(lo, hi) : TimeRange(1, 0);
    }
    state->files.insert(state->files.end(), part.files.begin(),
                        part.files.end());
    state->chunks.insert(state->chunks.end(), part.chunks.begin(),
                         part.chunks.end());
  }
}

// Finds the partition with the given index in `state`, inserting an empty
// one (with the given nominal bounds) at its sorted position if missing.
StorePartition* FindOrAddPartition(StoreState* state, int64_t index,
                                   const TimeRange& bounds) {
  auto it = std::lower_bound(
      state->partitions.begin(), state->partitions.end(), index,
      [](const StorePartition& p, int64_t idx) { return p.index < idx; });
  if (it != state->partitions.end() && it->index == index) return &*it;
  StorePartition part;
  part.index = index;
  part.interval = bounds;
  it = state->partitions.insert(it, std::move(part));
  return &*it;
}

}  // namespace

StoreView::StoreView(const TsStore& store) : state_(store.SnapshotState()) {}

TimeRange StoreView::DataInterval() const {
  if (state_->chunks.empty()) return TimeRange(1, 0);  // empty
  Timestamp lo = kMaxTimestamp;
  Timestamp hi = kMinTimestamp;
  for (const ChunkHandle& chunk : state_->chunks) {
    lo = std::min(lo, chunk.meta->stats.first.t);
    hi = std::max(hi, chunk.meta->stats.last.t);
  }
  return TimeRange(lo, hi);
}

std::shared_ptr<const StoreState> TsStore::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void TsStore::PublishLocked(std::shared_ptr<StoreState> next) {
  RebuildDerived(next.get());
  next->owner = this;
  next->state_version = state_->state_version + 1;
  state_ = std::move(next);
}

Result<std::unique_ptr<TsStore>> TsStore::Open(StoreConfig config) {
  if (config.data_dir.empty()) {
    return Status::InvalidArgument("data_dir must be set");
  }
  if (config.points_per_chunk == 0 || config.memtable_flush_threshold == 0) {
    return Status::InvalidArgument("chunk/flush sizes must be positive");
  }
  if (config.partition_interval_ms < 0) {
    return Status::InvalidArgument("partition_interval_ms must be >= 0");
  }
  TSVIZ_RETURN_IF_ERROR(GetEnv()->CreateDirs(config.data_dir));
  auto store = std::unique_ptr<TsStore>(new TsStore(std::move(config)));
  TSVIZ_RETURN_IF_ERROR(store->Recover());
  return store;
}

Status TsStore::Recover() {
  // Resolve the partition interval first: the partition.meta manifest
  // (written when a partitioned store is created) wins over the config —
  // a store cannot change its partition width after the fact, or existing
  // files would sit in the wrong directories.
  {
    Env* env = GetEnv();
    auto manifest = env->ReadFileToString(ManifestPath());
    if (manifest.ok()) {
      TSVIZ_ASSIGN_OR_RETURN(int64_t value,
                             ParseManifest(*manifest, ManifestPath()));
      if (config_.partition_interval_ms != 0 &&
          config_.partition_interval_ms != value) {
        TSVIZ_WARN << "partition.meta overrides configured interval"
                   << Field("manifest", value)
                   << Field("config", config_.partition_interval_ms);
      }
      partition_interval_ = value;
    } else if (manifest.status().code() == StatusCode::kNotFound) {
      partition_interval_ = config_.partition_interval_ms;
      if (partition_interval_ > 0) {
        TSVIZ_RETURN_IF_ERROR(WriteFileAtomic(
            ManifestPath(), FormatManifest(partition_interval_),
            durable_fsync()));
      }
    } else {
      return manifest.status();
    }
  }

  auto state = std::make_shared<StoreState>();
  state->owner = this;

  // Collect data files per partition: root-level files form the legacy
  // (pre-partitioning) group, p<index>/ directories the indexed groups.
  // Within a group files are ordered by id so chunk versions replay in
  // creation order; across groups order does not matter for the version
  // counter (we take the max).
  std::map<int64_t, std::vector<std::pair<uint64_t, std::string>>> found;
  // The error_code overloads keep a concurrently dropped directory (another
  // thread's DropSeries removing files, which runs outside catalog locks)
  // from escalating into an uncaught filesystem_error.
  std::error_code scan_ec;
  fs::directory_iterator dir_it(config_.data_dir, scan_ec);
  if (scan_ec) {
    return Status::IoError("cannot scan data dir " + config_.data_dir + ": " +
                           scan_ec.message());
  }
  for (const auto& entry : dir_it) {
    std::string name = entry.path().filename().string();
    std::error_code type_ec;
    if (entry.is_regular_file(type_ec)) {
      if (name.ends_with(".tmp")) {
        // A write (data file, manifest, mods rewrite) that died before its
        // commit rename; the finished artifact either exists under its
        // final name or never happened.
        (void)GetEnv()->RemoveFile(entry.path().string());
        continue;
      }
      if (name.size() > sizeof(kDataSuffix) && name.ends_with(kDataSuffix)) {
        std::string stem = name.substr(0, name.size() - strlen(kDataSuffix));
        auto id = ParseFileId(stem);
        if (id.ok()) {
          found[kLegacyPartitionIndex].emplace_back(*id, entry.path().string());
        }
      }
    } else if (entry.is_directory(type_ec)) {
      auto index = ParsePartitionDirIndex(name);
      if (!index.ok()) continue;
      std::error_code sub_ec;
      fs::directory_iterator sub_it(entry.path(), sub_ec);
      if (sub_ec) continue;  // Partition dir vanished between list and open.
      for (const auto& sub : sub_it) {
        std::error_code sub_type_ec;
        if (!sub.is_regular_file(sub_type_ec)) continue;
        std::string sub_name = sub.path().filename().string();
        if (sub_name.ends_with(".tmp")) {
          (void)GetEnv()->RemoveFile(sub.path().string());
          continue;
        }
        if (sub_name.size() > sizeof(kDataSuffix) &&
            sub_name.ends_with(kDataSuffix)) {
          std::string stem =
              sub_name.substr(0, sub_name.size() - strlen(kDataSuffix));
          auto id = ParseFileId(stem);
          if (id.ok()) found[*index].emplace_back(*id, sub.path().string());
        }
      }
    }
  }

  for (auto& [part_index, data_files] : found) {
    std::sort(data_files.begin(), data_files.end());
    StorePartition part;
    part.index = part_index;
    part.interval = PartitionBounds(part_index);
    for (const auto& [id, path] : data_files) {
      auto reader_or = FileReader::Open(path);
      if (!reader_or.ok()) {
        // Its id stays burned so a future flush cannot rename over the
        // evidence.
        next_file_id_ = std::max(next_file_id_, id + 1);
        const Status& status = reader_or.status();
        if (GetReadTolerance() == ReadTolerance::kDegrade &&
            (status.code() == StatusCode::kCorruption ||
             status.code() == StatusCode::kIoError)) {
          static obs::Counter& corruption_events =
              obs::GetCounter("corruption_events");
          corruption_events.Inc();
          TSVIZ_WARN << "skipping unreadable data file" << Field("file", path)
                     << Field("cause", status.ToString());
          continue;
        }
        return status;
      }
      std::shared_ptr<FileReader> reader = std::move(reader_or).value();
      for (const ChunkMetadata& meta : reader->chunks()) {
        part.chunks.push_back(ChunkHandle{reader, &meta});
        next_version_ = std::max(next_version_, meta.version + 1);
      }
      part.files.push_back(std::move(reader));
      next_file_id_ = std::max(next_file_id_, id + 1);
    }
    if (!part.legacy() && partition_interval_ <= 0) {
      // Partition directories without a usable interval (manifest deleted
      // by hand): fall back to the files' data bounds, which are a subset
      // of the nominal interval and prune just as correctly.
      Timestamp lo = kMaxTimestamp;
      Timestamp hi = kMinTimestamp;
      bool any = false;
      for (const auto& file : part.files) {
        if (file->chunks().empty()) continue;
        any = true;
        lo = std::min(lo, file->interval().start);
        hi = std::max(hi, file->interval().end);
      }
      part.interval = any ? TimeRange(lo, hi) : TimeRange(1, 0);
    }
    state->partitions.push_back(std::move(part));
  }
  RebuildDerived(state.get());

  // Replay delete tombstones.
  auto mods = GetEnv()->ReadFileToString(ModsPath());
  if (!mods.ok() && mods.status().code() != StatusCode::kNotFound) {
    return mods.status();
  }
  if (mods.ok()) {
    const std::string content = std::move(mods).value();
    std::string_view cursor = content;
    if (cursor.size() < kModsMagic.size() ||
        cursor.substr(0, kModsMagic.size()) != kModsMagic) {
      return Status::Corruption("bad mods file magic");
    }
    cursor.remove_prefix(kModsMagic.size());
    while (!cursor.empty()) {
      TSVIZ_ASSIGN_OR_RETURN(DeleteRecord del, ParseDeleteRecord(&cursor));
      state->deletes.push_back(del);
      next_version_ = std::max(next_version_, del.version + 1);
    }
  }

  state_ = std::move(state);

  // Replay the WAL into the memtable (deletes there are the memtable
  // purges; their versioned tombstones were already restored from mods). A
  // crash between a flush's segment rotation and its completion leaves the
  // pinned old segment behind; it replays first, before the active log.
  if (config_.enable_wal) {
    const bool had_old_segment = GetEnv()->FileExists(OldWalPath());
    std::vector<WalRecord> records;
    bool truncated = false;
    if (had_old_segment) {
      bool old_truncated = false;
      TSVIZ_ASSIGN_OR_RETURN(records, ReadWal(OldWalPath(), &old_truncated));
      truncated = old_truncated;
    }
    {
      bool active_truncated = false;
      TSVIZ_ASSIGN_OR_RETURN(std::vector<WalRecord> active,
                             ReadWal(WalPath(), &active_truncated));
      truncated = truncated || active_truncated;
      records.insert(records.end(), active.begin(), active.end());
    }
    for (const WalRecord& record : records) {
      if (record.type == WalRecord::Type::kPut) {
        memtable_.Put(record.point.t, record.point.v);
      } else {
        memtable_.EraseRange(record.range);
      }
    }
    TSVIZ_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath(), durable_fsync()));
    if (truncated || had_old_segment) {
      // Consolidate everything into the active log so the old segment can
      // be dropped (and a torn tail rewritten).
      if (truncated) {
        TSVIZ_WARN << "wal had a torn tail; rewriting the log"
                   << Field("replayed", records.size());
      }
      TSVIZ_RETURN_IF_ERROR(wal_->Reset());
      for (const WalRecord& record : records) {
        TSVIZ_RETURN_IF_ERROR(
            record.type == WalRecord::Type::kPut
                ? wal_->AppendPut(record.point)
                : wal_->AppendDelete(record.range));
      }
      TSVIZ_RETURN_IF_ERROR(GetEnv()->RemoveFile(OldWalPath()));
    }
  }
  return Status::OK();
}

int64_t TsStore::PartitionIndexFor(Timestamp t) const {
  if (partition_interval_ <= 0) return kLegacyPartitionIndex;
  // Floor division: negative timestamps round toward -inf, so every
  // partition covers exactly partition_interval_ time units.
  int64_t index = t / partition_interval_;
  if (t % partition_interval_ != 0 && t < 0) --index;
  return index;
}

TimeRange TsStore::PartitionBounds(int64_t index) const {
  if (index == kLegacyPartitionIndex || partition_interval_ <= 0) {
    return TimeRange(kMinTimestamp, kMaxTimestamp);
  }
  const int64_t w = partition_interval_;
  const Timestamp start = static_cast<Timestamp>(index) * w;
  const Timestamp end =
      start > kMaxTimestamp - (w - 1) ? kMaxTimestamp : start + (w - 1);
  return TimeRange(start, end);
}

std::string TsStore::PartitionDirPath(int64_t index) const {
  return config_.data_dir + "/p" + std::to_string(index);
}

std::string TsStore::FilePath(uint64_t file_id, int64_t partition_index) const {
  const std::string name = "f" + std::to_string(file_id) + kDataSuffix;
  if (partition_index == kLegacyPartitionIndex) {
    return config_.data_dir + "/" + name;
  }
  return PartitionDirPath(partition_index) + "/" + name;
}

std::string TsStore::ManifestPath() const {
  return config_.data_dir + "/partition.meta";
}

std::string TsStore::ModsPath() const {
  return config_.data_dir + "/deletes.mods";
}

std::string TsStore::WalPath() const { return config_.data_dir + "/wal.log"; }

std::string TsStore::OldWalPath() const {
  return config_.data_dir + "/wal.old.log";
}

void TsStore::set_durable_fsync(bool durable) {
  durable_.store(durable, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ != nullptr) wal_->set_durable(durable);
}

size_t TsStore::memtable_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memtable_.size();
}

size_t TsStore::memtable_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memtable_.ApproxBytes();
}

namespace {

// The write-path lock cost the batch API amortizes: one Inc per mutex_
// acquisition taken to apply writes (one per single-point Write, one per
// WriteBatch however many points it carries).
obs::Counter& WriteLockAcquisitionsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "store_write_lock_acquisitions_total",
      "Store-lock acquisitions taken by the write path (one per single "
      "Write; one per whole WriteBatch)");
  return c;
}
obs::Counter& BatchWritesTotal() {
  static obs::Counter& c = obs::GetCounter(
      "batch_writes_total", "WriteBatch calls applied to a store");
  return c;
}
obs::Counter& BatchPointsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "batch_points_total", "Points ingested through WriteBatch");
  return c;
}

}  // namespace

Status TsStore::Write(Timestamp t, Value v) {
  if (!std::isfinite(v)) {
    // NaN/Inf would poison the value-ordered chunk statistics (BP/TP) and
    // the merge semantics; reject at the door like IoTDB does.
    return Status::InvalidArgument("value must be finite");
  }
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteLockAcquisitionsTotal().Inc();
    if (wal_ != nullptr) {
      TSVIZ_RETURN_IF_ERROR(wal_->AppendPut(Point{t, v}));
    }
    memtable_.Put(t, v);
    flush_now = memtable_.size() >= config_.memtable_flush_threshold;
  }
  // The inline (foreground) flush of the size threshold; taken outside the
  // lock so Flush can acquire the maintenance mutex first.
  if (flush_now) return Flush();
  return Status::OK();
}

Status TsStore::WriteAll(const std::vector<Point>& points) {
  for (const Point& p : points) {
    TSVIZ_RETURN_IF_ERROR(Write(p.t, p.v));
  }
  return Status::OK();
}

Status TsStore::WriteBatch(const std::vector<Point>& points) {
  // All-or-nothing validation before any state is touched.
  for (const Point& p : points) {
    if (!std::isfinite(p.v)) {
      return Status::InvalidArgument("value must be finite");
    }
  }
  if (points.empty()) return Status::OK();
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteLockAcquisitionsTotal().Inc();
    if (wal_ != nullptr) {
      TSVIZ_RETURN_IF_ERROR(wal_->AppendPuts(points));
    }
    for (const Point& p : points) memtable_.Put(p.t, p.v);
    flush_now = memtable_.size() >= config_.memtable_flush_threshold;
  }
  BatchWritesTotal().Inc();
  BatchPointsTotal().Inc(points.size());
  if (flush_now) return Flush();
  return Status::OK();
}

Status TsStore::DeleteRange(const TimeRange& range) {
  if (range.Empty()) {
    return Status::InvalidArgument("empty delete range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  DeleteRecord del{range, next_version_++};
  TSVIZ_RETURN_IF_ERROR(AppendModsRecordLocked(del));
  if (wal_ != nullptr) {
    TSVIZ_RETURN_IF_ERROR(wal_->AppendDelete(range));
  }
  auto next = std::make_shared<StoreState>(*state_);
  next->deletes.push_back(del);
  PublishLocked(std::move(next));
  // Deletes apply to unflushed data immediately; flushed chunks are
  // filtered at read time via the versioned tombstone.
  memtable_.EraseRange(range);
  static obs::Counter& deletes_total = obs::GetCounter(
      "storage_deletes_total", "Range tombstones appended");
  deletes_total.Inc();
  return Status::OK();
}

Status TsStore::AppendModsRecordLocked(const DeleteRecord& del) {
  const std::string path = ModsPath();
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> mods,
                         GetEnv()->NewAppendableFile(path));
  std::string record;
  if (mods->size() == 0) record.append(kModsMagic);
  SerializeDeleteRecord(del, &record);
  const uint64_t size_before = mods->size();
  if (Status status = mods->Append(record); !status.ok()) {
    // Erase the torn record so the file stays parseable end to end (mods
    // replay has no torn-tail tolerance — every byte must decode).
    (void)mods->Truncate(size_before);
    return status;
  }
  if (durable_fsync()) {
    TSVIZ_RETURN_IF_ERROR(mods->Sync());
  }
  return mods->Close();
}

Status TsStore::RewriteModsLocked(const std::vector<DeleteRecord>& deletes) {
  const std::string path = ModsPath();
  if (deletes.empty()) {
    return GetEnv()->RemoveFile(path);
  }
  std::string content(kModsMagic);
  for (const DeleteRecord& del : deletes) {
    SerializeDeleteRecord(del, &content);
  }
  return WriteFileAtomic(path, content, durable_fsync());
}

Status TsStore::Flush() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  return FlushHoldingMaintenance();
}

Status TsStore::FlushHoldingMaintenance() {
  Timer timer;
  std::vector<Point> points;
  // One output file per partition the drained points touch; the flat store
  // always produces a single legacy-group file.
  struct FlushGroup {
    int64_t partition = kLegacyPartitionIndex;
    uint64_t file_id = 0;
    Version first_version = 0;
    size_t begin = 0;  // [begin, end) into `points` (drained in time order)
    size_t end = 0;
  };
  std::vector<FlushGroup> groups;
  bool rotated = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (memtable_.empty()) return Status::OK();
    points = memtable_.Drain();
    if (wal_ != nullptr) {
      // Pin the drained points' log records in a side segment; writes that
      // land while the flush encodes go to a fresh active log, so neither
      // the flushed nor the concurrent points can be lost by a crash.
      TSVIZ_RETURN_IF_ERROR(wal_->RotateTo(OldWalPath()));
      rotated = true;
      TSVIZ_CRASHPOINT("flush.after_rotate");
    }
    // Route the (time-ordered) drained points into contiguous per-partition
    // groups. File ids and one version per chunk are reserved here so
    // anything appended later orders after every flushed chunk.
    size_t begin = 0;
    while (begin < points.size()) {
      FlushGroup group;
      group.partition = PartitionIndexFor(points[begin].t);
      const Timestamp bound = PartitionBounds(group.partition).end;
      size_t end = begin + 1;
      while (end < points.size() && points[end].t <= bound) ++end;
      group.begin = begin;
      group.end = end;
      group.file_id = next_file_id_++;
      group.first_version = next_version_;
      next_version_ += (end - begin + config_.points_per_chunk - 1) /
                       config_.points_per_chunk;
      groups.push_back(group);
      begin = end;
    }
  }

  // Undo on failure: the drained points go back to the memtable (without
  // clobbering newer concurrent writes at the same timestamps) and back
  // into the active log; the pinned segment and any partial files drop.
  auto fail = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Point& p : points) {
      memtable_.PutIfAbsent(p.t, p.v);
      if (wal_ != nullptr) (void)wal_->AppendPut(p);
    }
    for (const FlushGroup& group : groups) {
      (void)GetEnv()->RemoveFile(FilePath(group.file_id, group.partition));
    }
    if (rotated) (void)GetEnv()->RemoveFile(OldWalPath());
    return status;
  };

  const bool durable = durable_fsync();
  std::vector<std::shared_ptr<FileReader>> readers(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    const FlushGroup& group = groups[g];
    if (group.partition != kLegacyPartitionIndex) {
      const std::string dir = PartitionDirPath(group.partition);
      const bool fresh_dir = !GetEnv()->FileExists(dir);
      if (Status s = GetEnv()->CreateDirs(dir); !s.ok()) return fail(s);
      if (durable && fresh_dir) {
        // Pin the new directory entry itself; the files inside get their
        // own dir fsync from FileWriter::Finish.
        if (Status s = GetEnv()->SyncDir(config_.data_dir); !s.ok()) {
          return fail(s);
        }
      }
    }
    const std::string path = FilePath(group.file_id, group.partition);
    auto writer_or = FileWriter::Create(path, durable);
    if (!writer_or.ok()) return fail(writer_or.status());
    std::unique_ptr<FileWriter> writer = std::move(writer_or).value();
    size_t chunk_index = 0;
    for (size_t begin = group.begin; begin < group.end;
         begin += config_.points_per_chunk) {
      size_t count = std::min(config_.points_per_chunk, group.end - begin);
      std::vector<Point> slice(points.begin() + begin,
                               points.begin() + begin + count);
      Status s = writer->AppendChunk(slice, group.first_version + chunk_index++,
                                     config_.encoding, nullptr);
      if (!s.ok()) return fail(s);
    }
    if (Status s = writer->Finish(); !s.ok()) return fail(s);
    auto reader_or = FileReader::Open(path);
    if (!reader_or.ok()) return fail(reader_or.status());
    readers[g] = std::move(reader_or).value();
  }
  // The data files are complete and named; a crash here replays the pinned
  // WAL segment on top of them (duplicate points resolve by version).
  TSVIZ_CRASHPOINT("flush.after_data");

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<StoreState>(*state_);
    for (size_t g = 0; g < groups.size(); ++g) {
      StorePartition* part = FindOrAddPartition(
          next.get(), groups[g].partition, PartitionBounds(groups[g].partition));
      for (const ChunkMetadata& meta : readers[g]->chunks()) {
        part->chunks.push_back(ChunkHandle{readers[g], &meta});
      }
      part->files.push_back(std::move(readers[g]));
    }
    PublishLocked(std::move(next));
  }
  TSVIZ_CRASHPOINT("flush.after_commit");
  if (rotated) {
    // The flushed files now carry the pinned segment's data.
    (void)GetEnv()->RemoveFile(OldWalPath());
  }
  static obs::Counter& flushes_total = obs::GetCounter(
      "storage_flushes_total", "Memtable flushes to data files");
  static obs::Counter& flush_points_total = obs::GetCounter(
      "storage_flush_points_total", "Points written by memtable flushes");
  static obs::Counter& partition_files = obs::GetCounter(
      "partition_files_created_total",
      "Data files created by flushes (one per touched partition)");
  static obs::Histogram& flush_millis = obs::GetHistogram(
      "storage_flush_millis", "Memtable flush latency (ms)");
  flushes_total.Inc();
  flush_points_total.Inc(points.size());
  partition_files.Inc(groups.size());
  flush_millis.Observe(timer.ElapsedMillis());
  return Status::OK();
}

Status TsStore::ExpireTtl(int64_t ttl, bool* expired) {
  if (expired != nullptr) *expired = false;
  if (ttl <= 0) {
    return Status::InvalidArgument("ttl must be positive");
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  StoreView view = CurrentView();
  TimeRange interval = view.DataInterval();
  if (interval.Empty()) return Status::OK();
  if (interval.end < kMinTimestamp + ttl) return Status::OK();  // underflow
  const Timestamp watermark = interval.end - ttl;

  // Partitions whose whole interval lies below the watermark get unlinked
  // outright — an O(1) state swap instead of tombstone + reclaim
  // compaction. The legacy group has no upper bound and never qualifies.
  std::vector<int64_t> droppable;
  for (const StorePartition& part : view.partitions()) {
    if (!part.legacy() && !part.interval.Empty() &&
        part.interval.end < watermark) {
      droppable.push_back(part.index);
    }
  }
  const bool advance =
      watermark > interval.start && watermark > ttl_watermark_;
  if (!advance && droppable.empty()) return Status::OK();

  // Tombstone first: it covers the partial boundary partition and the
  // memtable, and makes the drop below crash-consistent — if we lose power
  // mid-unlink, the surviving files reopen already deleted by the mods
  // record.
  if (advance) {
    TSVIZ_RETURN_IF_ERROR(
        DeleteRange(TimeRange(interval.start, watermark - 1)));
    TSVIZ_CRASHPOINT("ttl.after_tombstone");
    ttl_watermark_ = watermark;
    if (expired != nullptr) *expired = true;
    static obs::Counter& ttl_expirations = obs::GetCounter(
        "storage_ttl_expirations_total",
        "Range tombstones appended by TTL expiry");
    ttl_expirations.Inc();
  }

  if (!droppable.empty()) {
    std::vector<std::string> dead_paths;
    std::vector<std::string> dead_dirs;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto next = std::make_shared<StoreState>(*state_);
      auto& parts = next->partitions;
      for (auto it = parts.begin(); it != parts.end();) {
        if (!std::binary_search(droppable.begin(), droppable.end(),
                                it->index)) {
          ++it;
          continue;
        }
        for (const auto& file : it->files) dead_paths.push_back(file->path());
        dead_dirs.push_back(PartitionDirPath(it->index));
        it = parts.erase(it);
      }
      PublishLocked(std::move(next));
    }
    // A crash before the unlinks below leaves the dropped partitions on
    // disk, but fully covered by the tombstone just written — they reopen
    // dead and the next expiry pass drops them again.
    TSVIZ_CRASHPOINT("ttl.after_drop");
    // Snapshot readers that pinned these files keep their descriptors; the
    // unlink only drops the directory entries.
    for (const std::string& path : dead_paths) {
      (void)GetEnv()->RemoveFile(path);
    }
    for (const std::string& dir : dead_dirs) {
      (void)GetEnv()->RemoveDir(dir);
    }
    static obs::Counter& partition_drops = obs::GetCounter(
        "partition_drops_total",
        "Fully-expired partitions unlinked by TTL expiry");
    partition_drops.Inc(droppable.size());
  }
  return Status::OK();
}

size_t TsStore::CountFullyExpiredPartitions(int64_t ttl) const {
  if (ttl <= 0) return 0;
  StoreView view = CurrentView();
  TimeRange interval = view.DataInterval();
  if (interval.Empty() || interval.end < kMinTimestamp + ttl) return 0;
  const Timestamp watermark = interval.end - ttl;
  size_t expired = 0;
  for (const StorePartition& part : view.partitions()) {
    if (!part.legacy() && !part.interval.Empty() &&
        part.interval.end < watermark) {
      ++expired;
    }
  }
  return expired;
}

size_t TsStore::CountFullyExpiredFiles(int64_t ttl) const {
  if (ttl <= 0) return 0;
  StoreView view = CurrentView();
  TimeRange interval = view.DataInterval();
  if (interval.Empty() || interval.end < kMinTimestamp + ttl) return 0;
  const Timestamp watermark = interval.end - ttl;
  size_t expired = 0;
  for (const auto& file : view.files()) {
    if (!file->chunks().empty() && file->interval().end < watermark) {
      ++expired;
    }
  }
  return expired;
}

uint64_t TsStore::TotalStoredPoints() const {
  uint64_t total = 0;
  const StoreView view = CurrentView();  // named: range-init temporaries die
  for (const ChunkHandle& chunk : view.chunks()) {
    total += chunk.meta->count;
  }
  return total;
}

size_t TsStore::CountUnsequenceFiles() const {
  size_t unseq = 0;
  Timestamp max_end = kMinTimestamp;
  bool any = false;
  StoreView view = CurrentView();
  for (const auto& file : view.files()) {
    Timestamp file_min = kMaxTimestamp;
    Timestamp file_max = kMinTimestamp;
    for (const ChunkMetadata& meta : file->chunks()) {
      file_min = std::min(file_min, meta.stats.first.t);
      file_max = std::max(file_max, meta.stats.last.t);
    }
    if (file->chunks().empty()) continue;
    if (any && file_min <= max_end) ++unseq;
    max_end = std::max(max_end, file_max);
    any = true;
  }
  return unseq;
}

double TsStore::OverlapFraction() const {
  StoreView view = CurrentView();
  if (view.chunks().size() < 2) return 0.0;
  std::vector<TimeRange> intervals;
  intervals.reserve(view.chunks().size());
  for (const ChunkHandle& chunk : view.chunks()) {
    intervals.push_back(chunk.meta->Interval());
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeRange& a, const TimeRange& b) {
              return a.start < b.start;
            });
  // With intervals sorted by start, interval i overlaps an earlier one iff
  // its start is <= the max end seen so far, and a later one iff the next
  // start is <= its end.
  size_t overlapping = 0;
  Timestamp max_end_before = kMinTimestamp;
  for (size_t i = 0; i < intervals.size(); ++i) {
    bool with_earlier = i > 0 && intervals[i].start <= max_end_before;
    bool with_later =
        i + 1 < intervals.size() && intervals[i + 1].start <= intervals[i].end;
    if (with_earlier || with_later) ++overlapping;
    max_end_before = std::max(max_end_before, intervals[i].end);
  }
  return static_cast<double>(overlapping) /
         static_cast<double>(intervals.size());
}

}  // namespace tsviz
