#ifndef TSVIZ_STORAGE_FILE_WRITER_H_
#define TSVIZ_STORAGE_FILE_WRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/chunk_writer.h"

namespace tsviz {

// Writes one data file: a sequence of encoded chunks followed by the
// metadata footer. Append-only; Finish() must be called exactly once to make
// the file readable.
//
// Crash consistency: all writing goes to `path`.tmp; Finish() renames it
// into place (after an fsync when `durable`), so a crash mid-write leaves
// only a .tmp the next store open sweeps away — readers can never observe a
// data file without its footer.
class FileWriter {
 public:
  static Result<std::unique_ptr<FileWriter>> Create(const std::string& path,
                                                    bool durable = false);

  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  // Encodes `points` as one chunk with the given version and appends it.
  // On success, *out_meta (optional) receives the file-rebased metadata.
  Status AppendChunk(const std::vector<Point>& points, Version version,
                     const ChunkEncodingOptions& options,
                     ChunkMetadata* out_meta);

  // Writes the footer + trailer, closes the file, and renames it into place
  // (fsyncing the file and parent directory first when durable).
  Status Finish();

  size_t num_chunks() const { return chunks_.size(); }

 private:
  FileWriter(std::unique_ptr<WritableFile> file, std::string path,
             bool durable);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  bool durable_;
  uint64_t offset_ = 0;
  std::vector<ChunkMetadata> chunks_;
  bool finished_ = false;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_FILE_WRITER_H_
