#ifndef TSVIZ_STORAGE_FILE_WRITER_H_
#define TSVIZ_STORAGE_FILE_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/chunk_writer.h"

namespace tsviz {

// Writes one data file: a sequence of encoded chunks followed by the
// metadata footer. Append-only; Finish() must be called exactly once to make
// the file readable.
class FileWriter {
 public:
  static Result<std::unique_ptr<FileWriter>> Create(const std::string& path);

  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  // Encodes `points` as one chunk with the given version and appends it.
  // On success, *out_meta (optional) receives the file-rebased metadata.
  Status AppendChunk(const std::vector<Point>& points, Version version,
                     const ChunkEncodingOptions& options,
                     ChunkMetadata* out_meta);

  // Writes the footer + trailer and closes the file.
  Status Finish();

  size_t num_chunks() const { return chunks_.size(); }

 private:
  FileWriter(std::FILE* file, std::string path);

  std::FILE* file_;
  std::string path_;
  uint64_t offset_ = 0;
  std::vector<ChunkMetadata> chunks_;
  bool finished_ = false;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_FILE_WRITER_H_
