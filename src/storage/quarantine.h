#ifndef TSVIZ_STORAGE_QUARANTINE_H_
#define TSVIZ_STORAGE_QUARANTINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "common/status.h"

namespace tsviz {

// How the read path reacts to a corrupt or unreadable chunk.
//
//   kDegrade (default): the chunk is quarantined — skipped by subsequent
//     chunk selection, counted in corruption_events / chunks_quarantined,
//     WARN-logged with file and offset — and the query is retried over the
//     remaining data, reporting degraded=true in its QueryStats.
//   kStrict: the first corrupt page fails the whole query (pre-quarantine
//     behaviour), for deployments that prefer loud failure over partial
//     answers.
enum class ReadTolerance { kDegrade, kStrict };

ReadTolerance GetReadTolerance();
void SetReadTolerance(ReadTolerance tolerance);
// Parses "degrade" / "strict" (the `SET read_tolerance = ...` values).
Status ParseReadTolerance(const std::string& text, ReadTolerance* out);
const char* ReadToleranceName(ReadTolerance tolerance);

// Process-wide registry of chunks known to be corrupt, keyed by the owning
// reader's page-cache id plus the chunk's data offset within the file (the
// same pair that keys the shared page cache). Entries are added by the read
// path when a page fails its checksum or the file returns an I/O error, and
// consulted by chunk selection so the next attempt skips the bad chunk.
class ChunkQuarantine {
 public:
  static ChunkQuarantine& Instance();

  ChunkQuarantine(const ChunkQuarantine&) = delete;
  ChunkQuarantine& operator=(const ChunkQuarantine&) = delete;

  // Quarantines one chunk, WARN-logging `path` + `offset` + `cause` and
  // bumping the corruption_events counter (once per distinct chunk).
  void Add(uint64_t cache_id, uint64_t data_offset, const std::string& path,
           const Status& cause);
  bool Contains(uint64_t cache_id, uint64_t data_offset) const;

  // Fast pre-check for the common all-healthy case: a single relaxed load.
  bool empty() const { return size_.load(std::memory_order_relaxed) == 0; }
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Bumped on every Add of a previously unknown chunk. The degrade retry
  // loop compares generations around an attempt to prove forward progress.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Drops every entry for one reader; called when the reader closes (its
  // cache id is never reused, so stale entries would only leak memory).
  void ForgetFile(uint64_t cache_id);

  void Clear();

 private:
  ChunkQuarantine() = default;

  mutable std::mutex mutex_;
  std::set<std::pair<uint64_t, uint64_t>> entries_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> generation_{0};
};

// Read-path failure hook: under kDegrade, quarantines the chunk and returns
// true (the caller still propagates the error; the query-level retry skips
// the chunk next time round). Under kStrict — or for error codes that do not
// indicate bad data, e.g. kOutOfRange — returns false without recording
// anything.
bool MaybeQuarantineChunk(uint64_t cache_id, uint64_t data_offset,
                          const std::string& path, const Status& cause);

// Runs `fn`, and under kDegrade retries it after a Corruption / IoError
// failure as long as the failed attempt quarantined at least one new chunk.
// Terminates because the quarantine only grows and is bounded by the number
// of chunks on disk: every retry either succeeds, fails for a non-data
// reason (returned as-is), or removes one more chunk from consideration.
Status RunWithReadTolerance(const std::function<Status()>& fn);

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_QUARANTINE_H_
