#ifndef TSVIZ_STORAGE_CHUNK_WRITER_H_
#define TSVIZ_STORAGE_CHUNK_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/chunk_metadata.h"
#include "storage/options.h"

namespace tsviz {

// One encoded chunk: the page blob plus its metadata (data_offset is
// relative to the blob start; the file writer rebases it).
struct EncodedChunk {
  std::string blob;
  ChunkMetadata meta;
};

// Encodes `points` (sorted by time, strictly increasing, non-empty) into a
// paged chunk blob, computing statistics and fitting the step-regression
// index (Definition 2.4: a chunk is a read-only segment of the series with
// its own metadata).
Result<EncodedChunk> EncodeChunk(const std::vector<Point>& points,
                                 Version version,
                                 const ChunkEncodingOptions& options);

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_CHUNK_WRITER_H_
