#include "storage/quarantine.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace tsviz {

namespace {

std::atomic<ReadTolerance> g_tolerance{ReadTolerance::kDegrade};

obs::Counter& CorruptionEvents() {
  static obs::Counter& c = obs::GetCounter(
      "corruption_events",
      "Corrupt or unreadable chunks detected by the read path");
  return c;
}

}  // namespace

ReadTolerance GetReadTolerance() {
  return g_tolerance.load(std::memory_order_relaxed);
}

void SetReadTolerance(ReadTolerance tolerance) {
  g_tolerance.store(tolerance, std::memory_order_relaxed);
}

Status ParseReadTolerance(const std::string& text, ReadTolerance* out) {
  if (text == "degrade") {
    *out = ReadTolerance::kDegrade;
    return Status::OK();
  }
  if (text == "strict") {
    *out = ReadTolerance::kStrict;
    return Status::OK();
  }
  return Status::InvalidArgument("read_tolerance must be 'degrade' or "
                                 "'strict', got '" + text + "'");
}

const char* ReadToleranceName(ReadTolerance tolerance) {
  return tolerance == ReadTolerance::kDegrade ? "degrade" : "strict";
}

ChunkQuarantine& ChunkQuarantine::Instance() {
  // Leaked so read paths running during static destruction stay safe, and
  // so the chunks_quarantined callback below never dangles.
  static ChunkQuarantine* instance = [] {
    auto* q = new ChunkQuarantine();
    obs::MetricsRegistry::Instance().RegisterCallback(
        "chunks_quarantined", "Chunks currently quarantined as corrupt",
        [q] { return static_cast<double>(q->size()); });
    return q;
  }();
  return *instance;
}

void ChunkQuarantine::Add(uint64_t cache_id, uint64_t data_offset,
                          const std::string& path, const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(cache_id, data_offset).second) return;
    size_.store(entries_.size(), std::memory_order_relaxed);
  }
  generation_.fetch_add(1, std::memory_order_release);
  CorruptionEvents().Inc();
  TSVIZ_WARN << "quarantined corrupt chunk" << Field("file", path)
             << Field("offset", data_offset)
             << Field("cause", cause.ToString());
  obs::RecordedEvent event;
  event.kind = obs::EventKind::kCorruption;
  event.statement =
      "quarantined " + path + " @" + std::to_string(data_offset);
  event.status = cause.ToString();
  obs::FlightRecorder::Instance().Record(std::move(event));
}

bool ChunkQuarantine::Contains(uint64_t cache_id,
                               uint64_t data_offset) const {
  if (empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count({cache_id, data_offset}) != 0;
}

void ChunkQuarantine::ForgetFile(uint64_t cache_id) {
  if (empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto begin = entries_.lower_bound({cache_id, 0});
  auto end = entries_.lower_bound({cache_id + 1, 0});
  entries_.erase(begin, end);
  size_.store(entries_.size(), std::memory_order_relaxed);
}

void ChunkQuarantine::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  size_.store(0, std::memory_order_relaxed);
}

bool MaybeQuarantineChunk(uint64_t cache_id, uint64_t data_offset,
                          const std::string& path, const Status& cause) {
  if (GetReadTolerance() != ReadTolerance::kDegrade) return false;
  if (cause.code() != StatusCode::kCorruption &&
      cause.code() != StatusCode::kIoError) {
    return false;
  }
  ChunkQuarantine::Instance().Add(cache_id, data_offset, path, cause);
  return true;
}

Status RunWithReadTolerance(const std::function<Status()>& fn) {
  ChunkQuarantine& quarantine = ChunkQuarantine::Instance();
  while (true) {
    const uint64_t generation_before = quarantine.generation();
    Status status = fn();
    if (status.ok() || GetReadTolerance() != ReadTolerance::kDegrade) {
      return status;
    }
    if (status.code() != StatusCode::kCorruption &&
        status.code() != StatusCode::kIoError) {
      return status;
    }
    // No new chunk was quarantined, so a retry would fail identically —
    // the error is not one the degrade path can route around.
    if (quarantine.generation() == generation_before) return status;
  }
}

}  // namespace tsviz
