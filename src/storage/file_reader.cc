#include "storage/file_reader.h"

#include <algorithm>
#include <atomic>

#include "storage/file_format.h"
#include "storage/page_cache.h"
#include "storage/quarantine.h"

namespace tsviz {

namespace {

uint64_t NextCacheId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

FileReader::FileReader(std::unique_ptr<RandomAccessFile> file,
                       std::string path)
    : file_(std::move(file)),
      path_(std::move(path)),
      file_size_(file_->size()),
      cache_id_(NextCacheId()) {}

FileReader::~FileReader() {
  // The file is going away (compaction, series drop, store close): its
  // decoded pages must not outlive it in the shared cache, and quarantine
  // entries for it have nothing left to shadow.
  SharedPageCache::Instance().EvictFile(cache_id_);
  ChunkQuarantine::Instance().ForgetFile(cache_id_);
}

Result<std::shared_ptr<FileReader>> FileReader::Open(const std::string& path) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                         GetEnv()->NewRandomAccessFile(path));
  auto reader =
      std::shared_ptr<FileReader>(new FileReader(std::move(file), path));

  if (reader->file_size_ <
      kFileMagic.size() + kFileTrailerSize) {
    return Status::Corruption(path + ": file too small");
  }
  // Read the fixed trailer to learn the footer length, then the footer.
  TSVIZ_ASSIGN_OR_RETURN(
      std::string trailer,
      reader->ReadRange(reader->file_size_ - kFileTrailerSize,
                        kFileTrailerSize));
  std::string_view trailer_view = trailer;
  // Footer length is the first fixed64 of the trailer.
  uint64_t footer_len = 0;
  for (int i = 7; i >= 0; --i) {
    footer_len = (footer_len << 8) | static_cast<uint8_t>(trailer_view[i]);
  }
  uint64_t tail_size = footer_len + kFileTrailerSize;
  if (tail_size > reader->file_size_ - kFileMagic.size()) {
    return Status::Corruption(path + ": footer larger than file");
  }
  TSVIZ_ASSIGN_OR_RETURN(
      std::string tail,
      reader->ReadRange(reader->file_size_ - tail_size, tail_size));
  TSVIZ_ASSIGN_OR_RETURN(reader->chunks_,
                         ParseFileTail(tail, reader->file_size_));
  for (const ChunkMetadata& meta : reader->chunks_) {
    if (reader->total_points_ == 0) {
      reader->interval_ = meta.Interval();
    } else {
      reader->interval_.start =
          std::min(reader->interval_.start, meta.stats.first.t);
      reader->interval_.end =
          std::max(reader->interval_.end, meta.stats.last.t);
    }
    reader->total_points_ += meta.count;
  }
  return reader;
}

Result<std::string> FileReader::ReadRange(uint64_t offset,
                                          uint64_t length) const {
  if (offset + length > file_size_) {
    return Status::OutOfRange(path_ + ": read past end of file");
  }
  std::string buffer;
  TSVIZ_RETURN_IF_ERROR(file_->Read(offset, length, &buffer));
  return buffer;
}

}  // namespace tsviz
