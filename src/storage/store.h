#ifndef TSVIZ_STORAGE_STORE_H_
#define TSVIZ_STORAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"
#include "storage/delete_record.h"
#include "storage/file_reader.h"
#include "storage/file_writer.h"
#include "storage/memtable.h"
#include "storage/options.h"
#include "storage/wal.h"

namespace tsviz {

class TsStore;

// A chunk on disk: its metadata plus the file it lives in.
struct ChunkHandle {
  std::shared_ptr<FileReader> file;
  const ChunkMetadata* meta = nullptr;  // owned by `file`
};

// Index of the legacy (unpartitioned) file group: files at the root of
// data_dir, written before the store had a partition interval. It sorts
// before every real index, so the legacy group is always partitions[0].
inline constexpr int64_t kLegacyPartitionIndex =
    std::numeric_limits<int64_t>::min();

// One time partition's file group. For a store with partition interval W,
// partition `index` holds exactly the points with floor(t / W) == index, so
// distinct partitions never overlap in time — that disjointness is what
// lets the read path prune whole groups and merge them independently.
struct StorePartition {
  int64_t index = kLegacyPartitionIndex;
  // Time bounds used for pruning. Indexed partitions carry their fixed
  // nominal interval [index*W, index*W + W - 1]; the legacy group carries
  // the union of its files' data intervals (empty when it has no data).
  TimeRange interval{1, 0};
  std::vector<std::shared_ptr<FileReader>> files;  // ascending file id
  std::vector<ChunkHandle> chunks;                 // per file, file order
  bool legacy() const { return index == kLegacyPartitionIndex; }
};

// One immutable version of the store's on-disk state. Mutations
// (flush/delete/compaction) publish a fresh StoreState; readers that took a
// snapshot before the swap keep the old one — the shared_ptr<FileReader>
// entries pin the files they need, so a concurrent compaction can drop a
// file from the store without pulling it out from under a running query.
struct StoreState {
  // Partition-scoped file groups: the legacy group first (when present),
  // then ascending partition index. A flat store keeps everything in the
  // legacy group.
  std::vector<StorePartition> partitions;
  // Flat concatenations of the partition members in partition order —
  // derived from `partitions` at every publish, kept so call sites that do
  // not care about partitioning keep working unchanged.
  std::vector<std::shared_ptr<FileReader>> files;
  std::vector<ChunkHandle> chunks;
  std::vector<DeleteRecord> deletes;
  uint64_t state_version = 0;
  const TsStore* owner = nullptr;  // identity for result-cache keying
};

// A consistent point-in-time view of one store, cheap to copy (one
// shared_ptr). The whole read path — chunk selection, delete selection,
// M4-LSM, M4-UDF, merge scans — operates on a StoreView, so a query sees
// exactly one state no matter what background maintenance does meanwhile.
// The implicit constructor snapshots the store's current state, which keeps
// `RunM4Lsm(*store, ...)` call sites working unchanged.
class StoreView {
 public:
  StoreView(const TsStore& store);  // NOLINT(google-explicit-constructor)
  explicit StoreView(std::shared_ptr<const StoreState> state)
      : state_(std::move(state)) {}

  const std::vector<ChunkHandle>& chunks() const { return state_->chunks; }
  const std::vector<std::shared_ptr<FileReader>>& files() const {
    return state_->files;
  }
  const std::vector<StorePartition>& partitions() const {
    return state_->partitions;
  }
  const std::vector<DeleteRecord>& deletes() const { return state_->deletes; }
  uint64_t state_version() const { return state_->state_version; }
  const TsStore* owner() const { return state_->owner; }

  // Union time interval across chunk metadata; empty range when no chunks.
  TimeRange DataInterval() const;

 private:
  std::shared_ptr<const StoreState> state_;
};

// Single-series LSM store (Section 2.2): writes buffer in a memtable and
// flush to immutable chunks on disk; deletes are append-only range
// tombstones; every chunk and delete carries a global version number.
// Compaction merges every chunk and delete into disjoint latest-only chunks
// (the paper's evaluation keeps it off, Table 4); the maintenance subsystem
// (src/bg/) may run it in the background.
//
// Thread safety: all public methods are safe to call concurrently.
// Mutations serialize internally; reads take a copy-on-write snapshot and
// never block behind a flush or compaction. Flush/Compact/ExpireTtl
// additionally serialize against each other (at most one maintenance
// operation per store at a time), and only their short swap phases hold the
// write lock — encoding and merging run outside it.
class TsStore {
 public:
  // Opens (or creates) the store in config.data_dir, recovering chunks,
  // deletes and the version counter from existing files.
  static Result<std::unique_ptr<TsStore>> Open(StoreConfig config);

  TsStore(const TsStore&) = delete;
  TsStore& operator=(const TsStore&) = delete;

  // Buffers one point; flushes automatically when the memtable reaches
  // config.memtable_flush_threshold points. Non-finite values are rejected
  // (they would poison the value-ordered chunk statistics).
  Status Write(Timestamp t, Value v);

  // Writes points in the given (possibly out-of-order) arrival order.
  Status WriteAll(const std::vector<Point>& points);

  // Batched ingest: validates every point up front, then applies the whole
  // batch under ONE store-lock acquisition and ONE physical WAL write
  // (WalWriter::AppendPuts), versus N of each for N single Writes. The
  // memtable-size flush trigger is evaluated once after the batch, so the
  // memtable may transiently overshoot the threshold by the batch size.
  // Rejects the whole batch (writing nothing) if any value is non-finite.
  Status WriteBatch(const std::vector<Point>& points);

  // Appends a range tombstone with the next version number.
  Status DeleteRange(const TimeRange& range);

  // Flushes the memtable to a new data file (no-op when empty). The file
  // holds ceil(n / points_per_chunk) chunks, each with its own version.
  // Safe against concurrent writes: the memtable and WAL segment rotate
  // under the lock, the chunk encoding runs outside it.
  Status Flush();

  // Full compaction: merges every partition's chunks (with the deletes)
  // into one fresh file of disjoint latest-only chunks per partition —
  // never across a partition boundary — and drops the covered tombstones.
  // Reads and merges from a snapshot outside the lock; tombstones appended
  // while the merge runs survive the swap untouched (flushes are excluded
  // by the maintenance mutex).
  Status Compact();

  // Compacts a single partition's files into one latest-only file, leaving
  // every other partition (and the mods file) untouched. No-op when the
  // partition does not exist. Unlike Compact() this does not flush first —
  // it only reorganizes what is already on disk.
  Status CompactPartition(int64_t index);

  // TTL expiry: appends a range tombstone covering every point older than
  // `ttl` time units behind the newest flushed point (watermark =
  // data_end - ttl; points with t < watermark expire), then unlinks every
  // partition whose whole interval lies below the watermark — an O(1)
  // state swap instead of a reclaim compaction. The tombstone path is
  // watermark-guarded as before and remains what covers the partial
  // boundary partition and the memtable. *expired (optional) reports
  // whether a tombstone was appended.
  Status ExpireTtl(int64_t ttl, bool* expired = nullptr);

  // Number of data files whose whole interval lies below the TTL watermark
  // — fully dead weight that only a compaction can reclaim (legacy flat
  // stores; partitioned stores drop whole partitions instead).
  size_t CountFullyExpiredFiles(int64_t ttl) const;

  // Number of partitions whose whole nominal interval lies below the TTL
  // watermark — candidates for the O(1) drop in ExpireTtl. The legacy
  // group is never counted (it has no upper bound).
  size_t CountFullyExpiredPartitions(int64_t ttl) const;

  // The store's effective partition interval: the manifest-pinned value
  // when one exists, else the configured one. 0 = unpartitioned.
  int64_t partition_interval() const { return partition_interval_; }

  // floor(t / partition_interval); kLegacyPartitionIndex when the store is
  // unpartitioned.
  int64_t PartitionIndexFor(Timestamp t) const;

  size_t NumPartitions() const { return SnapshotState()->partitions.size(); }

  const StoreConfig& config() const { return config_; }

  // Runtime toggle for the fsync policy (the `SET durable_fsync` knob);
  // applies to every flush/compaction/rotation from this point on.
  void set_durable_fsync(bool durable);
  bool durable_fsync() const {
    return durable_.load(std::memory_order_relaxed);
  }

  // A consistent snapshot of the current on-disk state.
  StoreView CurrentView() const { return StoreView(SnapshotState()); }

  // Convenience copies of the current snapshot's members. Each call takes
  // its own snapshot; use CurrentView() when several must be consistent.
  std::vector<ChunkHandle> chunks() const { return SnapshotState()->chunks; }
  std::vector<std::shared_ptr<FileReader>> files() const {
    return SnapshotState()->files;
  }
  std::vector<DeleteRecord> deletes() const { return SnapshotState()->deletes; }

  size_t memtable_size() const;

  // Approximate heap footprint of the memtable, the size-trigger input of
  // the background auto-flush policy.
  size_t memtable_bytes() const;

  // Monotonic counter bumped by every state change visible to queries
  // (flush, delete, compaction); result caches key on it.
  uint64_t state_version() const { return SnapshotState()->state_version; }

  // Total points across all chunks (including overwritten ones).
  uint64_t TotalStoredPoints() const;

  // Union time interval across chunk metadata; empty range when no chunks.
  TimeRange DataInterval() const { return CurrentView().DataInterval(); }

  // Fraction of chunks whose time interval overlaps at least one other
  // chunk's (the x-axis of Figure 12).
  double OverlapFraction() const;

  // Number of data files written out of time order — files whose earliest
  // point is not later than everything flushed before them. These are
  // IoTDB's "unsequence" TsFiles (Appendix A.5.1), the product of
  // out-of-order arrivals.
  size_t CountUnsequenceFiles() const;

  size_t NumFiles() const { return SnapshotState()->files.size(); }

 private:
  friend class StoreView;

  explicit TsStore(StoreConfig config)
      : config_(std::move(config)), durable_(config_.durable_fsync) {}

  Status Recover();
  Status AppendModsRecordLocked(const DeleteRecord& del);
  Status RewriteModsLocked(const std::vector<DeleteRecord>& deletes);
  // The flush body; caller holds maintenance_mutex_.
  Status FlushHoldingMaintenance();
  std::shared_ptr<const StoreState> SnapshotState() const;
  // Publishes `next` as the current state with a bumped version, rebuilding
  // the derived flat vectors from the partitions. Caller holds mutex_.
  void PublishLocked(std::shared_ptr<StoreState> next);
  // Nominal time bounds of partition `index` (unbounded for the legacy
  // group).
  TimeRange PartitionBounds(int64_t index) const;
  std::string PartitionDirPath(int64_t index) const;
  std::string FilePath(uint64_t file_id, int64_t partition_index) const;
  std::string ManifestPath() const;
  std::string ModsPath() const;
  std::string WalPath() const;
  std::string OldWalPath() const;

  StoreConfig config_;

  // Live fsync policy, seeded from config_.durable_fsync and adjustable at
  // runtime via set_durable_fsync.
  std::atomic<bool> durable_;

  // Effective partition interval, fixed at Open (manifest wins over
  // config); immutable afterwards, so reads need no lock.
  int64_t partition_interval_ = 0;

  // Serializes Flush/Compact/ExpireTtl against each other. Always acquired
  // before mutex_ (never the other way around).
  std::mutex maintenance_mutex_;
  Timestamp ttl_watermark_ = kMinTimestamp;  // guarded by maintenance_mutex_

  // Guards everything below: the memtable, the WAL, the version/file-id
  // counters, the mods file, and the state_ pointer swap.
  mutable std::mutex mutex_;
  MemTable memtable_;
  std::unique_ptr<WalWriter> wal_;
  std::shared_ptr<const StoreState> state_;
  Version next_version_ = 1;
  uint64_t next_file_id_ = 1;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_STORE_H_
