#ifndef TSVIZ_STORAGE_STORE_H_
#define TSVIZ_STORAGE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"
#include "storage/delete_record.h"
#include "storage/file_reader.h"
#include "storage/file_writer.h"
#include "storage/memtable.h"
#include "storage/options.h"
#include "storage/wal.h"

namespace tsviz {

// A chunk on disk: its metadata plus the file it lives in.
struct ChunkHandle {
  std::shared_ptr<FileReader> file;
  const ChunkMetadata* meta = nullptr;  // owned by `file`
};

// Single-series LSM store (Section 2.2): writes buffer in a memtable and
// flush to immutable chunks on disk; deletes are append-only range
// tombstones; every chunk and delete carries a global version number. No
// compaction ever runs (Table 4 disables it), so chunks written from
// out-of-order data overlap in time until query time — exactly the storage
// state M4-LSM is designed for.
class TsStore {
 public:
  // Opens (or creates) the store in config.data_dir, recovering chunks,
  // deletes and the version counter from existing files.
  static Result<std::unique_ptr<TsStore>> Open(StoreConfig config);

  TsStore(const TsStore&) = delete;
  TsStore& operator=(const TsStore&) = delete;

  // Buffers one point; flushes automatically when the memtable reaches
  // config.memtable_flush_threshold points. Non-finite values are rejected
  // (they would poison the value-ordered chunk statistics).
  Status Write(Timestamp t, Value v);

  // Writes points in the given (possibly out-of-order) arrival order.
  Status WriteAll(const std::vector<Point>& points);

  // Appends a range tombstone with the next version number.
  Status DeleteRange(const TimeRange& range);

  // Flushes the memtable to a new data file (no-op when empty). The file
  // holds ceil(n / points_per_chunk) chunks, each with its own version.
  Status Flush();

  // Full compaction: merges every chunk and delete into a fresh file of
  // disjoint latest-only chunks and drops the tombstones. The paper's
  // evaluation keeps compaction off (Table 4) because M4-LSM is designed to
  // cope with the uncompacted state; this exists because a real LSM store
  // ships with one, and as the ablation target (bench_compaction_ablation).
  Status Compact();

  const StoreConfig& config() const { return config_; }
  const std::vector<ChunkHandle>& chunks() const { return chunks_; }
  const std::vector<std::shared_ptr<FileReader>>& files() const {
    return files_;
  }
  const std::vector<DeleteRecord>& deletes() const { return deletes_; }
  size_t memtable_size() const { return memtable_.size(); }

  // Monotonic counter bumped by every state change visible to queries
  // (flush, delete, compaction); result caches key on it.
  uint64_t state_version() const { return state_version_; }

  // Total points across all chunks (including overwritten ones).
  uint64_t TotalStoredPoints() const;

  // Union time interval across chunk metadata; empty range when no chunks.
  TimeRange DataInterval() const;

  // Fraction of chunks whose time interval overlaps at least one other
  // chunk's (the x-axis of Figure 12).
  double OverlapFraction() const;

  // Number of data files written out of time order — files whose earliest
  // point is not later than everything flushed before them. These are
  // IoTDB's "unsequence" TsFiles (Appendix A.5.1), the product of
  // out-of-order arrivals.
  size_t CountUnsequenceFiles() const;

  size_t NumFiles() const { return files_.size(); }

 private:
  explicit TsStore(StoreConfig config) : config_(std::move(config)) {}

  Status Recover();
  Status AppendModsRecord(const DeleteRecord& del);
  std::string FilePath(uint64_t file_id) const;
  std::string ModsPath() const;
  std::string WalPath() const;

  StoreConfig config_;
  MemTable memtable_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<std::shared_ptr<FileReader>> files_;
  std::vector<ChunkHandle> chunks_;
  std::vector<DeleteRecord> deletes_;
  Version next_version_ = 1;
  uint64_t next_file_id_ = 1;
  uint64_t state_version_ = 0;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_STORE_H_
