#include "storage/wal.h"

#include <cstring>

#include "encoding/varint.h"
#include "obs/metrics.h"

namespace tsviz {

namespace {

std::string EncodeBody(const WalRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecord::Type::kPut: {
      PutFixed64(&body, static_cast<uint64_t>(record.point.t));
      uint64_t bits;
      std::memcpy(&bits, &record.point.v, sizeof(bits));
      PutFixed64(&body, bits);
      break;
    }
    case WalRecord::Type::kDelete:
      PutFixed64(&body, static_cast<uint64_t>(record.range.start));
      PutFixed64(&body, static_cast<uint64_t>(record.range.end));
      break;
  }
  return body;
}

// One record is type byte + two fixed64 + fixed64 checksum.
constexpr size_t kRecordSize = 1 + 16 + 8;

// Appends a checksummed record to `entry` (does not touch the file).
void EncodeRecord(const WalRecord& record, std::string* entry) {
  std::string body = EncodeBody(record);
  entry->append(body);
  PutFixed64(entry, Fnv1a64(body));
}

obs::Counter& AppendsTotal() {
  static obs::Counter& c =
      obs::GetCounter("wal_appends_total", "WAL records appended");
  return c;
}
obs::Counter& BytesTotal() {
  static obs::Counter& c =
      obs::GetCounter("wal_bytes_total", "WAL bytes written");
  return c;
}
obs::Counter& PhysicalWritesTotal() {
  static obs::Counter& c = obs::GetCounter(
      "wal_physical_writes_total",
      "write(2) calls issued to WAL segments (a batched append counts "
      "once however many records it carries)");
  return c;
}

}  // namespace

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, std::string path,
                     bool durable)
    : file_(std::move(file)), path_(std::move(path)), durable_(durable) {}

WalWriter::~WalWriter() = default;

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool durable) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         GetEnv()->NewAppendableFile(path));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), path, durable));
}

Status WalWriter::AppendRecord(const WalRecord& record) {
  if (broken_) {
    return Status::IoError("wal " + path_ + " is in a failed state");
  }
  std::string entry;
  entry.reserve(kRecordSize);
  EncodeRecord(record, &entry);
  const uint64_t size_before = file_->size();
  if (Status status = file_->Append(entry); !status.ok()) {
    // Erase any torn prefix so the corruption stays at the (replayable)
    // tail instead of ending up mid-log once later appends succeed.
    if (Status truncate = file_->Truncate(size_before); !truncate.ok()) {
      broken_ = true;
    }
    return status;
  }
  AppendsTotal().Inc();
  BytesTotal().Inc(entry.size());
  PhysicalWritesTotal().Inc();
  return Status::OK();
}

Status WalWriter::AppendPuts(const std::vector<Point>& points) {
  if (points.empty()) return Status::OK();
  if (broken_) {
    return Status::IoError("wal " + path_ + " is in a failed state");
  }
  std::string entry;
  entry.reserve(points.size() * kRecordSize);
  for (const Point& p : points) {
    WalRecord record;
    record.type = WalRecord::Type::kPut;
    record.point = p;
    EncodeRecord(record, &entry);
  }
  const uint64_t size_before = file_->size();
  if (Status status = file_->Append(entry); !status.ok()) {
    // Same torn-prefix erasure as the single-record path: a failed batch
    // must not leave a partial batch mid-log once later appends succeed.
    if (Status truncate = file_->Truncate(size_before); !truncate.ok()) {
      broken_ = true;
    }
    return status;
  }
  AppendsTotal().Inc(points.size());
  BytesTotal().Inc(entry.size());
  PhysicalWritesTotal().Inc();
  return Status::OK();
}

Status WalWriter::AppendPut(const Point& p) {
  WalRecord record;
  record.type = WalRecord::Type::kPut;
  record.point = p;
  return AppendRecord(record);
}

Status WalWriter::AppendDelete(const TimeRange& range) {
  WalRecord record;
  record.type = WalRecord::Type::kDelete;
  record.range = range;
  return AppendRecord(record);
}

Status WalWriter::Reset() {
  if (broken_) {
    return Status::IoError("wal " + path_ + " is in a failed state");
  }
  TSVIZ_RETURN_IF_ERROR(file_->Truncate(0));
  static obs::Counter& resets_total = obs::GetCounter(
      "wal_resets_total", "WAL truncations after a durable flush");
  resets_total.Inc();
  return Status::OK();
}

Status WalWriter::RotateTo(const std::string& old_path) {
  if (broken_) {
    return Status::IoError("wal " + path_ + " is in a failed state");
  }
  Env* env = GetEnv();
  if (durable_) {
    // The rotated segment is about to justify truncating away its records'
    // only other copy (the memtable, once flushed); pin it to disk first.
    TSVIZ_RETURN_IF_ERROR(file_->Sync());
  }
  // Rename first, keeping our handle open: the fd follows the inode, so on
  // any later failure renaming back restores the exact pre-call state and
  // the held handle keeps appending to the live segment.
  TSVIZ_RETURN_IF_ERROR(env->RenameFile(path_, old_path));
  TSVIZ_CRASHPOINT("wal.rotate.after_rename");
  auto fresh = env->NewAppendableFile(path_);
  if (!fresh.ok()) {
    if (Status undo = env->RenameFile(old_path, path_); !undo.ok()) {
      // Cannot restore the live segment's name; stop accepting writes
      // rather than appending to a file recovery will replay as old.
      broken_ = true;
      return Status::IoError("wal " + path_ +
                             " rotation failed and could not be undone: " +
                             fresh.status().message());
    }
    return fresh.status();
  }
  if (durable_) {
    // Make the rename + the fresh (empty) segment durable together.
    TSVIZ_RETURN_IF_ERROR(env->SyncDir(ParentDir(path_)));
  }
  file_ = std::move(fresh).value();
  static obs::Counter& rotations_total = obs::GetCounter(
      "wal_rotations_total", "WAL segment rotations at flush start");
  rotations_total.Inc();
  return Status::OK();
}

Result<WalSegmentSlice> ReadWalFrom(const std::string& path,
                                    uint64_t offset) {
  WalSegmentSlice slice;
  slice.next_offset = offset;
  auto read = GetEnv()->ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return slice;  // no log yet
    }
    return read.status();
  }
  const std::string content = std::move(read).value();
  if (offset > content.size()) {
    return Status::InvalidArgument("wal offset past end of " + path);
  }

  std::string_view cursor = std::string_view(content).substr(offset);
  while (cursor.size() >= kRecordSize) {
    std::string_view body = cursor.substr(0, kRecordSize - 8);
    std::string_view checksum_view = cursor.substr(kRecordSize - 8, 8);
    auto checksum = GetFixed64(&checksum_view);
    if (!checksum.ok() || Fnv1a64(body) != *checksum) break;  // torn tail

    WalRecord record;
    auto type = static_cast<WalRecord::Type>(body[0]);
    body.remove_prefix(1);
    auto a = GetFixed64(&body);
    auto b = GetFixed64(&body);
    if (!a.ok() || !b.ok()) break;
    if (type == WalRecord::Type::kPut) {
      record.type = WalRecord::Type::kPut;
      record.point.t = static_cast<Timestamp>(*a);
      std::memcpy(&record.point.v, &*b, sizeof(record.point.v));
    } else if (type == WalRecord::Type::kDelete) {
      record.type = WalRecord::Type::kDelete;
      record.range.start = static_cast<Timestamp>(*a);
      record.range.end = static_cast<Timestamp>(*b);
    } else {
      break;  // unknown type: treat as corruption boundary
    }
    slice.records.push_back(record);
    cursor.remove_prefix(kRecordSize);
    slice.next_offset += kRecordSize;
  }
  slice.truncated_tail = !cursor.empty();
  return slice;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* truncated_tail) {
  TSVIZ_ASSIGN_OR_RETURN(WalSegmentSlice slice, ReadWalFrom(path, 0));
  if (truncated_tail != nullptr) *truncated_tail = slice.truncated_tail;
  return std::move(slice.records);
}

}  // namespace tsviz
