#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "encoding/varint.h"
#include "obs/metrics.h"

namespace tsviz {

namespace {

std::string EncodeBody(const WalRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecord::Type::kPut: {
      PutFixed64(&body, static_cast<uint64_t>(record.point.t));
      uint64_t bits;
      std::memcpy(&bits, &record.point.v, sizeof(bits));
      PutFixed64(&body, bits);
      break;
    }
    case WalRecord::Type::kDelete:
      PutFixed64(&body, static_cast<uint64_t>(record.range.start));
      PutFixed64(&body, static_cast<uint64_t>(record.range.end));
      break;
  }
  return body;
}

// One record is type byte + two fixed64 + fixed64 checksum.
constexpr size_t kRecordSize = 1 + 16 + 8;

}  // namespace

WalWriter::WalWriter(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open wal " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, path));
}

Status WalWriter::AppendRecord(const WalRecord& record) {
  std::string body = EncodeBody(record);
  std::string entry = body;
  PutFixed64(&entry, Fnv1a64(body));
  if (std::fwrite(entry.data(), 1, entry.size(), file_) != entry.size()) {
    return Status::IoError("short wal write to " + path_);
  }
  static obs::Counter& appends_total =
      obs::GetCounter("wal_appends_total", "WAL records appended");
  static obs::Counter& bytes_total =
      obs::GetCounter("wal_bytes_total", "WAL bytes written");
  appends_total.Inc();
  bytes_total.Inc(entry.size());
  return Status::OK();
}

Status WalWriter::AppendPut(const Point& p) {
  WalRecord record;
  record.type = WalRecord::Type::kPut;
  record.point = p;
  return AppendRecord(record);
}

Status WalWriter::AppendDelete(const TimeRange& range) {
  WalRecord record;
  record.type = WalRecord::Type::kDelete;
  record.range = range;
  return AppendRecord(record);
}

Status WalWriter::Reset() {
  // Reopen with truncation; keep appending to the same path afterwards.
  std::FILE* file = std::freopen(path_.c_str(), "wb", file_);
  if (file == nullptr) {
    file_ = nullptr;
    return Status::IoError("cannot truncate wal " + path_);
  }
  file_ = file;
  static obs::Counter& resets_total = obs::GetCounter(
      "wal_resets_total", "WAL truncations after a durable flush");
  resets_total.Inc();
  return Status::OK();
}

Status WalWriter::RotateTo(const std::string& old_path) {
  if (std::fflush(file_) != 0) {
    return Status::IoError("cannot flush wal " + path_);
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(path_.c_str(), old_path.c_str()) != 0) {
    // Reopen so the writer stays usable; the records are still in place.
    file_ = std::fopen(path_.c_str(), "ab");
    return Status::IoError("cannot rotate wal " + path_ + ": " +
                           std::strerror(errno));
  }
  std::FILE* fresh = std::fopen(path_.c_str(), "ab");
  if (fresh == nullptr) {
    return Status::IoError("cannot reopen wal " + path_ + ": " +
                           std::strerror(errno));
  }
  file_ = fresh;
  static obs::Counter& rotations_total = obs::GetCounter(
      "wal_rotations_total", "WAL segment rotations at flush start");
  rotations_total.Inc();
  return Status::OK();
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       bool* truncated_tail) {
  if (truncated_tail != nullptr) *truncated_tail = false;
  std::vector<WalRecord> records;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return records;  // no log yet

  std::string content;
  char buffer[8192];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);

  std::string_view cursor = content;
  while (cursor.size() >= kRecordSize) {
    std::string_view body = cursor.substr(0, kRecordSize - 8);
    std::string_view checksum_view = cursor.substr(kRecordSize - 8, 8);
    auto checksum = GetFixed64(&checksum_view);
    if (!checksum.ok() || Fnv1a64(body) != *checksum) break;  // torn tail

    WalRecord record;
    auto type = static_cast<WalRecord::Type>(body[0]);
    body.remove_prefix(1);
    auto a = GetFixed64(&body);
    auto b = GetFixed64(&body);
    if (!a.ok() || !b.ok()) break;
    if (type == WalRecord::Type::kPut) {
      record.type = WalRecord::Type::kPut;
      record.point.t = static_cast<Timestamp>(*a);
      std::memcpy(&record.point.v, &*b, sizeof(record.point.v));
    } else if (type == WalRecord::Type::kDelete) {
      record.type = WalRecord::Type::kDelete;
      record.range.start = static_cast<Timestamp>(*a);
      record.range.end = static_cast<Timestamp>(*b);
    } else {
      break;  // unknown type: treat as corruption boundary
    }
    records.push_back(record);
    cursor.remove_prefix(kRecordSize);
  }
  if (!cursor.empty() && truncated_tail != nullptr) *truncated_tail = true;
  return records;
}

}  // namespace tsviz
