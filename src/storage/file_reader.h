#ifndef TSVIZ_STORAGE_FILE_READER_H_
#define TSVIZ_STORAGE_FILE_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/time_range.h"
#include "storage/chunk_metadata.h"

namespace tsviz {

// Random-access reader over one data file. Opening a file reads only the
// footer; chunk data is fetched with positional reads on demand, which is
// what makes lazy/partial chunk loading a genuine I/O saving.
class FileReader {
 public:
  static Result<std::shared_ptr<FileReader>> Open(const std::string& path);

  ~FileReader();
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  const std::vector<ChunkMetadata>& chunks() const { return chunks_; }
  const std::string& path() const { return path_; }
  uint64_t file_size() const { return file_size_; }

  // Process-unique id minted per reader instance; the shared page cache
  // keys on it, so a reopened file can never alias a stale cached page.
  // The destructor evicts every cache entry carrying this id.
  uint64_t cache_id() const { return cache_id_; }

  // File-level summary (the TimeseriesMetadata analog of Figure 15):
  // aggregated over all chunks at open time, so readers can prune a whole
  // file with one comparison instead of touching per-chunk metadata.
  const TimeRange& interval() const { return interval_; }
  uint64_t total_points() const { return total_points_; }

  // Reads `length` bytes starting at absolute file offset `offset`.
  Result<std::string> ReadRange(uint64_t offset, uint64_t length) const;

 private:
  FileReader(std::unique_ptr<RandomAccessFile> file, std::string path);

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  uint64_t file_size_;
  uint64_t cache_id_;
  std::vector<ChunkMetadata> chunks_;
  TimeRange interval_{1, 0};  // empty until chunks are loaded
  uint64_t total_points_ = 0;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_FILE_READER_H_
