#ifndef TSVIZ_STORAGE_OPTIONS_H_
#define TSVIZ_STORAGE_OPTIONS_H_

#include <cstddef>
#include <string>

#include "encoding/page.h"

namespace tsviz {

// Knobs controlling how a flushed chunk is encoded. Defaults mirror the
// paper's IoTDB settings (Table 4): avg_series_point_number_threshold = 1000
// points per chunk; compaction is never run, so chunks are immutable once
// flushed.
struct ChunkEncodingOptions {
  size_t page_size_points = 200;
  TsCodec ts_codec = TsCodec::kTs2Diff;
  ValueCodec value_codec = ValueCodec::kGorilla;
  bool build_index = true;  // fit the step-regression index at flush time
};

struct StoreConfig {
  // Directory holding data files; created if missing.
  std::string data_dir;

  // Points per flushed chunk (avg_series_point_number_threshold).
  size_t points_per_chunk = 1000;

  // Memtable size (in points) that triggers an automatic flush. Workloads
  // usually keep this equal to points_per_chunk so each flush emits exactly
  // one chunk; out-of-order experiments rely on that.
  size_t memtable_flush_threshold = 1000;

  // Log every write/delete to a WAL before applying it, so the unflushed
  // memtable survives a crash. Disable for bulk loads where losing the
  // memtable is acceptable.
  bool enable_wal = true;

  // fsync data files + their directory at flush/compaction commit, the
  // manifest on creation, and WAL segments at rotation — the power-loss
  // durability contract. Disable (SET durable_fsync = 0) for benchmarks
  // where process-crash durability (unbuffered writes, atomic renames)
  // is enough.
  bool durable_fsync = true;

  // Width of one time partition. When positive, flushed files are grouped
  // into directories data_dir/p<index>/ where index = floor(t / interval);
  // compaction and TTL expiry operate per partition and queries prune whole
  // partitions by interval. 0 keeps the flat single-group layout. The value
  // is pinned by a partition.meta manifest when the store is created; on
  // reopen the manifest wins over a differing config (a store cannot change
  // its partitioning after the fact). Files found at the root of data_dir
  // (pre-partitioning layouts) remain readable as one unbounded legacy
  // group.
  int64_t partition_interval_ms = 0;

  ChunkEncodingOptions encoding;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_OPTIONS_H_
