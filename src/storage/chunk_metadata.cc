#include "storage/chunk_metadata.h"

#include <cstring>

#include "encoding/varint.h"

namespace tsviz {

namespace {

void PutPoint(std::string* dst, const Point& p) {
  PutFixed64(dst, static_cast<uint64_t>(p.t));
  uint64_t bits;
  std::memcpy(&bits, &p.v, sizeof(bits));
  PutFixed64(dst, bits);
}

Result<Point> GetPoint(std::string_view* src) {
  Point p;
  TSVIZ_ASSIGN_OR_RETURN(uint64_t t_raw, GetFixed64(src));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t v_bits, GetFixed64(src));
  p.t = static_cast<Timestamp>(t_raw);
  std::memcpy(&p.v, &v_bits, sizeof(p.v));
  return p;
}

}  // namespace

void ChunkMetadata::SerializeTo(std::string* dst) const {
  PutVarint64(dst, version);
  PutVarint64(dst, count);
  PutPoint(dst, stats.first);
  PutPoint(dst, stats.last);
  PutPoint(dst, stats.bottom);
  PutPoint(dst, stats.top);
  PutVarint64(dst, data_offset);
  PutVarint64(dst, data_length);
  PutVarint64(dst, pages.size());
  for (const PageInfo& page : pages) {
    PutVarint64(dst, page.count);
    PutFixed64(dst, static_cast<uint64_t>(page.min_t));
    PutFixed64(dst, static_cast<uint64_t>(page.max_t));
    PutVarint64(dst, page.offset);
    PutVarint64(dst, page.length);
  }
  index.SerializeTo(dst);
}

Result<ChunkMetadata> ChunkMetadata::Deserialize(std::string_view* src) {
  ChunkMetadata meta;
  TSVIZ_ASSIGN_OR_RETURN(meta.version, GetVarint64(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.count, GetVarint64(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.stats.first, GetPoint(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.stats.last, GetPoint(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.stats.bottom, GetPoint(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.stats.top, GetPoint(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.data_offset, GetVarint64(src));
  TSVIZ_ASSIGN_OR_RETURN(meta.data_length, GetVarint64(src));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t n_pages, GetVarint64(src));
  if (n_pages > (1u << 26)) return Status::Corruption("absurd page count");
  meta.pages.reserve(n_pages);
  for (uint64_t i = 0; i < n_pages; ++i) {
    PageInfo page;
    TSVIZ_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(src));
    page.count = static_cast<uint32_t>(count);
    TSVIZ_ASSIGN_OR_RETURN(uint64_t min_raw, GetFixed64(src));
    TSVIZ_ASSIGN_OR_RETURN(uint64_t max_raw, GetFixed64(src));
    page.min_t = static_cast<Timestamp>(min_raw);
    page.max_t = static_cast<Timestamp>(max_raw);
    TSVIZ_ASSIGN_OR_RETURN(uint64_t offset, GetVarint64(src));
    TSVIZ_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(src));
    page.offset = static_cast<uint32_t>(offset);
    page.length = static_cast<uint32_t>(length);
    meta.pages.push_back(page);
  }
  TSVIZ_ASSIGN_OR_RETURN(meta.index, StepRegressionModel::Deserialize(src));
  return meta;
}

ChunkStats ComputeChunkStats(const std::vector<Point>& points) {
  ChunkStats stats;
  if (points.empty()) return stats;
  stats.first = points.front();
  stats.last = points.back();
  stats.bottom = points.front();
  stats.top = points.front();
  for (const Point& p : points) {
    if (p.v < stats.bottom.v) stats.bottom = p;
    if (p.v > stats.top.v) stats.top = p;
  }
  return stats;
}

}  // namespace tsviz
