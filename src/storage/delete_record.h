#ifndef TSVIZ_STORAGE_DELETE_RECORD_H_
#define TSVIZ_STORAGE_DELETE_RECORD_H_

#include "common/time_range.h"
#include "common/types.h"

namespace tsviz {

// A delete D^k (Definition 2.5): an append-only range tombstone. A timestamp
// t is covered iff range.Contains(t); the delete applies to a point from
// chunk C^j iff version > j.
struct DeleteRecord {
  TimeRange range;
  Version version = 0;

  // Whether this delete removes a point at time `t` written by a chunk with
  // version `chunk_version`.
  bool Deletes(Timestamp t, Version chunk_version) const {
    return version > chunk_version && range.Contains(t);
  }

  friend bool operator==(const DeleteRecord&, const DeleteRecord&) = default;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_DELETE_RECORD_H_
