#include "storage/chunk_writer.h"

#include <algorithm>

namespace tsviz {

Result<EncodedChunk> EncodeChunk(const std::vector<Point>& points,
                                 Version version,
                                 const ChunkEncodingOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot encode an empty chunk");
  }
  if (options.page_size_points == 0) {
    return Status::InvalidArgument("page_size_points must be positive");
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].t <= points[i - 1].t) {
      return Status::InvalidArgument(
          "chunk points must be strictly increasing in time");
    }
  }

  EncodedChunk chunk;
  chunk.meta.version = version;
  chunk.meta.count = points.size();
  chunk.meta.stats = ComputeChunkStats(points);

  for (size_t begin = 0; begin < points.size();
       begin += options.page_size_points) {
    size_t count =
        std::min(options.page_size_points, points.size() - begin);
    PageInfo info;
    TSVIZ_RETURN_IF_ERROR(EncodePage(points.data() + begin, count,
                                     options.ts_codec, options.value_codec,
                                     &chunk.blob, &info));
    chunk.meta.pages.push_back(info);
  }

  if (options.build_index) {
    chunk.meta.index = FitStepRegression(points);
  } else {
    // A count-only model so Eval degenerates gracefully.
    chunk.meta.index.count = points.size();
  }

  chunk.meta.data_offset = 0;
  chunk.meta.data_length = chunk.blob.size();
  return chunk;
}

}  // namespace tsviz
