#include "storage/file_writer.h"

#include <cerrno>
#include <cstring>

#include "storage/file_format.h"

namespace tsviz {

FileWriter::FileWriter(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<FileWriter>> FileWriter::Create(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  auto writer =
      std::unique_ptr<FileWriter>(new FileWriter(file, path));
  if (std::fwrite(kFileMagic.data(), 1, kFileMagic.size(), file) !=
      kFileMagic.size()) {
    return Status::IoError("cannot write magic to " + path);
  }
  writer->offset_ = kFileMagic.size();
  return writer;
}

Status FileWriter::AppendChunk(const std::vector<Point>& points,
                               Version version,
                               const ChunkEncodingOptions& options,
                               ChunkMetadata* out_meta) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  TSVIZ_ASSIGN_OR_RETURN(EncodedChunk chunk,
                         EncodeChunk(points, version, options));
  if (std::fwrite(chunk.blob.data(), 1, chunk.blob.size(), file_) !=
      chunk.blob.size()) {
    return Status::IoError("short write to " + path_);
  }
  chunk.meta.data_offset = offset_;
  offset_ += chunk.blob.size();
  chunks_.push_back(chunk.meta);
  if (out_meta != nullptr) *out_meta = chunk.meta;
  return Status::OK();
}

Status FileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  finished_ = true;
  std::string tail = SerializeFileTail(chunks_);
  if (std::fwrite(tail.data(), 1, tail.size(), file_) != tail.size()) {
    return Status::IoError("short footer write to " + path_);
  }
  if (std::fflush(file_) != 0 || std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IoError("cannot close " + path_);
  }
  file_ = nullptr;
  return Status::OK();
}

}  // namespace tsviz
