#include "storage/file_writer.h"

#include "storage/file_format.h"

namespace tsviz {

namespace {

std::string TmpPath(const std::string& path) { return path + ".tmp"; }

}  // namespace

FileWriter::FileWriter(std::unique_ptr<WritableFile> file, std::string path,
                       bool durable)
    : file_(std::move(file)), path_(std::move(path)), durable_(durable) {}

FileWriter::~FileWriter() {
  if (!finished_) {
    // Abandoned mid-write: drop the partial tmp so it cannot be mistaken
    // for a data file (Recover also sweeps stragglers after a crash).
    file_.reset();
    (void)GetEnv()->RemoveFile(TmpPath(path_));
  }
}

Result<std::unique_ptr<FileWriter>> FileWriter::Create(const std::string& path,
                                                       bool durable) {
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         GetEnv()->NewWritableFile(TmpPath(path)));
  auto writer = std::unique_ptr<FileWriter>(
      new FileWriter(std::move(file), path, durable));
  TSVIZ_RETURN_IF_ERROR(writer->file_->Append(kFileMagic));
  writer->offset_ = kFileMagic.size();
  return writer;
}

Status FileWriter::AppendChunk(const std::vector<Point>& points,
                               Version version,
                               const ChunkEncodingOptions& options,
                               ChunkMetadata* out_meta) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  TSVIZ_ASSIGN_OR_RETURN(EncodedChunk chunk,
                         EncodeChunk(points, version, options));
  TSVIZ_RETURN_IF_ERROR(file_->Append(chunk.blob));
  chunk.meta.data_offset = offset_;
  offset_ += chunk.blob.size();
  chunks_.push_back(chunk.meta);
  if (out_meta != nullptr) *out_meta = chunk.meta;
  return Status::OK();
}

Status FileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  finished_ = true;
  TSVIZ_RETURN_IF_ERROR(file_->Append(SerializeFileTail(chunks_)));
  if (durable_) {
    TSVIZ_RETURN_IF_ERROR(file_->Sync());
  }
  TSVIZ_RETURN_IF_ERROR(file_->Close());
  TSVIZ_RETURN_IF_ERROR(GetEnv()->RenameFile(TmpPath(path_), path_));
  if (durable_) {
    TSVIZ_RETURN_IF_ERROR(GetEnv()->SyncDir(ParentDir(path_)));
  }
  return Status::OK();
}

}  // namespace tsviz
