#include "storage/memtable.h"

namespace tsviz {

std::vector<Point> MemTable::Drain() {
  std::vector<Point> out;
  out.reserve(points_.size());
  for (const auto& [t, v] : points_) {
    out.push_back(Point{t, v});
  }
  points_.clear();
  return out;
}

}  // namespace tsviz
