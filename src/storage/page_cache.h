#ifndef TSVIZ_STORAGE_PAGE_CACHE_H_
#define TSVIZ_STORAGE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace tsviz {

// Process-wide LRU cache of *decoded* pages, bounded by (approximate)
// resident bytes. Sharing decoded pages across queries is safe because LSM
// data files are immutable: a (file, chunk, page) triple never changes
// content, it can only disappear when compaction or a series drop obsoletes
// the file — at which point the FileReader's destructor evicts every entry
// it contributed (see EvictFile).
//
// Keys use a process-unique id minted per FileReader instance rather than
// the path, so a reopened store can never alias a stale entry. Values are
// shared_ptrs: eviction never invalidates a page a running query still
// holds. Thread-safe; the paged data itself is immutable after insert.
class SharedPageCache {
 public:
  // The process singleton (leaked on purpose: FileReader destructors run
  // arbitrarily late and must always have a cache to evict from).
  static SharedPageCache& Instance();

  struct PageKey {
    uint64_t file_id = 0;       // FileReader::cache_id()
    uint64_t chunk_offset = 0;  // ChunkMetadata::data_offset within the file
    uint32_t page_index = 0;

    friend bool operator==(const PageKey&, const PageKey&) = default;
  };

  using PagePtr = std::shared_ptr<const std::vector<Point>>;

  explicit SharedPageCache(size_t capacity_bytes);

  SharedPageCache(const SharedPageCache&) = delete;
  SharedPageCache& operator=(const SharedPageCache&) = delete;

  // The cached page, or null on a miss. Bumps the entry to most-recent and
  // the hit/miss counters either way.
  PagePtr Lookup(const PageKey& key);

  // Inserts (or refreshes) the decoded page, charging `points->size() *
  // sizeof(Point)` plus a fixed per-entry overhead against the byte budget
  // and evicting from the LRU tail until the budget holds. A capacity of 0
  // disables caching (inserts are dropped).
  void Insert(const PageKey& key, PagePtr points);

  // Drops one entry (the corruption path: a cached page whose point count
  // stopped matching the page directory must never be served again).
  void Erase(const PageKey& key);

  // Drops every entry contributed by `file_id`; called by ~FileReader, so
  // compaction (which closes the obsoleted files) invalidates exactly the
  // pages that no longer exist.
  void EvictFile(uint64_t file_id);

  // Runtime knob (SQL `SET page_cache_bytes = n`); shrinking evicts
  // immediately.
  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const;

  size_t size_bytes() const;
  size_t entries() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const PageKey& key) const;
  };

  struct Entry {
    PageKey key;
    PagePtr points;
    size_t bytes = 0;
  };

  // Callers hold `mutex_`.
  void EvictTailLocked();
  void RemoveLocked(std::list<Entry>::iterator it);

  mutable std::mutex mutex_;
  size_t capacity_bytes_;
  size_t size_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<PageKey, std::list<Entry>::iterator, KeyHash> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_PAGE_CACHE_H_
