#ifndef TSVIZ_STORAGE_MEMTABLE_H_
#define TSVIZ_STORAGE_MEMTABLE_H_

#include <cstddef>
#include <map>
#include <vector>

#include "common/time_range.h"
#include "common/types.h"

namespace tsviz {

// The in-memory write buffer of the LSM tree. Keyed by timestamp with
// last-write-wins semantics, so a flush always emits strictly increasing
// timestamps; out-of-order arrivals across flushes are what produce
// overlapping chunks on disk (Section 2.2, Figure 2(a)).
class MemTable {
 public:
  // Inserts or overwrites the value at `t`.
  void Put(Timestamp t, Value v) { points_[t] = v; }

  // Inserts only when no value exists at `t` — used when a failed flush
  // restores drained points without clobbering newer concurrent writes.
  void PutIfAbsent(Timestamp t, Value v) { points_.emplace(t, v); }

  // Removes every buffered point inside the closed range. Mirrors IoTDB,
  // where a delete applies to in-memory data immediately (flushed chunks
  // are handled by version-ordered tombstones instead).
  void EraseRange(const TimeRange& range) {
    points_.erase(points_.lower_bound(range.start),
                  points_.upper_bound(range.end));
  }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  // Approximate heap footprint: every std::map node carries two words of
  // payload plus three pointers, a color bit and allocator overhead —
  // call it 48 bytes per point. The background auto-flush policy keys its
  // size trigger off this.
  size_t ApproxBytes() const { return points_.size() * kApproxBytesPerPoint; }

  static constexpr size_t kApproxBytesPerPoint = 48;

  // Returns the buffered points sorted by time and clears the table.
  std::vector<Point> Drain();

 private:
  std::map<Timestamp, Value> points_;
};

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_MEMTABLE_H_
