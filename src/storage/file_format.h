#ifndef TSVIZ_STORAGE_FILE_FORMAT_H_
#define TSVIZ_STORAGE_FILE_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/chunk_metadata.h"
#include "storage/delete_record.h"

namespace tsviz {

// Data file (TsFile analog) layout:
//
//   magic(8) | chunk blob* | footer | fixed64 footer_len
//   | fixed64 footer_checksum | magic(8)
//
// The footer is the serialized list of ChunkMetadata; readers load only the
// footer to serve metadata queries (the MetadataReader path in Figure 15).
// Delete operations live in a sidecar ".mods" file of fixed-size records,
// mirroring IoTDB's TsFile.mods.

inline constexpr std::string_view kFileMagic = "TSVZFL01";
inline constexpr std::string_view kModsMagic = "TSVZMD01";

// Serializes the complete file tail (footer + trailer) for `chunks`.
std::string SerializeFileTail(const std::vector<ChunkMetadata>& chunks);

// Parses chunk metadata back out of the last `tail` bytes of a file whose
// total size is `file_size` (used to validate offsets).
Result<std::vector<ChunkMetadata>> ParseFileTail(std::string_view tail,
                                                 uint64_t file_size);

// Minimum number of bytes a reader must fetch from the end of the file to
// find the trailer (footer_len + checksum + magic).
inline constexpr size_t kFileTrailerSize = 8 + 8 + 8;

// One delete record in the mods file: fixed64 start, fixed64 end,
// fixed64 version.
inline constexpr size_t kModsRecordSize = 24;

void SerializeDeleteRecord(const DeleteRecord& del, std::string* dst);
Result<DeleteRecord> ParseDeleteRecord(std::string_view* src);

}  // namespace tsviz

#endif  // TSVIZ_STORAGE_FILE_FORMAT_H_
