#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"

namespace tsviz::obs {

namespace {

// Smallest i with value <= 2^i, clamped to the bucket range.
size_t BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN and negatives
  int e = std::ilogb(value);
  if (std::ldexp(1.0, e) < value) ++e;
  if (e < 0) return 0;
  size_t i = static_cast<size_t>(e);
  return i < Histogram::kNumBuckets ? i : Histogram::kNumBuckets - 1;
}

void AtomicAddDouble(std::atomic<double>& target, double d) {
  double cur = target.load(std::memory_order_relaxed);
  while (
      !target.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double d) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < d &&
         !target.compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void Histogram::Observe(double value) {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
  AtomicMaxDouble(max_, value);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::BucketBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));
}

double Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      double hi = i + 1 >= kNumBuckets ? max()
                                       : std::ldexp(1.0, static_cast<int>(i));
      if (hi < lo) hi = lo;
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      double est = lo + (hi - lo) * frac;
      // The true maximum is tracked exactly; never report past it.
      return std::min(est, max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  // Surface the logging layer's severity counters (satellite: WARN+ logs are
  // observable, so silent-failure paths can be asserted on).
  RegisterCallback("log_warnings_total", "WARN log lines emitted", [] {
    return static_cast<double>(LogWarningCount());
  });
  RegisterCallback("log_errors_total", "ERROR log lines emitted", [] {
    return static_cast<double>(LogErrorCount());
  });
  // Env-layer durability and fault-injection counters. common/ cannot
  // depend on obs/, so env.cc counts in plain atomics and obs bridges them
  // into the registry here.
  RegisterCallback("fsync_total", "File fsync calls issued by the env", [] {
    return static_cast<double>(EnvFsyncCount());
  });
  RegisterCallback("fsync_dir_total",
                   "Directory fsync calls issued by the env", [] {
                     return static_cast<double>(EnvDirSyncCount());
                   });
  RegisterCallback("fsync_failures_total",
                   "fsync calls that returned an error", [] {
                     return static_cast<double>(EnvFsyncFailureCount());
                   });
  RegisterCallback("faultfs_faults_injected_total",
                   "Faults injected by the fault-injection env", [] {
                     return static_cast<double>(EnvFaultsInjectedCount());
                   });
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    TSVIZ_CHECK(!gauges_.contains(name) && !histograms_.contains(name) &&
                !callbacks_.contains(name));
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    if (!help.empty()) help_[it->first] = std::string(help);
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    TSVIZ_CHECK(!counters_.contains(name) && !histograms_.contains(name) &&
                !callbacks_.contains(name));
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    if (!help.empty()) help_[it->first] = std::string(help);
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    TSVIZ_CHECK(!counters_.contains(name) && !gauges_.contains(name) &&
                !callbacks_.contains(name));
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
    if (!help.empty()) help_[it->first] = std::string(help);
  }
  return *it->second;
}

void MetricsRegistry::RegisterCallback(std::string_view name,
                                       std::string_view help,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  TSVIZ_CHECK(!counters_.contains(name) && !gauges_.contains(name) &&
              !histograms_.contains(name));
  callbacks_[std::string(name)] = std::move(fn);
  if (!help.empty()) help_[std::string(name)] = std::string(help);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  auto emit_header = [&](const std::string& name, const char* type) {
    auto help = help_.find(name);
    if (help != help_.end()) {
      os << "# HELP " << name << " " << help->second << "\n";
    }
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (const auto& [name, counter] : counters_) {
    emit_header(name, "counter");
    os << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    emit_header(name, "gauge");
    os << name << " " << FormatDouble(gauge->value()) << "\n";
  }
  for (const auto& [name, fn] : callbacks_) {
    emit_header(name, "gauge");
    os << name << " " << FormatDouble(fn()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    emit_header(name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t in_bucket = histogram->BucketCount(i);
      cumulative += in_bucket;
      // Keep the exposition small: only emit buckets that close a run of
      // samples, plus the mandatory +Inf bucket.
      if (in_bucket == 0 && i + 1 < Histogram::kNumBuckets) continue;
      os << name << "_bucket{le=\""
         << FormatDouble(Histogram::BucketBound(i)) << "\"} " << cumulative
         << "\n";
    }
    os << name << "_sum " << FormatDouble(histogram->sum()) << "\n";
    os << name << "_count " << histogram->count() << "\n";
    // Pre-computed quantiles as plain gauges: scrapers get latency
    // percentiles without needing histogram_quantile() support.
    os << name << "_p50 " << FormatDouble(histogram->Quantile(0.5)) << "\n";
    os << name << "_p95 " << FormatDouble(histogram->Quantile(0.95)) << "\n";
    os << name << "_p99 " << FormatDouble(histogram->Quantile(0.99)) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << gauge->value();
  }
  for (const auto& [name, fn] : callbacks_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << fn();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << histogram->count()
       << ",\"sum\":" << histogram->sum() << ",\"max\":" << histogram->max()
       << ",\"p50\":" << histogram->Quantile(0.5)
       << ",\"p90\":" << histogram->Quantile(0.9)
       << ",\"p95\":" << histogram->Quantile(0.95)
       << ",\"p99\":" << histogram->Quantile(0.99) << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tsviz::obs
