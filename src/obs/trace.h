#ifndef TSVIZ_OBS_TRACE_H_
#define TSVIZ_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tsviz::obs {

// Per-query phase timing tree. A Trace owns the root node; TraceSpan is the
// RAII handle that opens a phase on construction and charges the elapsed
// time on destruction. Spans nest: a span opened while another is live
// becomes its child. Re-entering the same phase name under the same parent
// merges into one node (millis and calls accumulate), so a phase executed
// once per time span stays one line in the tree instead of thousands.
//
// A Trace is single-threaded by design: it is carried by one query through
// one execution. Parallel executors give each worker its own QueryStats
// without a trace (see m4/parallel.cc).

struct TraceNode {
  std::string name;
  double millis = 0.0;   // total time inside this phase
  uint64_t calls = 0;    // times the phase was entered
  std::vector<std::unique_ptr<TraceNode>> children;

  // Find-or-create a child by phase name.
  TraceNode* Child(std::string_view child_name);
};

// Deep copy of a span tree.
std::unique_ptr<TraceNode> CloneTree(const TraceNode& node);

// Merges `src` into `dst`: millis and calls accumulate, and same-named
// children merge recursively (the node-level analog of TraceSpan's
// re-enter-merges rule). Used by the parallel executor to fold worker
// trees into the parent trace and by the flight recorder's profile.
void MergeTree(TraceNode* dst, const TraceNode& src);

class Trace {
 public:
  explicit Trace(std::string root_name);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const TraceNode& root() const { return root_; }
  TraceNode& root() { return root_; }

  // Total time charged to the root span so far.
  double TotalMillis() const { return root_.millis; }

  // Indented human-readable tree: "name  millis  calls" per line.
  std::string ToString() const;

  // Merges another tree's children into the innermost live span. The
  // parallel M4 executor joins its workers' per-block traces this way, so
  // the solve_*/index_probe detail they gathered lands under the parent
  // query instead of vanishing behind pool_wait.
  void MergeChildrenFrom(const TraceNode& other_root);

 private:
  friend class TraceSpan;
  TraceNode root_;
  TraceNode* current_;  // innermost live span; never null
};

// RAII phase marker. A null trace makes every operation a no-op, so
// instrumented code stays branch-cheap when tracing is off.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Trace* trace_ = nullptr;
  TraceNode* node_ = nullptr;
  TraceNode* parent_ = nullptr;  // node to restore as current on close
  Clock::time_point start_;
};

}  // namespace tsviz::obs

#endif  // TSVIZ_OBS_TRACE_H_
