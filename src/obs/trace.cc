#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace tsviz::obs {

TraceNode* TraceNode::Child(std::string_view child_name) {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  children.push_back(std::make_unique<TraceNode>());
  children.back()->name = std::string(child_name);
  return children.back().get();
}

std::unique_ptr<TraceNode> CloneTree(const TraceNode& node) {
  auto copy = std::make_unique<TraceNode>();
  copy->name = node.name;
  copy->millis = node.millis;
  copy->calls = node.calls;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(CloneTree(*child));
  }
  return copy;
}

void MergeTree(TraceNode* dst, const TraceNode& src) {
  dst->millis += src.millis;
  dst->calls += src.calls;
  for (const auto& child : src.children) {
    MergeTree(dst->Child(child->name), *child);
  }
}

Trace::Trace(std::string root_name) : current_(&root_) {
  root_.name = std::move(root_name);
  root_.calls = 1;  // the query itself; its millis accrue via root spans
}

void Trace::MergeChildrenFrom(const TraceNode& other_root) {
  for (const auto& child : other_root.children) {
    MergeTree(current_->Child(child->name), *child);
  }
}

namespace {

void Render(const TraceNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", node.millis);
  *os << node.name << "  " << millis << " ms  x" << node.calls << "\n";
  for (const auto& child : node.children) {
    Render(*child, depth + 1, os);
  }
}

}  // namespace

std::string Trace::ToString() const {
  std::ostringstream os;
  Render(root_, 0, &os);
  return os.str();
}

TraceSpan::TraceSpan(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ == nullptr) return;
  parent_ = trace_->current_;
  node_ = parent_->Child(name);
  trace_->current_ = node_;
  start_ = Clock::now();
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  node_->millis +=
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  ++node_->calls;
  trace_->current_ = parent_;
}

}  // namespace tsviz::obs
