#ifndef TSVIZ_OBS_RECORDER_H_
#define TSVIZ_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tsviz::obs {

// The flight recorder: a process-wide, byte-bounded ring buffer of
// structured events describing what the engine was doing — query
// completions, background jobs, corruption/quarantine incidents, and server
// connection lifecycle. Unlike the metrics registry (aggregates) and
// EXPLAIN ANALYZE (opt-in, one query), the recorder is always on, so a
// production anomaly can be diagnosed after the fact without re-running
// anything: `SHOW QUERIES` reads the history, `SHOW PROFILE` reads the
// merged span trees, and `DUMP TRACE '<path>'` exports the whole buffer as
// Chrome trace-event JSON for Perfetto / chrome://tracing.
//
// Cost model: recording one event is a short mutex-guarded deque append —
// one per *query*, never inside the per-span/per-chunk hot path. Whether a
// statement gets a real trace attached is decided by two knobs:
//
//   SET trace_sample_every = N   every Nth SELECT carries a full Trace
//                                (0 = off, the default);
//   SET slow_query_millis = T    every SELECT carries a Trace, and any
//                                statement slower than T is WARN-logged and
//                                flagged slow (0 = off, the default).
//
// With both off the added per-query cost is one atomic load (the sampling
// check) plus the final event append.

enum class EventKind : uint8_t { kQuery, kBgJob, kCorruption, kConnection };

const char* EventKindName(EventKind kind);

// Milliseconds since an arbitrary process-wide epoch on the steady clock —
// the recorder's shared timebase. Chrome trace export turns these into the
// microsecond `ts` fields.
double SteadyNowMillis();

// Small, stable, 1-based integer identifying the calling thread; used as
// the Chrome trace `tid` so query threads and background workers render as
// distinct tracks.
uint64_t CurrentThreadTrack();

// One recorded event. Fields that do not apply to a kind stay at their
// defaults (a corruption event has no rows; a connection event no stats).
struct RecordedEvent {
  EventKind kind = EventKind::kQuery;
  uint64_t id = 0;           // assigned by Record(), monotonically increasing
  double end_millis = 0;     // SteadyNowMillis() at completion (Record() fills)
  double millis = 0;         // duration of the recorded activity
  uint64_t thread_track = 0;  // CurrentThreadTrack() (Record() fills)
  std::string statement;     // SQL text / "<job> <series>" / message
  std::string status;        // "OK" or the error string
  uint64_t rows = 0;         // result rows (queries) / statements (connections)
  bool degraded = false;     // QueryStats::degraded
  bool sampled = false;      // trace attached by trace_sample_every
  bool slow = false;         // over the slow_query_millis threshold
  uint64_t chunks_total = 0;
  uint64_t chunks_loaded = 0;
  uint64_t points_scanned = 0;
  uint64_t bytes_read = 0;
  uint64_t metadata_reads = 0;
  // Full span tree for sampled, slow, analyzed and background-job events;
  // shared so the ring and a caller (EXPLAIN ANALYZE) can hold it at once.
  std::shared_ptr<const Trace> trace;

  // Approximate heap footprint, the unit of the ring's byte bound.
  size_t ApproxBytes() const;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacityBytes = 4u << 20;

  // The process-wide recorder. Registers its own metrics
  // (recorder_events_total, recorder_events_dropped_total, recorder_bytes,
  // slow_queries_total, sampled_traces_total) on first use.
  static FlightRecorder& Instance();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- knobs (runtime `SET ...`; atomics, safe from any thread) ---

  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const {
    return capacity_bytes_.load(std::memory_order_relaxed);
  }

  void set_trace_sample_every(uint64_t n) {
    trace_sample_every_.store(n, std::memory_order_relaxed);
  }
  uint64_t trace_sample_every() const {
    return trace_sample_every_.load(std::memory_order_relaxed);
  }

  void set_slow_query_millis(double millis) {
    slow_query_millis_.store(millis, std::memory_order_relaxed);
  }
  double slow_query_millis() const {
    return slow_query_millis_.load(std::memory_order_relaxed);
  }

  // Deterministic every-Nth sampling decision: with trace_sample_every = N,
  // the 1st, (N+1)th, (2N+1)th... call returns true. With N = 0 this is a
  // single relaxed load — the whole hot-path cost of sampling being off.
  bool ShouldSampleTrace();

  // --- recording ---

  // Appends one event, evicting the oldest events past the byte bound, and
  // folds any attached trace into the running profile. Returns the id.
  uint64_t Record(RecordedEvent event);

  // Newest-first snapshot of up to `limit` buffered events, optionally of
  // one kind only.
  std::vector<RecordedEvent> Snapshot(size_t limit, EventKind kind) const;
  std::vector<RecordedEvent> Snapshot(size_t limit = SIZE_MAX) const;

  size_t event_count() const;
  size_t bytes() const;

  // --- merged profile ---

  // Deep copy of the span trees merged from every recorded trace since
  // process start (or the last ResetProfile): root "profile", one child per
  // trace root name ("query", "bg_job"), the trees below merged by name.
  // `traces_merged` (optional) receives the number of traces folded in.
  std::unique_ptr<TraceNode> ProfileSnapshot(
      uint64_t* traces_merged = nullptr) const;
  void ResetProfile();

  // --- export ---

  // Chrome trace-event-format JSON of every buffered event: each event is a
  // complete ("ph":"X") slice on its thread's track, with its span tree laid
  // out as nested child slices. Loads in Perfetto / chrome://tracing.
  std::string DumpChromeTrace() const;

  // Drops every buffered event and the profile; test isolation aid.
  void Clear();

 private:
  FlightRecorder();

  mutable std::mutex mutex_;  // guards events_, bytes_, profile_
  std::deque<RecordedEvent> events_;
  size_t bytes_ = 0;
  TraceNode profile_root_;
  uint64_t profile_traces_ = 0;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> capacity_bytes_{kDefaultCapacityBytes};
  std::atomic<uint64_t> trace_sample_every_{0};
  std::atomic<double> slow_query_millis_{0.0};
  std::atomic<uint64_t> sample_arrivals_{0};
};

}  // namespace tsviz::obs

#endif  // TSVIZ_OBS_RECORDER_H_
