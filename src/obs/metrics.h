#ifndef TSVIZ_OBS_METRICS_H_
#define TSVIZ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace tsviz::obs {

// Engine-wide metrics: named counters, gauges and log-bucketed histograms
// behind a process singleton. Registration (name lookup) takes a mutex once;
// callers cache the returned reference in a function-local static, so the
// hot path is a single relaxed atomic op. Instances are never destroyed or
// moved, so cached references stay valid for the process lifetime.

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value that can move both ways.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed (powers of two) histogram of non-negative samples. Bucket i
// holds samples in (2^(i-1), 2^i]; the first bucket also takes everything
// <= 1 and the last is unbounded. Quantiles are estimated by linear
// interpolation inside the owning bucket, which is exact enough for the
// p50/p90/p99 summaries observability needs.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Observe(double value);

  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  // q in [0, 1]; returns 0 when the histogram is empty.
  double Quantile(double q) const;
  // Upper bound of bucket i (2^i); the last bucket reports +infinity.
  static double BucketBound(size_t i);
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

class MetricsRegistry {
 public:
  // The process-wide registry. Built-in callback metrics (log_warnings_total,
  // log_errors_total) are registered on first use.
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named metric. The reference stays valid for the
  // process lifetime. Registering the same name with a different kind is a
  // programming error and aborts.
  Counter& GetCounter(std::string_view name, std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help = "");

  // Read-on-scrape metric: `fn` is evaluated at render time. Used to expose
  // values owned elsewhere (log counters, cache sizes) without polling.
  void RegisterCallback(std::string_view name, std::string_view help,
                        std::function<double()> fn);

  // Prometheus text exposition (HELP/TYPE comments plus samples).
  std::string RenderPrometheus() const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histograms render as {count,sum,max,p50,p90,p95,p99}.
  std::string RenderJson() const;

  // Zeroes every counter/gauge/histogram (callbacks are left alone; they
  // reflect external state). References handed out earlier stay valid.
  void ResetForTest();

 private:
  MetricsRegistry();

  mutable std::mutex mutex_;
  // std::map keeps the exposition sorted by name, which makes the output
  // diffable and the docs lint deterministic.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<double()>, std::less<>> callbacks_;
  std::map<std::string, std::string, std::less<>> help_;
};

// Shorthands for the common "cache the reference in a static" pattern:
//   static obs::Counter& c = obs::GetCounter("read_pages_decoded_total");
inline Counter& GetCounter(std::string_view name, std::string_view help = "") {
  return MetricsRegistry::Instance().GetCounter(name, help);
}
inline Gauge& GetGauge(std::string_view name, std::string_view help = "") {
  return MetricsRegistry::Instance().GetGauge(name, help);
}
inline Histogram& GetHistogram(std::string_view name,
                               std::string_view help = "") {
  return MetricsRegistry::Instance().GetHistogram(name, help);
}

}  // namespace tsviz::obs

#endif  // TSVIZ_OBS_METRICS_H_
