#include "obs/recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace tsviz::obs {

namespace {

// Approximate per-node footprint of a trace tree (the ring's byte bound
// must account for attached traces, or a handful of deep trees could blow
// the budget unnoticed).
size_t TraceTreeBytes(const TraceNode& node) {
  size_t bytes = sizeof(TraceNode) + node.name.size();
  for (const auto& child : node.children) bytes += TraceTreeBytes(*child);
  return bytes;
}

// JSON string escaping for statement text and error messages.
void AppendJsonEscaped(std::ostringstream* os, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\r':
        *os << "\\r";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", micros);
  return buf;
}

// One Chrome trace complete event ("ph":"X").
void EmitSlice(std::ostringstream* os, bool* first, const std::string& name,
               const char* category, double start_micros, double dur_micros,
               uint64_t tid, const std::string& args_json) {
  if (!*first) *os << ",\n";
  *first = false;
  *os << R"({"name":")";
  AppendJsonEscaped(os, name);
  *os << R"(","cat":")" << category << R"(","ph":"X","ts":)"
      << FormatMicros(start_micros) << R"(,"dur":)" << FormatMicros(dur_micros)
      << R"(,"pid":1,"tid":)" << tid;
  if (!args_json.empty()) *os << R"(,"args":{)" << args_json << "}";
  *os << "}";
}

// Lays a span tree out as nested slices. The tree stores aggregate millis
// per phase, not start offsets, so children are placed sequentially from
// the parent's start — interval nesting is exact, sibling order is the
// order phases were first entered.
void EmitTraceSlices(std::ostringstream* os, bool* first,
                     const TraceNode& node, const char* category,
                     double start_micros, uint64_t tid) {
  double child_start = start_micros;
  for (const auto& child : node.children) {
    const double dur = child->millis * 1000.0;
    EmitSlice(os, first, child->name, category, child_start, dur, tid,
              "\"calls\":" + std::to_string(child->calls));
    EmitTraceSlices(os, first, *child, category, child_start, tid);
    child_start += dur;
  }
}

const char* EventCategory(EventKind kind) {
  switch (kind) {
    case EventKind::kQuery:
      return "query";
    case EventKind::kBgJob:
      return "bg";
    case EventKind::kCorruption:
      return "corruption";
    case EventKind::kConnection:
      return "connection";
  }
  return "?";
}

Counter& EventsTotal() {
  static Counter& c = GetCounter("recorder_events_total",
                                 "Events appended to the flight recorder");
  return c;
}

Counter& EventsDropped() {
  static Counter& c =
      GetCounter("recorder_events_dropped_total",
                 "Flight-recorder events evicted by the byte bound");
  return c;
}

Counter& SlowQueries() {
  static Counter& c = GetCounter(
      "slow_queries_total", "Statements over the slow_query_millis threshold");
  return c;
}

Counter& SampledTraces() {
  static Counter& c =
      GetCounter("sampled_traces_total",
                 "Traces recorded by sampling (trace_sample_every)");
  return c;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQuery:
      return "query";
    case EventKind::kBgJob:
      return "bg_job";
    case EventKind::kCorruption:
      return "corruption";
    case EventKind::kConnection:
      return "connection";
  }
  return "?";
}

double SteadyNowMillis() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

uint64_t CurrentThreadTrack() {
  static std::atomic<uint64_t> next_track{1};
  thread_local uint64_t track = next_track.fetch_add(1);
  return track;
}

size_t RecordedEvent::ApproxBytes() const {
  size_t bytes = sizeof(RecordedEvent) + statement.size() + status.size();
  if (trace != nullptr) bytes += TraceTreeBytes(trace->root());
  return bytes;
}

FlightRecorder::FlightRecorder() {
  profile_root_.name = "profile";
  MetricsRegistry::Instance().RegisterCallback(
      "recorder_bytes", "Bytes buffered in the flight recorder",
      [this] { return static_cast<double>(bytes()); });
}

FlightRecorder& FlightRecorder::Instance() {
  // Leaked: events may be recorded during static destruction (server
  // teardown), and the recorder_bytes callback must never dangle.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::set_capacity_bytes(size_t bytes) {
  capacity_bytes_.store(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  while (!events_.empty() && bytes_ > bytes) {
    bytes_ -= events_.front().ApproxBytes();
    events_.pop_front();
    EventsDropped().Inc();
  }
}

bool FlightRecorder::ShouldSampleTrace() {
  const uint64_t every = trace_sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return sample_arrivals_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

uint64_t FlightRecorder::Record(RecordedEvent event) {
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  event.end_millis = SteadyNowMillis();
  event.thread_track = CurrentThreadTrack();
  EventsTotal().Inc();
  if (event.kind == EventKind::kQuery) {
    if (event.slow) SlowQueries().Inc();
    if (event.sampled) SampledTraces().Inc();
  }
  const uint64_t id = event.id;
  const size_t event_bytes = event.ApproxBytes();
  const size_t capacity = capacity_bytes_.load(std::memory_order_relaxed);
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (event.trace != nullptr) {
      // Fold the span tree into the running profile: one child per trace
      // root name ("query", "bg_job"), merged by name below it. The profile
      // survives ring eviction — it is "since start", not "while buffered".
      MergeTree(profile_root_.Child(event.trace->root().name),
                event.trace->root());
      ++profile_traces_;
    }
    events_.push_back(std::move(event));
    bytes_ += event_bytes;
    while (events_.size() > 1 && bytes_ > capacity) {
      bytes_ -= events_.front().ApproxBytes();
      events_.pop_front();
      ++dropped;
    }
  }
  if (dropped > 0) EventsDropped().Inc(dropped);
  return id;
}

std::vector<RecordedEvent> FlightRecorder::Snapshot(size_t limit,
                                                    EventKind kind) const {
  std::vector<RecordedEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = events_.rbegin(); it != events_.rend() && out.size() < limit;
       ++it) {
    if (it->kind == kind) out.push_back(*it);
  }
  return out;
}

std::vector<RecordedEvent> FlightRecorder::Snapshot(size_t limit) const {
  std::vector<RecordedEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = events_.rbegin(); it != events_.rend() && out.size() < limit;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

size_t FlightRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t FlightRecorder::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::unique_ptr<TraceNode> FlightRecorder::ProfileSnapshot(
    uint64_t* traces_merged) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (traces_merged != nullptr) *traces_merged = profile_traces_;
  return CloneTree(profile_root_);
}

void FlightRecorder::ResetProfile() {
  std::lock_guard<std::mutex> lock(mutex_);
  profile_root_.children.clear();
  profile_root_.millis = 0;
  profile_root_.calls = 0;
  profile_traces_ = 0;
}

std::string FlightRecorder::DumpChromeTrace() const {
  const std::vector<RecordedEvent> events = [this] {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<RecordedEvent>(events_.begin(), events_.end());
  }();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const RecordedEvent& event : events) {
    const char* category = EventCategory(event.kind);
    const double start_micros = (event.end_millis - event.millis) * 1000.0;
    std::ostringstream args;
    args << "\"id\":" << event.id << ",\"status\":\"";
    AppendJsonEscaped(&args, event.status);
    args << "\"";
    if (event.kind == EventKind::kQuery) {
      args << ",\"rows\":" << event.rows
           << ",\"degraded\":" << (event.degraded ? "true" : "false")
           << ",\"chunks_loaded\":" << event.chunks_loaded
           << ",\"points_scanned\":" << event.points_scanned;
    }
    EmitSlice(&os, &first, event.statement, category, start_micros,
              event.millis * 1000.0, event.thread_track, args.str());
    if (event.trace != nullptr) {
      EmitTraceSlices(&os, &first, event.trace->root(), category,
                      start_micros, event.thread_track);
    }
  }
  os << "\n]}\n";
  return os.str();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  bytes_ = 0;
  profile_root_.children.clear();
  profile_root_.millis = 0;
  profile_root_.calls = 0;
  profile_traces_ = 0;
}

}  // namespace tsviz::obs
