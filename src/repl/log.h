#ifndef TSVIZ_REPL_LOG_H_
#define TSVIZ_REPL_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "repl/record.h"

namespace tsviz::repl {

// The primary's replication log: every Database-level mutation is appended
// here (sequenced, chain-hashed) before it is applied to the store, and the
// relay serves followers straight out of this file. All I/O goes through
// the Env, so the fault-injection environment covers it.
//
// Open is torn-tail tolerant: a crash mid-append leaves a partial frame at
// the tail, which Open truncates away — the same contract as the store WAL.
// Sequence numbers are dense from 1; the in-memory index maps seq -> byte
// offset so resumable pulls are O(1) seeks, not log scans.
//
// Thread-safe: appends (the Database write path) and reads (relay worker
// threads) synchronize on an internal mutex; the file bytes of committed
// records are immutable, so reads re-open the file per call and decode
// outside any lock a writer needs.
class ReplLog {
 public:
  // Opens (creating if missing) the log at `path`. With `durable` every
  // append fsyncs, matching the durable_fsync store contract.
  static Result<std::unique_ptr<ReplLog>> Open(const std::string& path,
                                               bool durable);

  ~ReplLog();
  ReplLog(const ReplLog&) = delete;
  ReplLog& operator=(const ReplLog&) = delete;

  // Appends the next record (seq = last_seq()+1), returning its assigned
  // seq through *seq_out (optional). A failed append truncates the torn
  // prefix back out, exactly like WalWriter.
  Status Append(ReplOp op, const std::string& series, std::string payload,
                uint64_t* seq_out = nullptr);

  uint64_t last_seq() const;

  // Chain value after record `seq` (kChainSeed for seq 0); kOutOfRange past
  // the log's end. This is what a follower at watermark `seq` must present.
  Result<uint64_t> ChainAt(uint64_t seq) const;

  // Records from_seq .. from_seq+max_records-1 (clamped to the log end),
  // re-decoded from the file through the Env. kOutOfRange if from_seq is 0
  // or past last_seq()+1; an empty vector when from_seq == last_seq()+1.
  Result<std::vector<ReplRecord>> Read(uint64_t from_seq,
                                       size_t max_records) const;

  void set_durable(bool durable);

  const std::string& path() const { return path_; }

 private:
  ReplLog(std::string path, std::unique_ptr<WritableFile> file, bool durable);

  std::string path_;
  mutable std::mutex mutex_;
  std::unique_ptr<WritableFile> file_;
  bool durable_;
  bool broken_ = false;
  // end_offsets_[i] / chains_[i] describe record seq i+1: the file offset
  // just past its frame and the chain value after it.
  std::vector<uint64_t> end_offsets_;
  std::vector<uint64_t> chains_;
};

}  // namespace tsviz::repl

#endif  // TSVIZ_REPL_LOG_H_
