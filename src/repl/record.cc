#include "repl/record.h"

#include <cstring>

#include "encoding/varint.h"

namespace tsviz::repl {

namespace {

std::string EncodeBody(uint64_t seq, ReplOp op, std::string_view series,
                       std::string_view payload) {
  std::string body;
  body.reserve(8 + 1 + 4 + series.size() + payload.size());
  PutFixed64(&body, seq);
  body.push_back(static_cast<char>(op));
  PutFixed32(&body, static_cast<uint32_t>(series.size()));
  body.append(series);
  body.append(payload);
  return body;
}

}  // namespace

std::string EncodePointsPayload(const std::vector<Point>& points) {
  std::string payload;
  payload.reserve(points.size() * 16);
  for (const Point& p : points) {
    PutFixed64(&payload, static_cast<uint64_t>(p.t));
    uint64_t bits;
    std::memcpy(&bits, &p.v, sizeof(bits));
    PutFixed64(&payload, bits);
  }
  return payload;
}

Result<std::vector<Point>> DecodePointsPayload(std::string_view payload) {
  if (payload.size() % 16 != 0) {
    return Status::Corruption("repl put payload is not whole points");
  }
  std::vector<Point> points;
  points.reserve(payload.size() / 16);
  while (!payload.empty()) {
    TSVIZ_ASSIGN_OR_RETURN(uint64_t t, GetFixed64(&payload));
    TSVIZ_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64(&payload));
    Point p;
    p.t = static_cast<Timestamp>(t);
    std::memcpy(&p.v, &bits, sizeof(p.v));
    points.push_back(p);
  }
  return points;
}

std::string EncodeRangePayload(const TimeRange& range) {
  std::string payload;
  PutFixed64(&payload, static_cast<uint64_t>(range.start));
  PutFixed64(&payload, static_cast<uint64_t>(range.end));
  return payload;
}

Result<TimeRange> DecodeRangePayload(std::string_view payload) {
  if (payload.size() != 16) {
    return Status::Corruption("repl delete payload is not a range");
  }
  TSVIZ_ASSIGN_OR_RETURN(uint64_t start, GetFixed64(&payload));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t end, GetFixed64(&payload));
  return TimeRange(static_cast<Timestamp>(start), static_cast<Timestamp>(end));
}

uint64_t ChainHash(uint64_t prev_chain, uint64_t seq, ReplOp op,
                   std::string_view series, std::string_view payload) {
  std::string seed;
  PutFixed64(&seed, prev_chain);
  seed += EncodeBody(seq, op, series, payload);
  return Fnv1a64(seed);
}

void EncodeFrame(const ReplRecord& record, std::string* out) {
  std::string body =
      EncodeBody(record.seq, record.op, record.series, record.payload);
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  out->append(body);
  PutFixed64(out, record.chain);
}

Result<ReplRecord> DecodeFrame(std::string_view* cursor,
                               uint64_t prev_chain) {
  std::string_view in = *cursor;
  TSVIZ_ASSIGN_OR_RETURN(uint32_t body_len, GetFixed32(&in));
  // Sanity bound: a body shorter than its fixed fields or larger than the
  // remaining input is structurally torn.
  if (body_len < 8 + 1 + 4 || in.size() < body_len + 8) {
    return Status::Corruption("repl frame torn");
  }
  std::string_view body = in.substr(0, body_len);
  std::string_view rest = body;
  TSVIZ_ASSIGN_OR_RETURN(uint64_t seq, GetFixed64(&rest));
  auto op = static_cast<ReplOp>(rest[0]);
  if (op != ReplOp::kPutBatch && op != ReplOp::kDeleteRange &&
      op != ReplOp::kDropSeries) {
    return Status::Corruption("repl frame has unknown op");
  }
  rest.remove_prefix(1);
  TSVIZ_ASSIGN_OR_RETURN(uint32_t series_len, GetFixed32(&rest));
  if (rest.size() < series_len) {
    return Status::Corruption("repl frame series torn");
  }
  ReplRecord record;
  record.seq = seq;
  record.op = op;
  record.series = std::string(rest.substr(0, series_len));
  record.payload = std::string(rest.substr(series_len));

  std::string_view chain_view = in.substr(body_len, 8);
  TSVIZ_ASSIGN_OR_RETURN(record.chain, GetFixed64(&chain_view));

  std::string seed;
  PutFixed64(&seed, prev_chain);
  seed += body;
  if (Fnv1a64(seed) != record.chain) {
    return Status::Corruption("repl frame chain mismatch at seq " +
                              std::to_string(seq));
  }
  cursor->remove_prefix(4 + body_len + 8);
  return record;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

Result<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::Corruption("odd-length hex");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

}  // namespace tsviz::repl
