#ifndef TSVIZ_REPL_RECORD_H_
#define TSVIZ_REPL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"

namespace tsviz::repl {

// The replicated operation set. Replication hooks at the Database level, so
// these mirror the Database mutators, not the SQL surface: a put batch (one
// INSERT burst or a synthesized bootstrap baseline), a range delete, and a
// series drop.
enum class ReplOp : uint8_t {
  kPutBatch = 1,
  kDeleteRange = 2,
  kDropSeries = 3,
};

// One replicated record, identical on disk (replication log) and on the
// wire (hex-encoded inside a relay reply line).
//
// Frame layout:
//   fixed32 body_len | body | fixed64 chain
//   body = fixed64 seq | u8 op | fixed32 series_len | series | payload
//
// `chain` is a chained FNV-1a: chain_n = FNV(chain_{n-1} || body_n). It is
// simultaneously the per-record checksum (a torn or bit-flipped record
// fails to verify) and the divergence detector (two logs that ever differed
// in any earlier record can never present the same chain value again).
struct ReplRecord {
  uint64_t seq = 0;
  ReplOp op = ReplOp::kPutBatch;
  std::string series;
  std::string payload;
  uint64_t chain = 0;

  friend bool operator==(const ReplRecord&, const ReplRecord&) = default;
};

// Chain value "before any record" (FNV-1a 64-bit offset basis). A follower
// at watermark 0 presents this seed.
inline constexpr uint64_t kChainSeed = 0xcbf29ce484222325ull;

// Payload codecs per op. kDropSeries has an empty payload.
std::string EncodePointsPayload(const std::vector<Point>& points);
Result<std::vector<Point>> DecodePointsPayload(std::string_view payload);
std::string EncodeRangePayload(const TimeRange& range);
Result<TimeRange> DecodeRangePayload(std::string_view payload);

// The chain hash a record with these fields must carry, given the previous
// record's chain (or kChainSeed for seq 1).
uint64_t ChainHash(uint64_t prev_chain, uint64_t seq, ReplOp op,
                   std::string_view series, std::string_view payload);

// Appends the record's frame bytes to *out. record.chain must already be
// set (use ChainHash).
void EncodeFrame(const ReplRecord& record, std::string* out);

// Decodes one frame from *cursor (advanced past it) and verifies the chain
// against `prev_chain`. kCorruption on any structural, checksum, or chain
// mismatch — the caller treats that as a torn tail (log) or a poisoned
// connection (wire).
Result<ReplRecord> DecodeFrame(std::string_view* cursor, uint64_t prev_chain);

// Hex codec for shipping binary frames over the newline-delimited net
// framing.
std::string HexEncode(std::string_view bytes);
Result<std::string> HexDecode(std::string_view hex);

}  // namespace tsviz::repl

#endif  // TSVIZ_REPL_RECORD_H_
