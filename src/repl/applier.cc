#include "repl/applier.h"

#include <chrono>
#include <functional>
#include <random>
#include <sstream>

#include "common/env.h"
#include "net/client_channel.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace tsviz::repl {

namespace {

obs::Counter& AppliedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_records_applied_total", "Replicated records applied locally");
  return c;
}
obs::Counter& WatermarkCommitsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_watermark_commits_total", "Durable follower watermark commits");
  return c;
}
obs::Counter& ReconnectsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_reconnects_total",
      "Relay channel connect attempts after a failure (backoff loop turns)");
  return c;
}
obs::Counter& ResyncsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_resyncs_total",
      "Divergence quarantines: follower wiped and re-bootstrapped");
  return c;
}
obs::Gauge& LagGauge() {
  static obs::Gauge& g = obs::GetGauge(
      "repl_lag_ms", "Follower staleness (ms since last fully caught up)");
  return g;
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Hex64(uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return hex;
}

}  // namespace

const char* ApplierStateName(ApplierState state) {
  switch (state) {
    case ApplierState::kConnecting:
      return "CONNECTING";
    case ApplierState::kSyncing:
      return "SYNCING";
    case ApplierState::kStreaming:
      return "STREAMING";
    case ApplierState::kStopped:
      return "STOPPED";
  }
  return "UNKNOWN";
}

Applier::Applier(ReplicaTarget* target, ApplierOptions options)
    : target_(target), options_(std::move(options)) {}

Applier::~Applier() { Stop(); }

std::string Applier::primary_address() const {
  return options_.host + ":" + std::to_string(options_.port);
}

Status Applier::Start() {
  if (started_) return Status::OK();
  bool resync_pending = false;
  LoadWatermark(&resync_pending);
  if (resync_pending) {
    // The previous process died between marking the resync and completing
    // the wipe; finish it before pulling anything.
    TSVIZ_RETURN_IF_ERROR(BeginResync());
  }
  last_caught_up_millis_.store(NowMillis(), std::memory_order_relaxed);
  caught_up_.store(false, std::memory_order_relaxed);
  state_.store(ApplierState::kConnecting, std::memory_order_relaxed);
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Applier::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
  state_.store(ApplierState::kStopped, std::memory_order_relaxed);
}

int64_t Applier::lag_ms() const {
  if (caught_up_.load(std::memory_order_relaxed)) return 0;
  return NowMillis() - last_caught_up_millis_.load(std::memory_order_relaxed);
}

void Applier::NoteCaughtUp(bool caught_up) {
  if (caught_up) {
    last_caught_up_millis_.store(NowMillis(), std::memory_order_relaxed);
  }
  caught_up_.store(caught_up, std::memory_order_relaxed);
  LagGauge().Set(static_cast<double>(lag_ms()));
}

bool Applier::SleepInterruptible(int millis) {
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(millis),
                    [this] { return stop_; });
  return !stop_;
}

bool Applier::Backoff(int attempt) {
  // Capped exponential backoff with full jitter: delay in
  // [base, min(cap, base * 2^attempt)], so a herd of followers does not
  // re-strike a restarted primary in lockstep.
  int64_t ceiling = options_.backoff_base_ms;
  for (int i = 0; i < attempt && ceiling < options_.backoff_cap_ms; ++i) {
    ceiling *= 2;
  }
  if (ceiling > options_.backoff_cap_ms) ceiling = options_.backoff_cap_ms;
  static thread_local std::mt19937_64 rng(
      static_cast<uint64_t>(NowMillis()) ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::uniform_int_distribution<int64_t> jitter(options_.backoff_base_ms,
                                                ceiling);
  return SleepInterruptible(static_cast<int>(jitter(rng)));
}

void Applier::LoadWatermark(bool* resync_pending) {
  *resync_pending = false;
  applied_seq_.store(0, std::memory_order_relaxed);
  chain_ = kChainSeed;
  auto read = GetEnv()->ReadFileToString(options_.watermark_path);
  if (!read.ok()) return;  // missing or unreadable: replay from 0 is safe
  std::istringstream in(*read);
  uint64_t seq = 0;
  std::string chain_hex, flag;
  in >> seq >> chain_hex >> flag;
  uint64_t chain = 0;
  if (chain_hex.size() != 16) return;
  for (char c : chain_hex) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else return;  // corrupt: treat as missing
    chain = (chain << 4) | static_cast<uint64_t>(nibble);
  }
  if (flag == "syncing") {
    *resync_pending = true;
    return;
  }
  if (flag != "ok") return;
  applied_seq_.store(seq, std::memory_order_relaxed);
  chain_ = chain;
}

Status Applier::CommitWatermark(uint64_t seq, uint64_t chain, bool syncing) {
  std::string content = std::to_string(seq) + " " + Hex64(chain) + " " +
                        (syncing ? "syncing" : "ok") + "\n";
  TSVIZ_CRASHPOINT("repl.watermark.before_commit");
  TSVIZ_RETURN_IF_ERROR(
      WriteFileAtomic(options_.watermark_path, content, options_.durable));
  TSVIZ_CRASHPOINT("repl.watermark.after_commit");
  WatermarkCommitsTotal().Inc();
  return Status::OK();
}

Status Applier::BeginResync() {
  // Order matters for crash safety: first durably mark the resync (a crash
  // from here re-wipes on restart), then wipe, then clear the mark with the
  // reset watermark. A stale watermark must never outlive wiped data — that
  // would leave a silent hole of records the primary will not re-ship.
  ResyncsTotal().Inc();
  TSVIZ_RETURN_IF_ERROR(CommitWatermark(0, kChainSeed, /*syncing=*/true));
  TSVIZ_RETURN_IF_ERROR(target_->WipeForResync());
  TSVIZ_RETURN_IF_ERROR(CommitWatermark(0, kChainSeed, /*syncing=*/false));
  applied_seq_.store(0, std::memory_order_relaxed);
  chain_ = kChainSeed;
  return Status::OK();
}

Status Applier::ApplyRecord(const ReplRecord& record) {
  switch (record.op) {
    case ReplOp::kPutBatch: {
      TSVIZ_ASSIGN_OR_RETURN(std::vector<Point> points,
                             DecodePointsPayload(record.payload));
      return target_->ApplyPutBatch(record.series, points);
    }
    case ReplOp::kDeleteRange: {
      TSVIZ_ASSIGN_OR_RETURN(TimeRange range,
                             DecodeRangePayload(record.payload));
      return target_->ApplyDeleteRange(record.series, range);
    }
    case ReplOp::kDropSeries:
      return target_->ApplyDropSeries(record.series);
  }
  return Status::Corruption("repl record has unknown op");
}

void Applier::StreamFrom(net::ClientChannel* channel) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    const uint64_t applied = applied_seq_.load(std::memory_order_relaxed);
    std::string request = "RPULL " + std::to_string(applied + 1) + " " +
                          Hex64(chain_) + " " +
                          std::to_string(options_.pull_max);
    auto reply = channel->Call(request, options_.read_timeout_ms);
    if (!reply.ok() || reply->empty()) {
      NoteCaughtUp(false);
      return;  // channel poisoned: reconnect with backoff
    }
    std::istringstream head(reply->front());
    std::string verb;
    uint64_t primary_last = 0;
    head >> verb >> primary_last;

    if (verb == "DIVERGED") {
      divergences_.fetch_add(1, std::memory_order_relaxed);
      state_.store(ApplierState::kSyncing, std::memory_order_relaxed);
      NoteCaughtUp(false);
      if (Status status = BeginResync(); !status.ok()) {
        // Quarantine holds (state stays SYNCING, reads stay rejected);
        // retry the wipe on the next session.
        return;
      }
      continue;  // re-pull from seq 1
    }
    if (verb != "OK") {
      NoteCaughtUp(false);
      return;  // protocol error or relay-side failure: reconnect
    }
    primary_seq_.store(primary_last, std::memory_order_relaxed);

    // Decode and chain-verify every shipped record before applying any:
    // a torn or corrupted reply must not half-apply.
    std::vector<ReplRecord> records;
    records.reserve(reply->size() - 1);
    uint64_t chain = chain_;
    bool poisoned = false;
    for (size_t i = 1; i < reply->size(); ++i) {
      const std::string& line = (*reply)[i];
      if (line.size() < 2 || line[0] != 'R' || line[1] != ' ') {
        poisoned = true;
        break;
      }
      auto bytes = HexDecode(std::string_view(line).substr(2));
      if (!bytes.ok()) {
        poisoned = true;
        break;
      }
      std::string_view cursor = *bytes;
      auto record = DecodeFrame(&cursor, chain);
      if (!record.ok() || !cursor.empty() ||
          record->seq != applied + records.size() + 1) {
        poisoned = true;
        break;
      }
      chain = record->chain;
      records.push_back(std::move(*record));
    }
    if (poisoned) {
      // The primary's chain proof passed but the bytes we got do not
      // verify: wire corruption. Drop the channel and re-pull.
      NoteCaughtUp(false);
      return;
    }

    if (!records.empty()) {
      // One span tree per applied batch, recorded like a bg job so DUMP
      // TRACE shows replication work alongside flush/compaction.
      auto trace = std::make_shared<obs::Trace>("repl_apply");
      const auto batch_start = std::chrono::steady_clock::now();
      Status status;
      {
        obs::TraceSpan span(trace.get(), "repl_apply_batch");
        for (const ReplRecord& record : records) {
          status = ApplyRecord(record);
          if (!status.ok() && !status.retryable()) {
            // A deterministic (semantic) failure would re-fail on every
            // replay and wedge the follower forever. The primary
            // pre-validates before logging, so this means the replica's
            // local state disagrees; skip the record, keep the stream
            // moving, and leave the evidence in a counter.
            static obs::Counter& skipped = obs::GetCounter(
                "repl_apply_skipped_total",
                "Replicated records skipped after a non-retryable local "
                "apply failure");
            skipped.Inc();
            status = Status::OK();
            continue;
          }
          if (!status.ok()) break;
          AppliedTotal().Inc();
        }
      }
      const double batch_millis =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - batch_start)
              .count();
      static obs::Histogram& apply_millis = obs::GetHistogram(
          "repl_apply_millis", "Wall time applying one pulled batch (ms)");
      apply_millis.Observe(batch_millis);
      trace->root().millis = batch_millis;
      obs::RecordedEvent event;
      event.kind = obs::EventKind::kBgJob;
      event.millis = batch_millis;
      event.statement = "repl apply " + std::to_string(records.size()) +
                        " records through seq " +
                        std::to_string(records.back().seq);
      event.status = status.ok() ? "OK" : status.ToString();
      event.trace = std::move(trace);
      obs::FlightRecorder::Instance().Record(std::move(event));
      if (!status.ok()) {
        // Local apply failure (e.g. injected I/O error). Nothing was
        // watermark-committed; back off and replay the batch.
        NoteCaughtUp(false);
        return;
      }
      TSVIZ_CRASHPOINT("repl.apply.after_apply");
      const uint64_t new_applied = records.back().seq;
      if (Status status2 = CommitWatermark(new_applied, chain,
                                           /*syncing=*/false);
          !status2.ok()) {
        // Applied but not committed: restart replays from the old
        // watermark; effect-idempotent ops make that safe.
        NoteCaughtUp(false);
        return;
      }
      applied_seq_.store(new_applied, std::memory_order_relaxed);
      chain_ = chain;
    }

    const uint64_t now_applied = applied_seq_.load(std::memory_order_relaxed);
    const bool caught_up = now_applied >= primary_last;
    NoteCaughtUp(caught_up);
    if (caught_up) {
      state_.store(ApplierState::kStreaming, std::memory_order_relaxed);
      if (!SleepInterruptible(options_.poll_interval_ms)) return;
    }
    // Behind: loop immediately for the next chunk.
  }
}

void Applier::Run() {
  int attempt = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    if (state_.load(std::memory_order_relaxed) != ApplierState::kSyncing) {
      state_.store(ApplierState::kConnecting, std::memory_order_relaxed);
    }
    LagGauge().Set(static_cast<double>(lag_ms()));
    ReconnectsTotal().Inc();
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    auto channel = net::ClientChannel::Connect(options_.host, options_.port,
                                               options_.connect_timeout_ms);
    if (!channel.ok()) {
      if (!Backoff(attempt++)) return;
      continue;
    }
    attempt = 0;
    StreamFrom(channel->get());
    // The session ended (error or divergence-with-failed-wipe); pace the
    // reconnect so a flapping primary is not hammered.
    if (!Backoff(attempt++)) return;
  }
}

}  // namespace tsviz::repl
