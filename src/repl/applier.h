#ifndef TSVIZ_REPL_APPLIER_H_
#define TSVIZ_REPL_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "repl/record.h"
#include "repl/target.h"

namespace tsviz::net {
class ClientChannel;
}  // namespace tsviz::net

namespace tsviz::repl {

// Follower lifecycle as SHOW REPLICATION reports it.
//
//   kConnecting: no live channel to the primary (initial state, and after
//                any channel error; reconnects use capped exponential
//                backoff with jitter). Reads are governed by the staleness
//                bound alone — lag keeps growing while disconnected.
//   kSyncing:    quarantined after a DIVERGED reply: the local history was
//                not a prefix of the primary's log, so the follower wiped
//                itself and is re-bootstrapping from seq 0. Follower
//                SELECTs are rejected (retryable) until it catches up.
//   kStreaming:  caught up; serving reads within the staleness bound.
enum class ApplierState { kConnecting, kSyncing, kStreaming, kStopped };

const char* ApplierStateName(ApplierState state);

struct ApplierOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // Durable follower watermark: "<applied_seq> <chain_hex> <ok|syncing>".
  std::string watermark_path;
  bool durable = false;          // fsync the watermark commits

  int connect_timeout_ms = 1000;
  int read_timeout_ms = 2000;
  int backoff_base_ms = 50;      // first retry delay
  int backoff_cap_ms = 2000;     // exponential growth stops here
  int poll_interval_ms = 50;     // idle pull cadence (doubles as heartbeat)
  size_t pull_max = 256;         // records per pull
};

// The follower side: a single thread that pulls records from the primary's
// relay, verifies each record's chain hash, applies it through the
// ReplicaTarget, and durably commits its watermark. Crash points bracket
// the watermark commit (repl.watermark.before_commit / after_commit) and
// follow each applied batch (repl.apply.after_apply), so the fork-kill
// torture can die at every ordering the protocol exposes; recovery replays
// from the watermark and the effect-idempotent ops reconverge.
class Applier {
 public:
  // `target` must outlive the applier.
  Applier(ReplicaTarget* target, ApplierOptions options);
  ~Applier();

  Applier(const Applier&) = delete;
  Applier& operator=(const Applier&) = delete;

  // Loads (or re-initializes) the watermark and starts the pull thread. A
  // watermark left mid-resync re-wipes before the first pull.
  Status Start();
  void Stop();

  ApplierState state() const {
    return state_.load(std::memory_order_relaxed);
  }
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_relaxed);
  }
  // Last primary log end observed in a pull reply (0 before first contact).
  uint64_t observed_primary_seq() const {
    return primary_seq_.load(std::memory_order_relaxed);
  }
  // Milliseconds since the follower last held the primary's full log
  // (applied_seq == primary end in a reply); 0 while caught up. Grows
  // monotonically while disconnected, which is exactly what the staleness
  // bound must see.
  int64_t lag_ms() const;
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t divergences() const {
    return divergences_.load(std::memory_order_relaxed);
  }
  std::string primary_address() const;

 private:
  void Run();
  // One connected session; returns when the channel dies or Stop is called.
  void StreamFrom(net::ClientChannel* channel);
  Status ApplyRecord(const ReplRecord& record);
  Status CommitWatermark(uint64_t seq, uint64_t chain, bool syncing);
  // Reads the watermark file; missing/corrupt resets to (0, seed, ok) —
  // re-replaying from 0 is always safe, the ops are effect-idempotent.
  void LoadWatermark(bool* resync_pending);
  Status BeginResync();
  // Sleeps with capped exponential backoff + jitter; false when stopping.
  bool Backoff(int attempt);
  bool SleepInterruptible(int millis);
  void NoteCaughtUp(bool caught_up);

  ReplicaTarget* target_;
  const ApplierOptions options_;

  std::thread thread_;
  std::mutex mutex_;                 // guards stop_ for the sleep cv
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;

  std::atomic<ApplierState> state_{ApplierState::kStopped};
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> primary_seq_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> divergences_{0};
  std::atomic<bool> caught_up_{false};
  std::atomic<int64_t> last_caught_up_millis_{0};

  uint64_t chain_ = kChainSeed;  // pull-thread only (after Start)
};

}  // namespace tsviz::repl

#endif  // TSVIZ_REPL_APPLIER_H_
