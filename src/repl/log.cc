#include "repl/log.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tsviz::repl {

namespace {

obs::Counter& LogAppendsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_log_appends_total", "Records appended to the replication log");
  return c;
}
obs::Counter& LogBytesTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_log_bytes_total", "Bytes appended to the replication log");
  return c;
}

}  // namespace

ReplLog::ReplLog(std::string path, std::unique_ptr<WritableFile> file,
                 bool durable)
    : path_(std::move(path)), file_(std::move(file)), durable_(durable) {}

ReplLog::~ReplLog() = default;

Result<std::unique_ptr<ReplLog>> ReplLog::Open(const std::string& path,
                                               bool durable) {
  Env* env = GetEnv();
  std::string content;
  auto read = env->ReadFileToString(path);
  if (read.ok()) {
    content = std::move(read).value();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }

  // Scan whole frames, verifying the chain as we go. Any structural or
  // chain mismatch — including a seq that is not dense — ends the scan:
  // everything after it is a torn tail to truncate away.
  std::vector<uint64_t> end_offsets;
  std::vector<uint64_t> chains;
  uint64_t prev_chain = kChainSeed;
  std::string_view cursor = content;
  uint64_t good_size = 0;
  while (!cursor.empty()) {
    auto record = DecodeFrame(&cursor, prev_chain);
    if (!record.ok()) break;
    if (record->seq != end_offsets.size() + 1) break;
    good_size = static_cast<uint64_t>(content.size() - cursor.size());
    end_offsets.push_back(good_size);
    chains.push_back(record->chain);
    prev_chain = record->chain;
  }

  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewAppendableFile(path));
  if (file->size() > good_size) {
    TSVIZ_RETURN_IF_ERROR(file->Truncate(good_size));
  }
  auto log = std::unique_ptr<ReplLog>(
      new ReplLog(path, std::move(file), durable));
  log->end_offsets_ = std::move(end_offsets);
  log->chains_ = std::move(chains);
  return log;
}

Status ReplLog::Append(ReplOp op, const std::string& series,
                       std::string payload, uint64_t* seq_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_) {
    return Status::IoError("repl log " + path_ + " is in a failed state");
  }
  ReplRecord record;
  record.seq = end_offsets_.size() + 1;
  record.op = op;
  record.series = series;
  record.payload = std::move(payload);
  const uint64_t prev_chain = chains_.empty() ? kChainSeed : chains_.back();
  record.chain =
      ChainHash(prev_chain, record.seq, op, series, record.payload);

  std::string frame;
  EncodeFrame(record, &frame);
  const uint64_t size_before = file_->size();
  if (Status status = file_->Append(frame); !status.ok()) {
    // Torn-prefix erasure, same contract as WalWriter: a failed append must
    // not leave partial bytes mid-log once later appends succeed.
    if (Status truncate = file_->Truncate(size_before); !truncate.ok()) {
      broken_ = true;
    }
    return status;
  }
  if (durable_) {
    TSVIZ_RETURN_IF_ERROR(file_->Sync());
  }
  end_offsets_.push_back(size_before + frame.size());
  chains_.push_back(record.chain);
  LogAppendsTotal().Inc();
  LogBytesTotal().Inc(frame.size());
  if (seq_out != nullptr) *seq_out = record.seq;
  return Status::OK();
}

uint64_t ReplLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return end_offsets_.size();
}

Result<uint64_t> ReplLog::ChainAt(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seq == 0) return kChainSeed;
  if (seq > chains_.size()) {
    return Status::OutOfRange("no repl record at seq " + std::to_string(seq));
  }
  return chains_[seq - 1];
}

Result<std::vector<ReplRecord>> ReplLog::Read(uint64_t from_seq,
                                              size_t max_records) const {
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t prev_chain = kChainSeed;
  uint64_t want = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t last = end_offsets_.size();
    if (from_seq == 0 || from_seq > last + 1) {
      return Status::OutOfRange("repl read from seq " +
                                std::to_string(from_seq) + " outside log");
    }
    if (from_seq == last + 1 || max_records == 0) {
      return std::vector<ReplRecord>{};
    }
    const uint64_t to_seq =
        std::min<uint64_t>(last, from_seq + max_records - 1);
    start = from_seq == 1 ? 0 : end_offsets_[from_seq - 2];
    end = end_offsets_[to_seq - 1];
    prev_chain = from_seq == 1 ? kChainSeed : chains_[from_seq - 2];
    want = to_seq - from_seq + 1;
  }
  // Committed frames are immutable bytes; decode them outside the lock so a
  // slow (or fault-injected) read never stalls the write path.
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                         GetEnv()->NewRandomAccessFile(path_));
  std::string bytes;
  TSVIZ_RETURN_IF_ERROR(file->Read(start, end - start, &bytes));
  std::vector<ReplRecord> records;
  records.reserve(want);
  std::string_view cursor = bytes;
  for (uint64_t i = 0; i < want; ++i) {
    // A short or torn read fails the chain check here rather than shipping
    // bad bytes to a follower.
    TSVIZ_ASSIGN_OR_RETURN(ReplRecord record,
                           DecodeFrame(&cursor, prev_chain));
    prev_chain = record.chain;
    records.push_back(std::move(record));
  }
  return records;
}

void ReplLog::set_durable(bool durable) {
  std::lock_guard<std::mutex> lock(mutex_);
  durable_ = durable;
}

}  // namespace tsviz::repl
