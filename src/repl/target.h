#ifndef TSVIZ_REPL_TARGET_H_
#define TSVIZ_REPL_TARGET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"

namespace tsviz::repl {

// What the Applier needs from the follower's database, as an interface so
// repl/ does not depend on db/ (the same cycle-break as bg::StoreCatalog:
// the lower layer defines the interface, Database implements it).
//
// Every method must be effect-idempotent: the applier replays from its
// durable watermark after a crash, so any suffix of records can be applied
// more than once. Re-putting the same (t, v) points, re-deleting the same
// range, and re-dropping an absent series must all converge to the same
// final state.
class ReplicaTarget {
 public:
  virtual ~ReplicaTarget() = default;

  virtual Status ApplyPutBatch(const std::string& series,
                               const std::vector<Point>& points) = 0;
  virtual Status ApplyDeleteRange(const std::string& series,
                                  const TimeRange& range) = 0;
  // Dropping a series that does not exist is OK (idempotent replay).
  virtual Status ApplyDropSeries(const std::string& series) = 0;

  // Removes every local series and its data. Called when the primary
  // reports divergence, before re-bootstrapping from seq 0.
  virtual Status WipeForResync() = 0;
};

}  // namespace tsviz::repl

#endif  // TSVIZ_REPL_TARGET_H_
