#ifndef TSVIZ_REPL_RELAY_H_
#define TSVIZ_REPL_RELAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/net_server.h"
#include "repl/log.h"

namespace tsviz::repl {

// The primary side of WAL shipping: a second NetServer (own listener, own
// small worker pool) serving the pull protocol straight out of the
// replication log. Pull-based so the primary holds no per-follower state —
// a follower resumes from its own durable watermark and an idle pull
// doubles as the liveness heartbeat.
//
// Protocol (newline-delimited, blank-line-terminated like the SQL port):
//   request:  RPULL <from_seq> <chain_hex16> <max>
//     from_seq  first sequence wanted (watermark + 1)
//     chain     the chain hash after record from_seq-1 (kChainSeed at 0),
//               proving the follower's prefix matches the primary's log
//   reply:    OK <last_seq>        then one "R <hex-frame>" line per record
//             DIVERGED <last_seq>  chain proof failed: the follower's
//                                  history is not a prefix of ours — it
//                                  must wipe and re-bootstrap from seq 0
//             ERROR: <status>      malformed request or log read failure
struct RelayOptions {
  int port = 0;  // 0 picks an ephemeral port (tests)
  int listen_backlog = 16;
  int workers = 2;
  size_t max_records_per_pull = 256;
};

class Relay {
 public:
  // `log` must outlive the relay.
  Relay(ReplLog* log, RelayOptions options);
  ~Relay();

  Relay(const Relay&) = delete;
  Relay& operator=(const Relay&) = delete;

  Status Start();
  void Stop();

  // Bound port (valid after Start; differs from options.port when 0).
  int port() const;

  uint64_t pulls() const { return pulls_.load(std::memory_order_relaxed); }
  uint64_t divergences_reported() const {
    return divergences_.load(std::memory_order_relaxed);
  }

 private:
  std::string Handle(const std::string& line);

  ReplLog* log_;
  RelayOptions options_;
  std::unique_ptr<net::NetServer> server_;
  std::atomic<uint64_t> pulls_{0};
  std::atomic<uint64_t> divergences_{0};
};

}  // namespace tsviz::repl

#endif  // TSVIZ_REPL_RELAY_H_
