#include "repl/relay.h"

#include <cstdint>
#include <sstream>

#include "obs/metrics.h"

namespace tsviz::repl {

namespace {

obs::Counter& PullsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_pulls_total", "RPULL requests served by the relay");
  return c;
}
obs::Counter& ShippedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_records_shipped_total", "Records shipped to followers");
  return c;
}
obs::Counter& DivergenceTotal() {
  static obs::Counter& c = obs::GetCounter(
      "repl_divergence_total",
      "Pulls answered DIVERGED (follower chain proof failed)");
  return c;
}

bool ParseUint(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseHex64(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  uint64_t value = 0;
  for (char c : token) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  *out = value;
  return true;
}

}  // namespace

Relay::Relay(ReplLog* log, RelayOptions options)
    : log_(log), options_(options) {}

Relay::~Relay() { Stop(); }

Status Relay::Start() {
  if (server_ != nullptr) return Status::OK();
  net::NetServerOptions net_options;
  net_options.listen_backlog = options_.listen_backlog;
  net_options.workers = options_.workers;
  auto server = std::make_unique<net::NetServer>(
      net_options, [this](const net::Request& request) {
        net::Response response;
        response.payload = Handle(request.line) + "\n";
        return response;
      });
  TSVIZ_RETURN_IF_ERROR(server->Start(options_.port));
  server_ = std::move(server);
  return Status::OK();
}

void Relay::Stop() {
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
}

int Relay::port() const {
  return server_ != nullptr ? server_->port() : options_.port;
}

std::string Relay::Handle(const std::string& line) {
  std::istringstream in(line);
  std::string verb, seq_token, chain_token, max_token;
  in >> verb >> seq_token >> chain_token >> max_token;
  uint64_t from_seq = 0;
  uint64_t chain = 0;
  uint64_t max_records = 0;
  if (verb != "RPULL" || !ParseUint(seq_token, &from_seq) ||
      !ParseHex64(chain_token, &chain) || !ParseUint(max_token, &max_records) ||
      from_seq == 0) {
    return "ERROR: expected RPULL <from_seq> <chain> <max>\n";
  }
  PullsTotal().Inc();
  pulls_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t last = log_->last_seq();
  // The chain proof: the follower's record from_seq-1 must carry the same
  // chain hash as ours. A follower past our end, or presenting a different
  // chain, has a history that is not a prefix of this log (primary
  // re-initialized, or one side corrupted) — it must re-bootstrap.
  auto expected = log_->ChainAt(from_seq - 1);
  if (!expected.ok() || *expected != chain) {
    DivergenceTotal().Inc();
    divergences_.fetch_add(1, std::memory_order_relaxed);
    return "DIVERGED " + std::to_string(last) + "\n";
  }

  auto records = log_->Read(from_seq, max_records);
  if (!records.ok()) {
    return "ERROR: " + records.status().ToString() + "\n";
  }
  std::string reply = "OK " + std::to_string(last) + "\n";
  for (const ReplRecord& record : *records) {
    std::string frame;
    EncodeFrame(record, &frame);
    reply += "R " + HexEncode(frame) + "\n";
  }
  ShippedTotal().Inc(records->size());
  return reply;
}

}  // namespace tsviz::repl
