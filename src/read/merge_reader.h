#ifndef TSVIZ_READ_MERGE_READER_H_
#define TSVIZ_READ_MERGE_READER_H_

#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"
#include "read/lazy_chunk.h"
#include "storage/delete_record.h"

namespace tsviz {

// The MergeReader of Figure 15: streams the merged time series
// M(C, D) of Definition 2.7 in increasing time order, clipped to a closed
// time range. A k-way heap merges the chunk cursors; at each timestamp only
// the highest-version point can be live, and it survives iff no delete with
// a larger version covers it. Deletes are applied with a sorted sweep (the
// CPU-efficient delete handling the paper credits for M4-UDF's flat latency
// under growing delete counts, Section 4.4).
//
// This is the full-cost read path: every page of every input chunk that
// overlaps the range is read and decoded.
class MergeReader {
 public:
  MergeReader(std::vector<LazyChunk*> chunks,
              std::vector<DeleteRecord> deletes, TimeRange range);

  // Produces the next live point. Returns false when the stream (or the
  // clip range) is exhausted.
  Result<bool> Next(Point* out);

  // Opt-in for callers that will drain the whole stream (ReadAll, the
  // M4-UDF and COUNT/SUM/AVG scans): chunks wholly inside the clip range
  // are pinned up front with coalesced reads at first Next. No-op once
  // iteration has started; incremental Next stays page-lazy by default for
  // early-exit consumers like SeriesCursor.
  void PreloadFullChunks() {
    if (!primed_) preload_ = true;
  }

  // Drains the remainder of the stream into a vector (implies
  // PreloadFullChunks when called before the first Next).
  Result<std::vector<Point>> ReadAll();

 private:
  struct Cursor {
    LazyChunk* chunk = nullptr;
    size_t page_idx = 0;
    size_t point_idx = 0;
    const std::vector<Point>* page = nullptr;  // current decoded page
  };

  struct HeapEntry {
    Timestamp t;
    Version version;
    size_t cursor;
    // Min-heap by time; ties broken so the largest version pops first.
    bool operator>(const HeapEntry& other) const {
      if (t != other.t) return t > other.t;
      return version < other.version;
    }
  };

  // Positions `cursor` at its next point and pushes it onto the heap;
  // no-op when the cursor is exhausted or past the clip range.
  Status PushNext(size_t cursor_idx);

  // True iff a delete with version > `version` covers `t`. Only valid for
  // non-decreasing `t` across calls (sweep).
  bool Deleted(Timestamp t, Version version);

  TimeRange range_;
  std::vector<Cursor> cursors_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::vector<DeleteRecord> deletes_;   // sorted by range.start
  size_t delete_cursor_ = 0;
  std::vector<DeleteRecord> active_deletes_;
  bool primed_ = false;
  bool preload_ = false;  // set by ReadAll: whole-chunk coalesced loads
  bool has_last_emitted_ = false;
  Timestamp last_emitted_ = 0;
};

}  // namespace tsviz

#endif  // TSVIZ_READ_MERGE_READER_H_
