#include "read/series_reader.h"

#include "read/data_reader.h"
#include "read/merge_reader.h"
#include "read/metadata_reader.h"

namespace tsviz {

Result<std::vector<Point>> ReadMergedSeries(const StoreView& view,
                                            const TimeRange& range,
                                            QueryStats* stats) {
  // Merge one partition at a time: indexed partitions are disjoint in
  // time and arrive in ascending order, so concatenating their merges is
  // identical to one global merge — but each heap only carries one
  // partition's chunks. When a legacy (unbounded) group coexists with
  // indexed partitions its chunks may straddle boundaries; fall back to a
  // single global merge in that rare mixed-layout case.
  std::vector<PartitionChunks> groups =
      SelectPartitionChunks(view, range, stats);
  const bool mixed = groups.size() > 1 && groups.front().legacy;
  DataReader data_reader(stats);
  if (mixed) {
    std::vector<LazyChunk*> chunks;
    for (const PartitionChunks& group : groups) {
      for (const ChunkHandle& handle : group.chunks) {
        chunks.push_back(data_reader.GetChunk(handle));
      }
    }
    MergeReader merger(std::move(chunks),
                       SelectOverlappingDeletes(view, range), range);
    return merger.ReadAll();
  }
  std::vector<Point> out;
  for (const PartitionChunks& group : groups) {
    std::vector<LazyChunk*> chunks;
    chunks.reserve(group.chunks.size());
    for (const ChunkHandle& handle : group.chunks) {
      chunks.push_back(data_reader.GetChunk(handle));
    }
    MergeReader merger(std::move(chunks),
                       SelectOverlappingDeletes(view, group.range),
                       group.range);
    TSVIZ_ASSIGN_OR_RETURN(std::vector<Point> points, merger.ReadAll());
    out.insert(out.end(), points.begin(), points.end());
  }
  return out;
}

SeriesCursor::SeriesCursor() = default;
SeriesCursor::~SeriesCursor() = default;

Result<std::unique_ptr<SeriesCursor>> SeriesCursor::Open(
    const StoreView& view, const TimeRange& range, QueryStats* stats) {
  auto cursor = std::unique_ptr<SeriesCursor>(new SeriesCursor());
  cursor->data_reader_ = std::make_unique<DataReader>(stats);
  std::vector<LazyChunk*> chunks;
  for (const ChunkHandle& handle :
       SelectOverlappingChunks(view, range, stats)) {
    chunks.push_back(cursor->data_reader_->GetChunk(handle));
  }
  cursor->merger_ = std::make_unique<MergeReader>(
      std::move(chunks), SelectOverlappingDeletes(view, range), range);
  return cursor;
}

Result<bool> SeriesCursor::Next(Point* out) { return merger_->Next(out); }

}  // namespace tsviz
