#include "read/series_reader.h"

#include "read/data_reader.h"
#include "read/merge_reader.h"
#include "read/metadata_reader.h"

namespace tsviz {

Result<std::vector<Point>> ReadMergedSeries(const StoreView& view,
                                            const TimeRange& range,
                                            QueryStats* stats) {
  std::vector<ChunkHandle> handles =
      SelectOverlappingChunks(view, range, stats);
  DataReader data_reader(stats);
  std::vector<LazyChunk*> chunks;
  chunks.reserve(handles.size());
  for (const ChunkHandle& handle : handles) {
    chunks.push_back(data_reader.GetChunk(handle));
  }
  MergeReader merger(std::move(chunks),
                     SelectOverlappingDeletes(view, range), range);
  return merger.ReadAll();
}

SeriesCursor::SeriesCursor() = default;
SeriesCursor::~SeriesCursor() = default;

Result<std::unique_ptr<SeriesCursor>> SeriesCursor::Open(
    const StoreView& view, const TimeRange& range, QueryStats* stats) {
  auto cursor = std::unique_ptr<SeriesCursor>(new SeriesCursor());
  cursor->data_reader_ = std::make_unique<DataReader>(stats);
  std::vector<LazyChunk*> chunks;
  for (const ChunkHandle& handle :
       SelectOverlappingChunks(view, range, stats)) {
    chunks.push_back(cursor->data_reader_->GetChunk(handle));
  }
  cursor->merger_ = std::make_unique<MergeReader>(
      std::move(chunks), SelectOverlappingDeletes(view, range), range);
  return cursor;
}

Result<bool> SeriesCursor::Next(Point* out) { return merger_->Next(out); }

}  // namespace tsviz
