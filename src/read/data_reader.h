#ifndef TSVIZ_READ_DATA_READER_H_
#define TSVIZ_READ_DATA_READER_H_

#include <map>
#include <memory>

#include "common/stats.h"
#include "read/lazy_chunk.h"

namespace tsviz {

// The DataReader of Figure 15: hands out LazyChunk views and guarantees that
// a query materializes each chunk at most once, no matter how many time
// spans it intersects.
class DataReader {
 public:
  explicit DataReader(QueryStats* stats) : stats_(stats) {}

  DataReader(const DataReader&) = delete;
  DataReader& operator=(const DataReader&) = delete;

  // LazyChunk for `handle`, created on first use. The pointer stays valid
  // for the reader's lifetime.
  LazyChunk* GetChunk(const ChunkHandle& handle);

 private:
  QueryStats* stats_;
  std::map<Version, std::unique_ptr<LazyChunk>> cache_;
};

}  // namespace tsviz

#endif  // TSVIZ_READ_DATA_READER_H_
