#ifndef TSVIZ_READ_LAZY_CHUNK_H_
#define TSVIZ_READ_LAZY_CHUNK_H_

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "index/page_provider.h"
#include "storage/store.h"

namespace tsviz {

// Page-granular view of an on-disk chunk. Construction touches no data;
// each page is fetched with one positional read and decoded on first access,
// then cached. This is the mechanism behind both lazy chunk loading and the
// partial scans of Section 3.4: a candidate probe that touches one page pays
// for one page.
class LazyChunk : public PageProvider {
 public:
  // `stats` (optional) accrues bytes_read / pages_decoded / chunks_loaded.
  LazyChunk(ChunkHandle handle, QueryStats* stats);

  const std::vector<PageInfo>& pages() const override {
    return handle_.meta->pages;
  }
  Result<const std::vector<Point>*> GetPage(size_t i) override;
  uint64_t num_points() const override { return handle_.meta->count; }

  const ChunkMetadata& meta() const { return *handle_.meta; }
  Version version() const { return handle_.meta->version; }

  // Decodes every page and returns all points in time order.
  Result<std::vector<Point>> ReadAllPoints();

  // Whether any page of this chunk has been read from disk.
  bool loaded() const { return loaded_; }

 private:
  ChunkHandle handle_;
  QueryStats* stats_;
  std::vector<std::optional<std::vector<Point>>> cache_;
  bool loaded_ = false;
};

}  // namespace tsviz

#endif  // TSVIZ_READ_LAZY_CHUNK_H_
