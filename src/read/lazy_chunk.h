#ifndef TSVIZ_READ_LAZY_CHUNK_H_
#define TSVIZ_READ_LAZY_CHUNK_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "index/page_provider.h"
#include "storage/page_cache.h"
#include "storage/store.h"

namespace tsviz {

// Page-granular view of an on-disk chunk. Construction touches no data;
// each page is fetched with one positional read and decoded on first access.
// This is the mechanism behind both lazy chunk loading and the partial scans
// of Section 3.4: a candidate probe that touches one page pays for one page.
//
// Decoded pages live in the process-wide SharedPageCache; this object only
// pins the pages it has touched, so concurrent queries over the same file
// decode each page at most once and repeated queries skip the disk entirely.
class LazyChunk : public PageProvider {
 public:
  // `stats` (optional) accrues bytes_read / pages_decoded / chunks_loaded.
  // chunks_loaded counts chunks whose data was touched (cache hit or disk);
  // pages_decoded and bytes_read count only genuine disk reads.
  LazyChunk(ChunkHandle handle, QueryStats* stats);

  const std::vector<PageInfo>& pages() const override {
    return handle_.meta->pages;
  }
  Result<const std::vector<Point>*> GetPage(size_t i) override;
  uint64_t num_points() const override { return handle_.meta->count; }

  const ChunkMetadata& meta() const { return *handle_.meta; }
  Version version() const { return handle_.meta->version; }

  // Pins every page, coalescing runs of adjacent cold pages into a single
  // positional read each. Use when the caller is about to scan the whole
  // chunk anyway (ReadAllPoints, M4-UDF full scans).
  Status EnsureAllPages();

  // Decodes every page and returns all points in time order.
  Result<std::vector<Point>> ReadAllPoints();

  // Whether any page of this chunk has been touched (cache or disk).
  bool loaded() const { return loaded_; }

 private:
  SharedPageCache::PageKey KeyFor(size_t i) const;
  // Charges stats->chunks_loaded on the first page touched.
  void ChargeChunkTouched();
  // Charges one disk page against stats and the process counters.
  void ChargePageDecoded(uint64_t bytes);
  // Decodes `raw` as page `i`, validates it against the page directory,
  // publishes it to the shared cache, and pins it.
  Status DecodeAndPin(size_t i, std::string_view raw);
  // Under read_tolerance=degrade, records this chunk in the process
  // quarantine when `status` indicates bad data; always returns `status`.
  Status MaybeQuarantine(const Status& status);

  ChunkHandle handle_;
  QueryStats* stats_;
  std::vector<SharedPageCache::PagePtr> pins_;
  bool loaded_ = false;
};

}  // namespace tsviz

#endif  // TSVIZ_READ_LAZY_CHUNK_H_
