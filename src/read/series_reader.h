#ifndef TSVIZ_READ_SERIES_READER_H_
#define TSVIZ_READ_SERIES_READER_H_

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"
#include "storage/store.h"

namespace tsviz {

// The SeriesRawDataBatchReader analog (Appendix A.5): assembles the fully
// merged, latest-only time series for a closed time range by loading and
// merging every overlapping chunk. Operates on a snapshot (a TsStore
// argument converts implicitly), so concurrent maintenance is invisible. This is the read path of the M4-UDF
// baseline and of correctness oracles in tests.
Result<std::vector<Point>> ReadMergedSeries(const StoreView& view,
                                            const TimeRange& range,
                                            QueryStats* stats);

// Forward declarations for the cursor's internals.
class DataReader;
class MergeReader;

// Streaming variant of ReadMergedSeries: pulls merged, latest-only points
// one at a time without materializing the series — the public read API for
// consumers iterating large ranges. The cursor holds a snapshot: the
// files it reads stay pinned even if the store is flushed or compacted
// while it is open.
class SeriesCursor {
 public:
  // `stats` (optional) must outlive the cursor.
  static Result<std::unique_ptr<SeriesCursor>> Open(const StoreView& view,
                                                    const TimeRange& range,
                                                    QueryStats* stats = nullptr);

  ~SeriesCursor();
  SeriesCursor(const SeriesCursor&) = delete;
  SeriesCursor& operator=(const SeriesCursor&) = delete;

  // Produces the next live point in time order; false at end of range.
  Result<bool> Next(Point* out);

 private:
  SeriesCursor();

  std::unique_ptr<DataReader> data_reader_;  // owns the lazy chunks
  std::unique_ptr<MergeReader> merger_;      // borrows them
};

}  // namespace tsviz

#endif  // TSVIZ_READ_SERIES_READER_H_
