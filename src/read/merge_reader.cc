#include "read/merge_reader.h"

#include <algorithm>

#include "index/binary_search_index.h"

namespace tsviz {

MergeReader::MergeReader(std::vector<LazyChunk*> chunks,
                         std::vector<DeleteRecord> deletes, TimeRange range)
    : range_(range), deletes_(std::move(deletes)) {
  std::sort(deletes_.begin(), deletes_.end(),
            [](const DeleteRecord& a, const DeleteRecord& b) {
              return a.range.start < b.range.start;
            });
  cursors_.reserve(chunks.size());
  for (LazyChunk* chunk : chunks) {
    Cursor cursor;
    cursor.chunk = chunk;
    // Start at the first page that can contain range.start.
    cursor.page_idx = LocatePageBinary(chunk->pages(), range_.start);
    cursors_.push_back(cursor);
  }
}

Status MergeReader::PushNext(size_t cursor_idx) {
  Cursor& cursor = cursors_[cursor_idx];
  const auto& pages = cursor.chunk->pages();
  while (true) {
    if (cursor.page_idx >= pages.size()) return Status::OK();  // exhausted
    if (pages[cursor.page_idx].min_t > range_.end) {
      cursor.page_idx = pages.size();
      return Status::OK();
    }
    if (cursor.page == nullptr) {
      TSVIZ_ASSIGN_OR_RETURN(cursor.page,
                             cursor.chunk->GetPage(cursor.page_idx));
      // Skip the sub-range before range.start in the first touched page.
      auto it = std::lower_bound(
          cursor.page->begin() + static_cast<ptrdiff_t>(cursor.point_idx),
          cursor.page->end(), range_.start,
          [](const Point& p, Timestamp t) { return p.t < t; });
      cursor.point_idx = static_cast<size_t>(it - cursor.page->begin());
    }
    if (cursor.point_idx >= cursor.page->size()) {
      ++cursor.page_idx;
      cursor.page = nullptr;
      cursor.point_idx = 0;
      continue;
    }
    const Point& p = (*cursor.page)[cursor.point_idx];
    if (p.t > range_.end) {
      cursor.page_idx = pages.size();
      return Status::OK();
    }
    heap_.push(HeapEntry{p.t, cursor.chunk->version(), cursor_idx});
    return Status::OK();
  }
}

bool MergeReader::Deleted(Timestamp t, Version version) {
  while (delete_cursor_ < deletes_.size() &&
         deletes_[delete_cursor_].range.start <= t) {
    active_deletes_.push_back(deletes_[delete_cursor_]);
    ++delete_cursor_;
  }
  // Drop deletes that ended before t; the remainder all cover t.
  std::erase_if(active_deletes_, [t](const DeleteRecord& del) {
    return del.range.end < t;
  });
  for (const DeleteRecord& del : active_deletes_) {
    if (del.version > version) return true;
  }
  return false;
}

Result<bool> MergeReader::Next(Point* out) {
  if (!primed_) {
    primed_ = true;
    if (preload_) {
      for (Cursor& cursor : cursors_) {
        // The caller will drain the stream, so chunks fully inside the clip
        // range get every page anyway; pin them up front so adjacent cold
        // pages coalesce into one pread each.
        const ChunkMetadata& meta = cursor.chunk->meta();
        if (range_.start <= meta.stats.first.t &&
            meta.stats.last.t <= range_.end) {
          TSVIZ_RETURN_IF_ERROR(cursor.chunk->EnsureAllPages());
        }
      }
    }
    for (size_t i = 0; i < cursors_.size(); ++i) {
      TSVIZ_RETURN_IF_ERROR(PushNext(i));
    }
  }
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    Cursor& cursor = cursors_[top.cursor];
    Point p = (*cursor.page)[cursor.point_idx];
    ++cursor.point_idx;
    TSVIZ_RETURN_IF_ERROR(PushNext(top.cursor));

    // The first pop at a timestamp carries the largest version; every later
    // pop at the same timestamp is an overwritten point (Definition 2.7).
    if (has_last_emitted_ && p.t == last_emitted_) continue;
    has_last_emitted_ = true;
    last_emitted_ = p.t;
    if (Deleted(p.t, top.version)) continue;
    *out = p;
    return true;
  }
  return false;
}

Result<std::vector<Point>> MergeReader::ReadAll() {
  PreloadFullChunks();
  std::vector<Point> points;
  Point p;
  while (true) {
    TSVIZ_ASSIGN_OR_RETURN(bool more, Next(&p));
    if (!more) break;
    points.push_back(p);
  }
  return points;
}

}  // namespace tsviz
