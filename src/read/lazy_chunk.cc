#include "read/lazy_chunk.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/quarantine.h"

namespace tsviz {

LazyChunk::LazyChunk(ChunkHandle handle, QueryStats* stats)
    : handle_(std::move(handle)), stats_(stats) {
  pins_.resize(handle_.meta->pages.size());
}

SharedPageCache::PageKey LazyChunk::KeyFor(size_t i) const {
  return SharedPageCache::PageKey{handle_.file->cache_id(),
                                  handle_.meta->data_offset,
                                  static_cast<uint32_t>(i)};
}

void LazyChunk::ChargeChunkTouched() {
  if (loaded_) return;
  loaded_ = true;
  static obs::Counter& chunks_total = obs::GetCounter(
      "read_chunks_loaded_total", "Chunks whose data was touched");
  chunks_total.Inc();
  if (stats_ != nullptr) ++stats_->chunks_loaded;
}

void LazyChunk::ChargePageDecoded(uint64_t bytes) {
  static obs::Counter& pages_total = obs::GetCounter(
      "read_pages_decoded_total", "Pages read from disk and decoded");
  static obs::Counter& bytes_total = obs::GetCounter(
      "read_bytes_total", "Raw chunk-data bytes read from disk");
  pages_total.Inc();
  bytes_total.Inc(bytes);
  if (stats_ != nullptr) {
    stats_->bytes_read += bytes;
    ++stats_->pages_decoded;
  }
}

Status LazyChunk::MaybeQuarantine(const Status& status) {
  if (!status.ok()) {
    MaybeQuarantineChunk(handle_.file->cache_id(), handle_.meta->data_offset,
                         handle_.file->path(), status);
  }
  return status;
}

Status LazyChunk::DecodeAndPin(size_t i, std::string_view raw) {
  const PageInfo& page = handle_.meta->pages[i];
  std::vector<Point> points;
  TSVIZ_RETURN_IF_ERROR(DecodePage(raw, &points));
  if (points.size() != page.count) {
    // A concurrent loader may have published the same bad page; make sure
    // the poisoned entry can never be served again.
    SharedPageCache::Instance().Erase(KeyFor(i));
    return Status::Corruption("page count mismatch with directory");
  }
  ChargePageDecoded(page.length);
  ChargeChunkTouched();
  auto ptr = std::make_shared<const std::vector<Point>>(std::move(points));
  SharedPageCache::Instance().Insert(KeyFor(i), ptr);
  pins_[i] = std::move(ptr);
  return Status::OK();
}

Result<const std::vector<Point>*> LazyChunk::GetPage(size_t i) {
  if (i >= pins_.size()) {
    return Status::OutOfRange("page index past end of chunk");
  }
  if (pins_[i] != nullptr) return pins_[i].get();
  obs::Trace* trace = stats_ != nullptr ? stats_->trace.get() : nullptr;
  const PageInfo& page = handle_.meta->pages[i];
  SharedPageCache& cache = SharedPageCache::Instance();
  const SharedPageCache::PageKey key = KeyFor(i);
  SharedPageCache::PagePtr cached;
  {
    obs::TraceSpan probe(trace, "cache_probe");
    cached = cache.Lookup(key);
  }
  if (cached != nullptr) {
    if (cached->size() == page.count) {
      ChargeChunkTouched();
      pins_[i] = std::move(cached);
      return pins_[i].get();
    }
    // The cached copy no longer matches the page directory: evict it and
    // fall through to a fresh disk read.
    cache.Erase(key);
  }
  obs::TraceSpan span(trace, "page_load");
  auto raw = handle_.file->ReadRange(handle_.meta->data_offset + page.offset,
                                     page.length);
  if (!raw.ok()) return MaybeQuarantine(raw.status());
  TSVIZ_RETURN_IF_ERROR(MaybeQuarantine(DecodeAndPin(i, *raw)));
  return pins_[i].get();
}

Status LazyChunk::EnsureAllPages() {
  obs::Trace* trace = stats_ != nullptr ? stats_->trace.get() : nullptr;
  const std::vector<PageInfo>& pages = handle_.meta->pages;
  SharedPageCache& cache = SharedPageCache::Instance();
  // Pass 1: satisfy what we can from the shared cache.
  {
    obs::TraceSpan probe(trace, "cache_probe");
    for (size_t i = 0; i < pins_.size(); ++i) {
      if (pins_[i] != nullptr) continue;
      const SharedPageCache::PageKey key = KeyFor(i);
      SharedPageCache::PagePtr cached = cache.Lookup(key);
      if (cached == nullptr) continue;
      if (cached->size() != pages[i].count) {
        cache.Erase(key);
        continue;
      }
      ChargeChunkTouched();
      pins_[i] = std::move(cached);
    }
  }
  // Pass 2: group the remaining cold pages into runs that are adjacent on
  // disk and fetch each run with a single positional read.
  size_t i = 0;
  while (i < pins_.size()) {
    if (pins_[i] != nullptr) {
      ++i;
      continue;
    }
    size_t end = i + 1;
    while (end < pins_.size() && pins_[end] == nullptr &&
           pages[end].offset == pages[end - 1].offset + pages[end - 1].length) {
      ++end;
    }
    obs::TraceSpan span(trace, "page_load");
    const uint64_t run_offset = pages[i].offset;
    const uint64_t run_length =
        pages[end - 1].offset + pages[end - 1].length - run_offset;
    auto raw = handle_.file->ReadRange(handle_.meta->data_offset + run_offset,
                                       run_length);
    if (!raw.ok()) return MaybeQuarantine(raw.status());
    for (size_t k = i; k < end; ++k) {
      std::string_view slice(raw->data() + (pages[k].offset - run_offset),
                             pages[k].length);
      TSVIZ_RETURN_IF_ERROR(MaybeQuarantine(DecodeAndPin(k, slice)));
    }
    i = end;
  }
  return Status::OK();
}

Result<std::vector<Point>> LazyChunk::ReadAllPoints() {
  TSVIZ_RETURN_IF_ERROR(EnsureAllPages());
  std::vector<Point> out;
  out.reserve(num_points());
  for (const SharedPageCache::PagePtr& page : pins_) {
    out.insert(out.end(), page->begin(), page->end());
  }
  return out;
}

}  // namespace tsviz
