#include "read/lazy_chunk.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz {

LazyChunk::LazyChunk(ChunkHandle handle, QueryStats* stats)
    : handle_(std::move(handle)), stats_(stats) {
  cache_.resize(handle_.meta->pages.size());
}

Result<const std::vector<Point>*> LazyChunk::GetPage(size_t i) {
  if (i >= cache_.size()) {
    return Status::OutOfRange("page index past end of chunk");
  }
  if (cache_[i].has_value()) {
    return const_cast<const std::vector<Point>*>(&*cache_[i]);
  }
  obs::TraceSpan span(stats_ != nullptr ? stats_->trace.get() : nullptr,
                      "page_load");
  const PageInfo& page = handle_.meta->pages[i];
  TSVIZ_ASSIGN_OR_RETURN(
      std::string raw,
      handle_.file->ReadRange(handle_.meta->data_offset + page.offset,
                              page.length));
  std::vector<Point> points;
  TSVIZ_RETURN_IF_ERROR(DecodePage(raw, &points));
  if (points.size() != page.count) {
    return Status::Corruption("page count mismatch with directory");
  }
  static obs::Counter& pages_total = obs::GetCounter(
      "read_pages_decoded_total", "Pages read from disk and decoded");
  static obs::Counter& bytes_total = obs::GetCounter(
      "read_bytes_total", "Raw chunk-data bytes read from disk");
  static obs::Counter& chunks_total = obs::GetCounter(
      "read_chunks_loaded_total", "Chunks whose data was touched");
  pages_total.Inc();
  bytes_total.Inc(page.length);
  if (!loaded_) chunks_total.Inc();
  if (stats_ != nullptr) {
    stats_->bytes_read += page.length;
    ++stats_->pages_decoded;
    if (!loaded_) ++stats_->chunks_loaded;
  }
  loaded_ = true;
  cache_[i] = std::move(points);
  return const_cast<const std::vector<Point>*>(&*cache_[i]);
}

Result<std::vector<Point>> LazyChunk::ReadAllPoints() {
  std::vector<Point> out;
  out.reserve(num_points());
  for (size_t i = 0; i < cache_.size(); ++i) {
    TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* page, GetPage(i));
    out.insert(out.end(), page->begin(), page->end());
  }
  return out;
}

}  // namespace tsviz
