#ifndef TSVIZ_READ_METADATA_READER_H_
#define TSVIZ_READ_METADATA_READER_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/time_range.h"
#include "storage/store.h"

namespace tsviz {

// The MetadataReader of Figure 15: selects chunks and deletes relevant to a
// query using metadata only — no chunk data is touched.

// Both selectors operate on a StoreView snapshot; passing a TsStore
// converts implicitly (taking the store's current snapshot). Callers that
// need chunk and delete selection to agree must pass the same view to both.

// One partition's overlapping chunks. Partitions whose interval misses the
// query range are pruned before any of their file or chunk metadata is
// consulted; `range` is the query range clipped to the partition interval,
// which is what the partition's chunks should be merged under.
struct PartitionChunks {
  int64_t partition_index = kLegacyPartitionIndex;
  bool legacy = true;
  TimeRange range{1, 0};
  std::vector<ChunkHandle> chunks;
};

// Overlapping chunks grouped by partition, in partition order (legacy
// group first, then ascending index — which is ascending time, since
// indexed partitions are disjoint). Partitions with no overlapping chunks
// are omitted. Increments stats->partitions_scanned / partitions_pruned.
std::vector<PartitionChunks> SelectPartitionChunks(const StoreView& view,
                                                   const TimeRange& range,
                                                   QueryStats* stats);

// Chunk handles whose time interval overlaps `range`, flattened across
// partitions in SelectPartitionChunks order.
std::vector<ChunkHandle> SelectOverlappingChunks(const StoreView& view,
                                                 const TimeRange& range,
                                                 QueryStats* stats);

// Deletes whose range overlaps `range`, in version order.
std::vector<DeleteRecord> SelectOverlappingDeletes(const StoreView& view,
                                                   const TimeRange& range);

}  // namespace tsviz

#endif  // TSVIZ_READ_METADATA_READER_H_
