#ifndef TSVIZ_READ_METADATA_READER_H_
#define TSVIZ_READ_METADATA_READER_H_

#include <vector>

#include "common/stats.h"
#include "common/time_range.h"
#include "storage/store.h"

namespace tsviz {

// The MetadataReader of Figure 15: selects chunks and deletes relevant to a
// query using metadata only — no chunk data is touched.

// Both selectors operate on a StoreView snapshot; passing a TsStore
// converts implicitly (taking the store's current snapshot). Callers that
// need chunk and delete selection to agree must pass the same view to both.

// Chunk handles whose time interval overlaps `range`, in version order.
std::vector<ChunkHandle> SelectOverlappingChunks(const StoreView& view,
                                                 const TimeRange& range,
                                                 QueryStats* stats);

// Deletes whose range overlaps `range`, in version order.
std::vector<DeleteRecord> SelectOverlappingDeletes(const StoreView& view,
                                                   const TimeRange& range);

}  // namespace tsviz

#endif  // TSVIZ_READ_METADATA_READER_H_
