#include "read/data_reader.h"

namespace tsviz {

LazyChunk* DataReader::GetChunk(const ChunkHandle& handle) {
  auto it = cache_.find(handle.meta->version);
  if (it == cache_.end()) {
    it = cache_
             .emplace(handle.meta->version,
                      std::make_unique<LazyChunk>(handle, stats_))
             .first;
  }
  return it->second.get();
}

}  // namespace tsviz
