#include "read/metadata_reader.h"

namespace tsviz {

std::vector<ChunkHandle> SelectOverlappingChunks(const TsStore& store,
                                                 const TimeRange& range,
                                                 QueryStats* stats) {
  std::vector<ChunkHandle> out;
  // Two-level pruning, as in IoTDB's metadata hierarchy: the file-level
  // summary rules out whole files with one comparison, then per-chunk
  // metadata is consulted only inside overlapping files.
  for (const auto& file : store.files()) {
    if (stats != nullptr) ++stats->metadata_reads;
    if (!file->interval().Overlaps(range)) continue;
    for (const ChunkMetadata& meta : file->chunks()) {
      if (stats != nullptr) ++stats->metadata_reads;
      if (meta.Interval().Overlaps(range)) {
        out.push_back(ChunkHandle{file, &meta});
      }
    }
  }
  if (stats != nullptr) stats->chunks_total += out.size();
  return out;
}

std::vector<DeleteRecord> SelectOverlappingDeletes(const TsStore& store,
                                                   const TimeRange& range) {
  std::vector<DeleteRecord> out;
  for (const DeleteRecord& del : store.deletes()) {
    if (del.range.Overlaps(range)) {
      out.push_back(del);
    }
  }
  return out;
}

}  // namespace tsviz
