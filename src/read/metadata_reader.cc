#include "read/metadata_reader.h"

#include <utility>

#include "obs/metrics.h"
#include "storage/quarantine.h"

namespace tsviz {

std::vector<PartitionChunks> SelectPartitionChunks(const StoreView& view,
                                                   const TimeRange& range,
                                                   QueryStats* stats) {
  std::vector<PartitionChunks> out;
  uint64_t consulted = 0;
  uint64_t scanned = 0;
  uint64_t pruned = 0;
  uint64_t quarantined = 0;
  // The common case is an empty quarantine; hoist that check out of the
  // per-chunk loop.
  const ChunkQuarantine& quarantine = ChunkQuarantine::Instance();
  const bool check_quarantine = !quarantine.empty();
  for (const StorePartition& part : view.partitions()) {
    // Three-level pruning, one level above IoTDB's metadata hierarchy: the
    // partition interval rules out a whole file group with one comparison,
    // the file-level summary rules out whole files, then per-chunk
    // metadata is consulted only inside overlapping files.
    if (part.interval.Empty() || !part.interval.Overlaps(range)) {
      ++pruned;
      continue;
    }
    ++scanned;
    PartitionChunks group;
    group.partition_index = part.index;
    group.legacy = part.legacy();
    // The legacy group keeps the unclipped range (its interval is a data
    // summary, not a routing bound); indexed partitions clip, so their
    // merges never see one another's time span.
    group.range = part.legacy() ? range : range.Intersect(part.interval);
    for (const auto& file : part.files) {
      ++consulted;
      if (!file->interval().Overlaps(range)) continue;
      for (const ChunkMetadata& meta : file->chunks()) {
        ++consulted;
        if (!meta.Interval().Overlaps(range)) continue;
        if (check_quarantine &&
            quarantine.Contains(file->cache_id(), meta.data_offset)) {
          // Known-corrupt chunk: serve the query from what survives.
          ++quarantined;
          continue;
        }
        group.chunks.push_back(ChunkHandle{file, &meta});
      }
    }
    if (!group.chunks.empty()) out.push_back(std::move(group));
  }
  if (stats != nullptr) {
    stats->metadata_reads += consulted;
    stats->partitions_scanned += scanned;
    stats->partitions_pruned += pruned;
    stats->chunks_quarantined += quarantined;
    if (quarantined > 0) stats->degraded = true;
    for (const PartitionChunks& group : out) {
      stats->chunks_total += group.chunks.size();
    }
  }
  static obs::Counter& metadata_reads = obs::GetCounter(
      "read_metadata_reads_total", "File/chunk metadata entries consulted");
  static obs::Counter& partition_scans = obs::GetCounter(
      "partition_scans_total",
      "Partitions whose metadata a selection consulted");
  static obs::Counter& partition_prunes = obs::GetCounter(
      "partition_prunes_total",
      "Partitions pruned by interval before any metadata read");
  metadata_reads.Inc(consulted);
  partition_scans.Inc(scanned);
  partition_prunes.Inc(pruned);
  return out;
}

std::vector<ChunkHandle> SelectOverlappingChunks(const StoreView& view,
                                                 const TimeRange& range,
                                                 QueryStats* stats) {
  std::vector<ChunkHandle> out;
  std::vector<PartitionChunks> groups =
      SelectPartitionChunks(view, range, stats);
  for (PartitionChunks& group : groups) {
    out.insert(out.end(), std::make_move_iterator(group.chunks.begin()),
               std::make_move_iterator(group.chunks.end()));
  }
  return out;
}

std::vector<DeleteRecord> SelectOverlappingDeletes(const StoreView& view,
                                                   const TimeRange& range) {
  std::vector<DeleteRecord> out;
  for (const DeleteRecord& del : view.deletes()) {
    if (del.range.Overlaps(range)) {
      out.push_back(del);
    }
  }
  return out;
}

}  // namespace tsviz
