#include "read/metadata_reader.h"

#include "obs/metrics.h"

namespace tsviz {

std::vector<ChunkHandle> SelectOverlappingChunks(const StoreView& view,
                                                 const TimeRange& range,
                                                 QueryStats* stats) {
  std::vector<ChunkHandle> out;
  uint64_t consulted = 0;
  // Two-level pruning, as in IoTDB's metadata hierarchy: the file-level
  // summary rules out whole files with one comparison, then per-chunk
  // metadata is consulted only inside overlapping files.
  for (const auto& file : view.files()) {
    ++consulted;
    if (!file->interval().Overlaps(range)) continue;
    for (const ChunkMetadata& meta : file->chunks()) {
      ++consulted;
      if (meta.Interval().Overlaps(range)) {
        out.push_back(ChunkHandle{file, &meta});
      }
    }
  }
  if (stats != nullptr) {
    stats->metadata_reads += consulted;
    stats->chunks_total += out.size();
  }
  static obs::Counter& metadata_reads = obs::GetCounter(
      "read_metadata_reads_total", "File/chunk metadata entries consulted");
  metadata_reads.Inc(consulted);
  return out;
}

std::vector<DeleteRecord> SelectOverlappingDeletes(const StoreView& view,
                                                   const TimeRange& range) {
  std::vector<DeleteRecord> out;
  for (const DeleteRecord& del : view.deletes()) {
    if (del.range.Overlaps(range)) {
      out.push_back(del);
    }
  }
  return out;
}

}  // namespace tsviz
