#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace tsviz {

namespace {

// Writes the whole buffer, retrying on EINTR and short writes.
bool WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status SqlServer::Start(int port) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, kListenBacklog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  // The background maintenance scheduler shares the server's lifecycle:
  // auto-flush/compaction/TTL run while the server accepts queries and are
  // quiesced before the listener is torn down.
  db_->StartMaintenance();
  TSVIZ_INFO << "sql server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void SqlServer::ReapFinishedWorkersLocked() {
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load()) {
      it->thread.join();
      ::close(it->fd);
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void SqlServer::AcceptLoop() {
  while (!stopping_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_.load()) {
      ::close(client);
      break;
    }
    ReapFinishedWorkersLocked();
    Worker worker;
    worker.fd = client;
    worker.done = std::make_shared<std::atomic<bool>>(false);
    worker.thread = std::thread([this, client, done = worker.done] {
      HandleClient(client);
      done->store(true);
    });
    workers_.push_back(std::move(worker));
  }
}

void SqlServer::HandleClient(int fd) {
  static obs::Counter& connections = obs::GetCounter(
      "server_connections_total", "Client connections accepted");
  static obs::Counter& queries = obs::GetCounter(
      "server_queries_total", "SQL statements executed");
  static obs::Counter& errors = obs::GetCounter(
      "server_query_errors_total", "SQL statements that returned an error");
  static obs::Histogram& query_millis = obs::GetHistogram(
      "server_query_millis", "Per-statement latency as seen by the server");
  connections.Inc();
  {
    obs::RecordedEvent event;
    event.kind = obs::EventKind::kConnection;
    event.statement = "connection opened";
    event.status = "OK";
    obs::FlightRecorder::Instance().Record(std::move(event));
  }
  Timer connection_timer;
  uint64_t statements = 0;

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // client gone or shutdown
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "quit" || line == "QUIT") break;

    queries.Inc();
    ++statements;
    Timer timer;
    std::string reply;
    auto parsed = sql::ParseStatement(line);
    if (!parsed.ok()) {
      errors.Inc();
      reply = "ERROR: " + parsed.status().ToString() + "\n";
    } else {
      // Reads run lock-free against the immutable chunk snapshot; only
      // write statements serialize on the storage single-writer contract.
      // Statements route through the flight recorder, so the history a
      // client builds up is visible in SHOW QUERIES afterwards.
      Result<sql::ResultSet> result = [&] {
        if (sql::IsWriteStatement(*parsed)) {
          std::lock_guard<std::mutex> lock(write_mutex_);
          return sql::ExecuteRecorded(db_, *parsed, line, nullptr);
        }
        return sql::ExecuteRecorded(db_, *parsed, line, nullptr);
      }();
      if (result.ok()) {
        reply = result->ToCsv();
      } else {
        errors.Inc();
        reply = "ERROR: " + result.status().ToString() + "\n";
      }
    }
    query_millis.Observe(timer.ElapsedMillis());
    reply += "\n";  // blank-line terminator
    if (!WriteAll(fd, reply)) break;
  }
  {
    obs::RecordedEvent event;
    event.kind = obs::EventKind::kConnection;
    event.statement = "connection closed";
    event.status = "OK";
    event.millis = connection_timer.ElapsedMillis();
    event.rows = statements;
    obs::FlightRecorder::Instance().Record(std::move(event));
  }
  // The fd stays open: the server owns it and closes it at reap or Stop.
}

void SqlServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  db_->StopMaintenance();
  stopping_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<Worker> workers;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (Worker& worker : workers_) {
      ::shutdown(worker.fd, SHUT_RDWR);  // unblocks the handler's recv
    }
    workers = std::move(workers_);
    workers_.clear();
  }
  for (Worker& worker : workers) {
    if (worker.thread.joinable()) worker.thread.join();
    ::close(worker.fd);
  }
}

}  // namespace tsviz
