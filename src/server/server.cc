#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace tsviz {

namespace {

// Writes the whole buffer, retrying on EINTR and short writes
// (thread-per-connection mode only; the event loop buffers instead).
bool WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

obs::Counter& ConnectionsCounter() {
  static obs::Counter& counter = obs::GetCounter(
      "server_connections_total", "Client connections accepted");
  return counter;
}

// The event loop's batch predicate: a cheap prefix check for INSERT (any
// case, leading whitespace allowed). Runs on the loop thread for every
// pending statement, so no parsing here — the worker-side batch executor
// handles whatever actually arrives.
bool LooksLikeInsert(const std::string& line) {
  const size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos || line.size() - start < 6) return false;
  static constexpr char kInsert[] = "insert";
  for (size_t i = 0; i < 6; ++i) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(line[start + i])));
    if (c != kInsert[i]) return false;
  }
  return true;
}

}  // namespace

SqlServer::Reply SqlServer::ExecuteLine(const std::string& line,
                                        double queue_wait_millis) {
  static obs::Counter& queries = obs::GetCounter(
      "server_queries_total", "SQL statements executed");
  static obs::Counter& errors = obs::GetCounter(
      "server_query_errors_total", "SQL statements that returned an error");
  static obs::Histogram& query_millis = obs::GetHistogram(
      "server_query_millis", "Per-statement latency as seen by the server");

  if (line == "quit" || line == "QUIT") return Reply{"", /*close=*/true};

  queries.Inc();
  Timer timer;
  std::string reply;
  auto parsed = sql::ParseStatement(line);
  if (!parsed.ok()) {
    errors.Inc();
    reply = "ERROR: " + parsed.status().ToString() + "\n";
  } else {
    const bool is_select =
        std::holds_alternative<sql::SelectStatement>(*parsed);
    // Reads run lock-free against the immutable chunk snapshot; only write
    // statements serialize on the storage single-writer contract.
    // Statements route through the flight recorder, so the history a client
    // builds up is visible in SHOW QUERIES afterwards; the queue-wait time
    // rides along so traced statements show a net_queue_wait span.
    sql::RecordContext context;
    context.net_queue_wait_millis = queue_wait_millis;
    Result<sql::ResultSet> result = [&] {
      if (sql::IsWriteStatement(*parsed)) {
        std::lock_guard<std::mutex> lock(write_mutex_);
        return sql::ExecuteRecorded(db_, *parsed, line, nullptr, context);
      }
      return sql::ExecuteRecorded(db_, *parsed, line, nullptr, context);
    }();
    if (result.ok()) {
      reply = result->ToCsv();
      if (is_select && db_->IsReplica()) {
        // Follower reads advertise their staleness in-band: clients see
        // exactly how old the answer may be without a second round trip.
        reply += "replica_lag_ms," +
                 std::to_string(db_->replication_lag_ms()) + "\n";
      }
    } else {
      errors.Inc();
      reply = "ERROR: " + result.status().ToString() +
              (result.status().retryable() ? " (retryable)" : "") + "\n";
    }
  }
  query_millis.Observe(timer.ElapsedMillis());
  reply += "\n";  // blank-line terminator
  return Reply{std::move(reply), /*close=*/false};
}

std::vector<net::Response> SqlServer::ExecuteBatch(
    const std::vector<net::Request>& requests) {
  static obs::Counter& queries = obs::GetCounter(
      "server_queries_total", "SQL statements executed");
  static obs::Counter& errors = obs::GetCounter(
      "server_query_errors_total", "SQL statements that returned an error");
  static obs::Histogram& query_millis = obs::GetHistogram(
      "server_query_millis", "Per-statement latency as seen by the server");

  std::vector<std::string> lines;
  lines.reserve(requests.size());
  for (const net::Request& request : requests) lines.push_back(request.line);
  sql::RecordContext context;
  context.net_queue_wait_millis =
      requests.empty() ? -1.0 : requests.front().queue_wait_millis;

  Timer timer;
  std::vector<Result<sql::ResultSet>> results;
  {
    // Every line in the burst matched the INSERT prefix predicate — all
    // writes — so one write_mutex_ hold covers the whole batch (a
    // stray non-write line would just execute under the lock, harmlessly).
    std::lock_guard<std::mutex> lock(write_mutex_);
    results = sql::ExecuteInsertBatch(db_, lines, context);
  }
  const double per_statement_millis =
      results.empty() ? 0.0 : timer.ElapsedMillis() / results.size();

  std::vector<net::Response> responses;
  responses.reserve(results.size());
  for (Result<sql::ResultSet>& result : results) {
    queries.Inc();
    std::string payload;
    if (result.ok()) {
      payload = result->ToCsv();
    } else {
      errors.Inc();
      payload = "ERROR: " + result.status().ToString() +
                (result.status().retryable() ? " (retryable)" : "") + "\n";
    }
    payload += "\n";  // blank-line terminator
    query_millis.Observe(per_statement_millis);
    responses.push_back(net::Response{std::move(payload), /*close=*/false});
  }
  return responses;
}

void SqlServer::RecordConnectionOpened() {
  ConnectionsCounter().Inc();
  obs::RecordedEvent event;
  event.kind = obs::EventKind::kConnection;
  event.statement = "connection opened";
  event.status = "OK";
  obs::FlightRecorder::Instance().Record(std::move(event));
}

void SqlServer::RecordConnectionClosed(uint64_t statements, double millis) {
  obs::RecordedEvent event;
  event.kind = obs::EventKind::kConnection;
  event.statement = "connection closed";
  event.status = "OK";
  event.millis = millis;
  event.rows = statements;
  obs::FlightRecorder::Instance().Record(std::move(event));
}

Status SqlServer::Start(int port) {
  if (net_server_ != nullptr || listen_fd_ >= 0) {
    return Status::InvalidArgument("already started");
  }
  if (mode_ == ServerMode::kThreadPerConn) {
    TSVIZ_RETURN_IF_ERROR(StartThreadPerConn(port));
  } else {
    net::NetServerOptions options;
    options.listen_backlog = db_->listen_backlog();
    options.max_connections = [db = db_] { return db->max_connections(); };
    options.idle_timeout_ms = [db = db_] { return db->idle_timeout_ms(); };
    options.on_open = [this] { RecordConnectionOpened(); };
    options.on_close = [this](uint64_t requests, double millis) {
      RecordConnectionClosed(requests, millis);
    };
    // Worker-side batch accumulation: consecutive pipelined INSERTs ride
    // one work item and coalesce into batched store writes.
    options.batchable = [](const std::string& line) {
      return LooksLikeInsert(line);
    };
    options.batch_handler = [this](const std::vector<net::Request>& batch) {
      return ExecuteBatch(batch);
    };
    auto server = std::make_unique<net::NetServer>(
        std::move(options), [this](const net::Request& request) {
          Reply reply = ExecuteLine(request.line, request.queue_wait_millis);
          return net::Response{std::move(reply.payload), reply.close};
        });
    Status status = server->Start(port);
    if (!status.ok()) return status;
    port_ = server->port();
    net_server_ = std::move(server);
  }
  // The background maintenance scheduler shares the server's lifecycle:
  // auto-flush/compaction/TTL run while the server accepts queries and are
  // quiesced before the listener is torn down.
  db_->StartMaintenance();
  TSVIZ_INFO << "sql server listening on 127.0.0.1:" << port_
             << (mode_ == ServerMode::kEventLoop ? " (event loop)"
                                                 : " (thread per conn)");
  return Status::OK();
}

void SqlServer::Stop() {
  if (net_server_ != nullptr) {
    db_->StopMaintenance();
    net_server_->Stop();
    net_server_.reset();
    return;
  }
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  db_->StopMaintenance();
  stopping_ = true;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<Worker> workers;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (Worker& worker : workers_) {
      ::shutdown(worker.fd, SHUT_RDWR);  // unblocks the handler's recv
    }
    workers = std::move(workers_);
    workers_.clear();
  }
  for (Worker& worker : workers) {
    if (worker.thread.joinable()) worker.thread.join();
    ::close(worker.fd);
  }
}

// --- thread-per-connection baseline ---

Status SqlServer::StartThreadPerConn(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, db_->listen_backlog()) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SqlServer::ReapFinishedWorkersLocked() {
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load()) {
      it->thread.join();
      ::close(it->fd);
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void SqlServer::AcceptLoop() {
  while (!stopping_.load()) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_.load()) {
      ::close(client);
      break;
    }
    ReapFinishedWorkersLocked();
    Worker worker;
    worker.fd = client;
    worker.done = std::make_shared<std::atomic<bool>>(false);
    worker.thread = std::thread([this, client, done = worker.done] {
      HandleClient(client);
      done->store(true);
    });
    workers_.push_back(std::move(worker));
  }
}

void SqlServer::HandleClient(int fd) {
  RecordConnectionOpened();
  Timer connection_timer;
  uint64_t statements = 0;

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // client gone or shutdown
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    Reply reply = ExecuteLine(line, /*queue_wait_millis=*/-1.0);
    if (reply.close) break;
    ++statements;
    if (!WriteAll(fd, reply.payload)) break;
  }
  RecordConnectionClosed(statements, connection_timer.ElapsedMillis());
  // The fd stays open: the server owns it and closes it at reap or Stop.
}

}  // namespace tsviz
