#ifndef TSVIZ_SERVER_SERVER_H_
#define TSVIZ_SERVER_SERVER_H_

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "db/database.h"

namespace tsviz {

// Minimal TCP SQL endpoint with a newline-delimited protocol:
//
//   client:  one SQL statement per line
//   server:  the result as CSV, terminated by one blank line,
//            or "ERROR: <message>" followed by a blank line
//   client:  "quit" closes the connection
//
// Each connection gets its own handler thread. Read statements (every
// statement in the current dialect) execute concurrently against the
// immutable chunk snapshot; write statements, if the dialect grows any,
// serialize on `write_mutex_` to honor the storage layer's single-writer
// contract. This is the network face a deployment needs — the analog of
// IoTDB's session service, reduced to the query dialect this library
// implements.
class SqlServer {
 public:
  explicit SqlServer(Database* db) : db_(db) {}
  ~SqlServer() { Stop(); }

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  // accept loop on a background thread.
  Status Start(int port);

  // Shuts the listener and every open connection down and joins all
  // threads. Idempotent.
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleClient(int fd);

  Database* db_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex state_mutex_;  // guards workers_ and client_fds_
  std::mutex write_mutex_;  // serializes write statements only
  std::vector<std::thread> workers_;
  std::vector<int> client_fds_;
};

}  // namespace tsviz

#endif  // TSVIZ_SERVER_SERVER_H_
