#ifndef TSVIZ_SERVER_SERVER_H_
#define TSVIZ_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "db/database.h"

namespace tsviz {

// Minimal TCP SQL endpoint with a newline-delimited protocol:
//
//   client:  one SQL statement per line
//   server:  the result as CSV, terminated by one blank line,
//            or "ERROR: <message>" followed by a blank line
//   client:  "quit" closes the connection
//
// Each connection gets its own handler thread. Read statements (every
// statement in the current dialect) execute concurrently against the
// immutable chunk snapshot; write statements, if the dialect grows any,
// serialize on `write_mutex_` to honor the storage layer's single-writer
// contract. This is the network face a deployment needs — the analog of
// IoTDB's session service, reduced to the query dialect this library
// implements.
class SqlServer {
 public:
  explicit SqlServer(Database* db) : db_(db) {}
  ~SqlServer() { Stop(); }

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  // accept loop on a background thread.
  Status Start(int port);

  // Shuts the listener and every open connection down and joins all
  // threads. Idempotent.
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  // Pending-connection queue passed to listen(2).
  static constexpr int kListenBacklog = 64;

 private:
  // One connection-handler thread and the fd it serves. The handler marks
  // `done` when it returns; the accept loop reaps (joins and closes) done
  // workers before admitting the next connection, so the worker list stays
  // proportional to the number of *live* connections instead of growing for
  // the lifetime of the server. The fd is owned by the server (closed at
  // reap or Stop), never by the handler, so Stop can never shut down a
  // recycled descriptor.
  struct Worker {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void HandleClient(int fd);
  // Joins every finished worker and closes its fd. Caller holds state_mutex_.
  void ReapFinishedWorkersLocked();

  Database* db_;
  std::atomic<int> listen_fd_{-1};  // read by AcceptLoop, closed by Stop
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex state_mutex_;  // guards workers_
  std::mutex write_mutex_;  // serializes write statements only
  std::vector<Worker> workers_;
};

}  // namespace tsviz

#endif  // TSVIZ_SERVER_SERVER_H_
