#ifndef TSVIZ_SERVER_SERVER_H_
#define TSVIZ_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "net/net_server.h"

namespace tsviz {

// How the server moves bytes. The event loop is the production path; the
// thread-per-connection mode is kept as the baseline bench_concurrency
// compares against (and as a fallback should a platform lack epoll).
enum class ServerMode {
  kEventLoop,      // src/net: epoll loop + worker pool, pipelining,
                   // admission control, backpressure
  kThreadPerConn,  // one blocking handler thread per connection
};

// TCP SQL endpoint with a newline-delimited protocol:
//
//   client:  one SQL statement per line (any number may be pipelined into
//            a single send; responses come back in order)
//   server:  the result as CSV, terminated by one blank line,
//            or "ERROR: <message>" followed by a blank line
//   client:  "quit" closes the connection
//
// In the default event-loop mode a single epoll thread owns every socket
// and a fixed worker pool executes statements off a bounded queue (see
// docs/NETWORKING.md). Read statements execute concurrently against the
// immutable chunk snapshot; write statements (SET, INSERT, FLUSH, COMPACT)
// serialize on `write_mutex_` to honor the storage layer's single-writer
// contract. This is the network face a deployment needs — the analog of
// IoTDB's session service, reduced to the query dialect this library
// implements.
//
// Runtime knobs: `SET max_connections` caps live connections (excess
// accepts get "ERROR: server busy" and are closed; applies to the next
// accept), `SET listen_backlog` sets the listen(2) queue (applies to the
// next Start).
class SqlServer {
 public:
  explicit SqlServer(Database* db, ServerMode mode = ServerMode::kEventLoop)
      : db_(db), mode_(mode) {}
  ~SqlServer() { Stop(); }

  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts serving.
  Status Start(int port);

  // Shuts the listener and every open connection down and joins all
  // threads. Idempotent.
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  // Default pending-connection queue passed to listen(2); overridden at
  // runtime by `SET listen_backlog`.
  static constexpr int kDefaultListenBacklog = 64;

 private:
  // The protocol-level reply to one statement line: the payload already
  // includes the blank-line terminator; `close` ends the connection after
  // the payload drains ("quit").
  struct Reply {
    std::string payload;
    bool close = false;
  };

  // Parses and executes one statement line (both modes funnel through
  // here): metrics, flight-recorder routing, and the single-writer lock.
  // `queue_wait_millis` < 0 means the statement never sat in a queue.
  Reply ExecuteLine(const std::string& line, double queue_wait_millis);

  // Batch path for the event loop's worker-side accumulation: a burst of
  // consecutive INSERT-shaped lines from one connection, executed under a
  // single write_mutex_ hold with runs of single-point INSERTs to the same
  // series coalesced into one store write (sql::ExecuteInsertBatch).
  // Returns one in-order Response per line, each formatted exactly as
  // ExecuteLine would have.
  std::vector<net::Response> ExecuteBatch(
      const std::vector<net::Request>& requests);

  void RecordConnectionOpened();
  void RecordConnectionClosed(uint64_t statements, double millis);

  // --- thread-per-connection baseline ---

  // One connection-handler thread and the fd it serves. The handler marks
  // `done` when it returns; the accept loop reaps (joins and closes) done
  // workers before admitting the next connection, so the worker list stays
  // proportional to the number of *live* connections. The fd is owned by
  // the server (closed at reap or Stop), never by the handler, so Stop can
  // never shut down a recycled descriptor.
  struct Worker {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };

  Status StartThreadPerConn(int port);
  void AcceptLoop();
  void HandleClient(int fd);
  // Joins every finished worker and closes its fd. Caller holds state_mutex_.
  void ReapFinishedWorkersLocked();

  Database* db_;
  ServerMode mode_;
  int port_ = 0;
  std::mutex write_mutex_;  // serializes write statements only

  // Event-loop mode.
  std::unique_ptr<net::NetServer> net_server_;

  // Thread-per-connection mode.
  std::atomic<int> listen_fd_{-1};  // read by AcceptLoop, closed by Stop
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex state_mutex_;  // guards workers_
  std::vector<Worker> workers_;
};

}  // namespace tsviz

#endif  // TSVIZ_SERVER_SERVER_H_
