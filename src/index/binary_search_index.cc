#include "index/binary_search_index.h"

namespace tsviz {

size_t LocatePageBinary(const std::vector<PageInfo>& pages, Timestamp t,
                        size_t* probes) {
  size_t lo = 0;
  size_t hi = pages.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (probes != nullptr) ++*probes;
    if (pages[mid].max_t < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t LocatePageBinaryBackward(const std::vector<PageInfo>& pages,
                                Timestamp t, size_t* probes) {
  // First page with min_t > t, minus one.
  size_t lo = 0;
  size_t hi = pages.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (probes != nullptr) ++*probes;
    if (pages[mid].min_t <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? pages.size() : lo - 1;
}

}  // namespace tsviz
