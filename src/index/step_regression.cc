#include "index/step_regression.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "encoding/varint.h"

namespace tsviz {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Fallback when no changing points are found or the derived splits are
// inconsistent: one tilt segment anchored at the first point (Def. 3.6's
// "the first segment is tilt by default").
StepRegressionModel SingleTiltModel(double k, const std::vector<Timestamp>& ts) {
  StepRegressionModel m;
  m.k = k;
  m.count = ts.size();
  m.splits = {ts.front(), ts.back()};
  m.intercepts = {1.0 - k * static_cast<double>(ts.front())};
  return m;
}

}  // namespace

double StepRegressionModel::Eval(Timestamp t) const {
  if (count == 0) return 0.0;
  if (count == 1 || splits.size() < 2) return 1.0;
  if (t <= splits.front()) return 1.0;
  if (t >= splits.back()) return static_cast<double>(count);
  // Largest segment start <= t; segments are 0-based here, so even indexes
  // correspond to the paper's odd (tilt) segments.
  auto it = std::upper_bound(splits.begin(), splits.end(), t);
  size_t seg = static_cast<size_t>(it - splits.begin()) - 1;
  if (seg >= intercepts.size()) seg = intercepts.size() - 1;
  double f = (seg % 2 == 0) ? k * static_cast<double>(t) + intercepts[seg]
                            : intercepts[seg];
  return std::clamp(f, 1.0, static_cast<double>(count));
}

void StepRegressionModel::SerializeTo(std::string* dst) const {
  PutFixed64(dst, DoubleToBits(k));
  PutVarint64(dst, count);
  PutVarint64(dst, splits.size());
  Timestamp prev = 0;
  for (Timestamp t : splits) {
    PutSignedVarint64(dst, t - prev);
    prev = t;
  }
  PutVarint64(dst, intercepts.size());
  for (double b : intercepts) {
    PutFixed64(dst, DoubleToBits(b));
  }
}

Result<StepRegressionModel> StepRegressionModel::Deserialize(
    std::string_view* src) {
  StepRegressionModel m;
  TSVIZ_ASSIGN_OR_RETURN(uint64_t k_bits, GetFixed64(src));
  m.k = BitsToDouble(k_bits);
  TSVIZ_ASSIGN_OR_RETURN(m.count, GetVarint64(src));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t n_splits, GetVarint64(src));
  if (n_splits > (1u << 24)) return Status::Corruption("absurd split count");
  m.splits.reserve(n_splits);
  Timestamp prev = 0;
  for (uint64_t i = 0; i < n_splits; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(int64_t delta, GetSignedVarint64(src));
    prev += delta;
    m.splits.push_back(prev);
  }
  TSVIZ_ASSIGN_OR_RETURN(uint64_t n_intercepts, GetVarint64(src));
  if (n_splits >= 2 && n_intercepts != n_splits - 1) {
    return Status::Corruption("intercept/split count mismatch");
  }
  m.intercepts.reserve(n_intercepts);
  for (uint64_t i = 0; i < n_intercepts; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64(src));
    m.intercepts.push_back(BitsToDouble(bits));
  }
  return m;
}

StepRegressionModel FitStepRegression(const std::vector<Timestamp>& ts) {
  StepRegressionModel model;
  model.count = ts.size();
  if (ts.size() < 2) {
    if (!ts.empty()) {
      model.splits = {ts.front(), ts.front()};
      model.intercepts = {1.0};
      model.k = 0.0;
    }
    return model;
  }

  const size_t n = ts.size();
  std::vector<int64_t> deltas(n - 1);
  for (size_t i = 1; i < n; ++i) deltas[i - 1] = ts[i] - ts[i - 1];

  // Slope K = 1 / median(deltas) (Section 3.5.2).
  std::vector<int64_t> sorted = deltas;
  auto mid = sorted.begin() + static_cast<ptrdiff_t>(sorted.size() / 2);
  std::nth_element(sorted.begin(), mid, sorted.end());
  int64_t median = *mid;
  if (median < 1) median = 1;
  const double k = 1.0 / static_cast<double>(median);

  // Changing points by the 3-sigma rule on deltas (Section 3.5.3).
  double mean = 0.0;
  for (int64_t d : deltas) mean += static_cast<double>(d);
  mean /= static_cast<double>(deltas.size());
  double var = 0.0;
  for (int64_t d : deltas) {
    double diff = static_cast<double>(d) - mean;
    var += diff * diff;
  }
  var /= static_cast<double>(deltas.size());
  const double threshold = mean + 3.0 * std::sqrt(var);

  // (1-based position in the chunk, timestamp) of each changing point.
  std::vector<std::pair<uint64_t, Timestamp>> changing;
  for (size_t p = 1; p + 1 < n; ++p) {
    const double din = static_cast<double>(ts[p] - ts[p - 1]);
    const double dout = static_cast<double>(ts[p + 1] - ts[p]);
    const bool in_small = din <= threshold;
    const bool out_small = dout <= threshold;
    if (in_small != out_small) {
      changing.emplace_back(p + 1, ts[p]);
    }
  }

  if (changing.empty()) return SingleTiltModel(k, ts);

  // m - 1 segments, alternating tilt (odd) / level (even), 1-based.
  const size_t m = changing.size() + 2;
  std::vector<double> b(m);  // b[1..m-1] used
  b[1] = 1.0 - k * static_cast<double>(ts.front());
  for (size_t i = 2; i + 1 < m; ++i) {
    const auto& [j, t] = changing[i - 2];
    b[i] = (i % 2 == 1) ? static_cast<double>(j) - k * static_cast<double>(t)
                        : static_cast<double>(j);
  }
  const size_t last = m - 1;
  if (last >= 2) {
    b[last] = (last % 2 == 1)
                  ? static_cast<double>(ts.size()) -
                        k * static_cast<double>(ts.back())
                  : static_cast<double>(ts.size());
  }

  // Split timestamps by intersecting adjacent segments.
  std::vector<Timestamp> splits(m);
  splits[0] = ts.front();
  splits[m - 1] = ts.back();
  for (size_t i = 2; i <= m - 1; ++i) {
    const double t = (i % 2 == 1) ? (b[i - 1] - b[i]) / k
                                  : (b[i] - b[i - 1]) / k;
    splits[i - 1] = static_cast<Timestamp>(std::llround(t));
  }
  for (size_t i = 1; i < m; ++i) {
    if (splits[i] < splits[i - 1]) return SingleTiltModel(k, ts);
  }

  model.k = k;
  model.splits = std::move(splits);
  model.intercepts.assign(b.begin() + 1, b.end());
  return model;
}

StepRegressionModel FitStepRegression(const std::vector<Point>& points) {
  std::vector<Timestamp> ts;
  ts.reserve(points.size());
  for (const Point& p : points) ts.push_back(p.t);
  return FitStepRegression(ts);
}

}  // namespace tsviz
