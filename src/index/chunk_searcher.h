#ifndef TSVIZ_INDEX_CHUNK_SEARCHER_H_
#define TSVIZ_INDEX_CHUNK_SEARCHER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "index/page_provider.h"
#include "index/step_regression.h"

namespace tsviz {

// How the searcher locates the page containing a lookup timestamp.
enum class LocateStrategy {
  kStepRegression,  // evaluate the learned model, then correct locally
  kBinarySearch,    // binary search the page directory (ablation baseline)
};

// A point together with its 0-based position in the chunk.
struct PointPos {
  size_t pos = 0;
  Point point;
};

// Implements the three chunk index operations of Definition 3.5 on top of a
// paged chunk: existence at a timestamp (candidate verification for BP/TP,
// Table 1 case a) and closest point at-or-after / at-or-before a timestamp
// (FP/LP recalculation under deletes, case b). Only the pages actually
// touched are decoded; the locate strategy decides how the target page is
// found.
class ChunkSearcher {
 public:
  // `provider` and `model` must outlive the searcher; `model` may be null
  // only with kBinarySearch. `stats` (optional) accumulates index_lookups
  // and points_scanned.
  ChunkSearcher(PageProvider* provider, const StepRegressionModel* model,
                LocateStrategy strategy, QueryStats* stats);

  // Point at exactly `t`, if the chunk stores one.
  Result<std::optional<PointPos>> FindExact(Timestamp t);

  // Closest point with time >= t (strictly-after = FirstAtOrAfter(t + 1)).
  Result<std::optional<PointPos>> FirstAtOrAfter(Timestamp t);

  // Closest point with time <= t (strictly-before = LastAtOrBefore(t - 1)).
  Result<std::optional<PointPos>> LastAtOrBefore(Timestamp t);

  // Point at the given 0-based position (decodes one page).
  Result<Point> PointAt(size_t pos);

 private:
  // First page whose max_t >= t, or pages().size() if none.
  size_t LocateForward(Timestamp t);
  // Last page whose min_t <= t, or pages().size() if none.
  size_t LocateBackward(Timestamp t);
  // Page index such that global position `pos` lives in it.
  size_t PageOfPosition(uint64_t pos) const;

  PageProvider* provider_;
  const StepRegressionModel* model_;
  LocateStrategy strategy_;
  QueryStats* stats_;
  std::vector<uint64_t> page_start_;  // cumulative first position per page
};

}  // namespace tsviz

#endif  // TSVIZ_INDEX_CHUNK_SEARCHER_H_
