#include "index/chunk_searcher.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "index/binary_search_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz {

ChunkSearcher::ChunkSearcher(PageProvider* provider,
                             const StepRegressionModel* model,
                             LocateStrategy strategy, QueryStats* stats)
    : provider_(provider), model_(model), strategy_(strategy), stats_(stats) {
  TSVIZ_CHECK(provider_ != nullptr);
  TSVIZ_CHECK(model_ != nullptr || strategy_ == LocateStrategy::kBinarySearch);
  const auto& pages = provider_->pages();
  page_start_.reserve(pages.size());
  uint64_t start = 0;
  for (const PageInfo& page : pages) {
    page_start_.push_back(start);
    start += page.count;
  }
}

size_t ChunkSearcher::PageOfPosition(uint64_t pos) const {
  // Last page whose first position is <= pos.
  auto it = std::upper_bound(page_start_.begin(), page_start_.end(), pos);
  if (it == page_start_.begin()) return 0;
  return static_cast<size_t>(it - page_start_.begin()) - 1;
}

namespace {

void CountIndexProbe() {
  static obs::Counter& probes = obs::GetCounter(
      "index_probes_total", "Chunk index locate operations (FP/LP/BP/TP)");
  probes.Inc();
}

}  // namespace

size_t ChunkSearcher::LocateForward(Timestamp t) {
  const auto& pages = provider_->pages();
  if (pages.empty()) return 0;
  if (stats_ != nullptr) ++stats_->index_lookups;
  CountIndexProbe();
  obs::TraceSpan span(stats_ != nullptr ? stats_->trace.get() : nullptr,
                      "index_probe");
  if (strategy_ == LocateStrategy::kBinarySearch) {
    return LocatePageBinary(pages, t);
  }
  // Model gives a 1-based position estimate; start at its page and correct
  // locally against the exact page bounds in the directory.
  double est = model_->Eval(t);
  uint64_t pos = static_cast<uint64_t>(
      std::clamp<int64_t>(std::llround(est) - 1, 0,
                 static_cast<int64_t>(provider_->num_points()) - 1));
  size_t page = PageOfPosition(pos);
  while (page < pages.size() && pages[page].max_t < t) ++page;
  while (page > 0 && pages[page - 1].max_t >= t) --page;
  return page;
}

size_t ChunkSearcher::LocateBackward(Timestamp t) {
  const auto& pages = provider_->pages();
  if (pages.empty()) return 0;
  if (stats_ != nullptr) ++stats_->index_lookups;
  CountIndexProbe();
  obs::TraceSpan span(stats_ != nullptr ? stats_->trace.get() : nullptr,
                      "index_probe");
  if (strategy_ == LocateStrategy::kBinarySearch) {
    return LocatePageBinaryBackward(pages, t);
  }
  if (pages.front().min_t > t) return pages.size();
  double est = model_->Eval(t);
  uint64_t pos = static_cast<uint64_t>(
      std::clamp<int64_t>(std::llround(est) - 1, 0,
                 static_cast<int64_t>(provider_->num_points()) - 1));
  size_t page = PageOfPosition(pos);
  while (page > 0 && pages[page].min_t > t) --page;
  while (page + 1 < pages.size() && pages[page + 1].min_t <= t) ++page;
  return page;
}

Result<std::optional<PointPos>> ChunkSearcher::FindExact(Timestamp t) {
  const auto& pages = provider_->pages();
  if (pages.empty() || t < pages.front().min_t || t > pages.back().max_t) {
    return std::optional<PointPos>();
  }
  size_t page = LocateForward(t);
  if (page >= pages.size() || pages[page].min_t > t) {
    return std::optional<PointPos>();  // t falls in a gap between pages
  }
  TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* points,
                         provider_->GetPage(page));
  auto it = std::lower_bound(
      points->begin(), points->end(), t,
      [](const Point& p, Timestamp value) { return p.t < value; });
  if (it == points->end() || it->t != t) return std::optional<PointPos>();
  size_t idx = static_cast<size_t>(it - points->begin());
  return std::optional<PointPos>(
      PointPos{static_cast<size_t>(page_start_[page]) + idx, *it});
}

Result<std::optional<PointPos>> ChunkSearcher::FirstAtOrAfter(Timestamp t) {
  const auto& pages = provider_->pages();
  if (pages.empty() || t > pages.back().max_t) {
    return std::optional<PointPos>();
  }
  size_t page = LocateForward(t);
  if (page >= pages.size()) return std::optional<PointPos>();
  TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* points,
                         provider_->GetPage(page));
  auto it = std::lower_bound(
      points->begin(), points->end(), t,
      [](const Point& p, Timestamp value) { return p.t < value; });
  // LocateForward guarantees pages[page].max_t >= t, so `it` is valid.
  if (it == points->end()) {
    return Status::Internal("page directory bounds inconsistent with data");
  }
  size_t idx = static_cast<size_t>(it - points->begin());
  return std::optional<PointPos>(
      PointPos{static_cast<size_t>(page_start_[page]) + idx, *it});
}

Result<std::optional<PointPos>> ChunkSearcher::LastAtOrBefore(Timestamp t) {
  const auto& pages = provider_->pages();
  if (pages.empty() || t < pages.front().min_t) {
    return std::optional<PointPos>();
  }
  size_t page = LocateBackward(t);
  if (page >= pages.size()) return std::optional<PointPos>();
  TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* points,
                         provider_->GetPage(page));
  auto it = std::upper_bound(
      points->begin(), points->end(), t,
      [](Timestamp value, const Point& p) { return value < p.t; });
  if (it == points->begin()) {
    return Status::Internal("page directory bounds inconsistent with data");
  }
  --it;
  size_t idx = static_cast<size_t>(it - points->begin());
  return std::optional<PointPos>(
      PointPos{static_cast<size_t>(page_start_[page]) + idx, *it});
}

Result<Point> ChunkSearcher::PointAt(size_t pos) {
  if (pos >= provider_->num_points()) {
    return Status::OutOfRange("position past end of chunk");
  }
  size_t page = PageOfPosition(pos);
  TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* points,
                         provider_->GetPage(page));
  return (*points)[pos - page_start_[page]];
}

}  // namespace tsviz
