#ifndef TSVIZ_INDEX_STEP_REGRESSION_H_
#define TSVIZ_INDEX_STEP_REGRESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Step regression chunk index (Section 3.5). Models the map from a data
// point's timestamp to its 1-based position inside the chunk as alternating
// "tilt" segments (fixed positive slope K, the preset collection frequency)
// and "level" segments (slope zero, covering transmission gaps):
//
//   f(t) = 1_{tilt}(t) * K * t + sum_i 1_{I_i}(t) * b_i ,  t in [t_1, t_m].
//
// The model is fully determined by the slope K and the split timestamps
// S = {t_1..t_m}; intercepts are stored too so evaluation is direct. Odd
// segments (1-based) are tilts, even segments are levels, as in Def. 3.6.
struct StepRegressionModel {
  double k = 0.0;                     // points per time unit (1/median delta)
  uint64_t count = 0;                 // |C|, number of points in the chunk
  std::vector<Timestamp> splits;      // S, size m >= 2 (or empty if count<2)
  std::vector<double> intercepts;     // b_1..b_{m-1}

  // Estimated 1-based position of timestamp t, clamped to [1, count].
  // Proposition 3.7: Eval(first.t) == 1 and Eval(last.t) == count.
  double Eval(Timestamp t) const;

  size_t SegmentCount() const {
    return splits.size() < 2 ? 0 : splits.size() - 1;
  }

  void SerializeTo(std::string* dst) const;
  static Result<StepRegressionModel> Deserialize(std::string_view* src);

  friend bool operator==(const StepRegressionModel&,
                         const StepRegressionModel&) = default;
};

// Learns K (Section 3.5.2: inverse of the median timestamp delta) and the
// split timestamps (Section 3.5.3: changing points by the 3-sigma rule on
// deltas, intercepts from Proposition 3.7 and the changing-point positions,
// splits by intersecting adjacent segments) from the sorted timestamps of a
// chunk. Never fails: degenerate inputs (fewer than two points, zero median)
// produce a usable fallback model.
StepRegressionModel FitStepRegression(const std::vector<Timestamp>& ts);

// Convenience overload over points.
StepRegressionModel FitStepRegression(const std::vector<Point>& points);

}  // namespace tsviz

#endif  // TSVIZ_INDEX_STEP_REGRESSION_H_
