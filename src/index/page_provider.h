#ifndef TSVIZ_INDEX_PAGE_PROVIDER_H_
#define TSVIZ_INDEX_PAGE_PROVIDER_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "encoding/page.h"

namespace tsviz {

// Read access to a chunk's pages without committing to a storage layer.
// `read/LazyChunk` implements this on top of on-disk chunk blobs; tests use
// in-memory fakes. Decoding a page is the expensive operation the searcher
// tries to minimize.
class PageProvider {
 public:
  virtual ~PageProvider() = default;

  // Page directory: counts and exact time bounds per page, in time order.
  virtual const std::vector<PageInfo>& pages() const = 0;

  // Decodes page `i` (reading it from disk if necessary) and returns the
  // points; the pointer stays valid for the provider's lifetime.
  virtual Result<const std::vector<Point>*> GetPage(size_t i) = 0;

  // Total number of points in the chunk.
  virtual uint64_t num_points() const = 0;
};

}  // namespace tsviz

#endif  // TSVIZ_INDEX_PAGE_PROVIDER_H_
