#ifndef TSVIZ_INDEX_BINARY_SEARCH_INDEX_H_
#define TSVIZ_INDEX_BINARY_SEARCH_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "encoding/page.h"

namespace tsviz {

// Baseline page locator used in the index ablation: binary search over the
// page directory's exact time bounds. O(log pages) directory probes versus
// the step regression's O(1) model evaluation.

// Index of the first page whose max_t >= t, i.e. the unique page that could
// contain t or the first point after it. Returns pages.size() when t is past
// the end of the chunk. *probes (optional) counts directory comparisons.
size_t LocatePageBinary(const std::vector<PageInfo>& pages, Timestamp t,
                        size_t* probes = nullptr);

// Index of the last page whose min_t <= t (for backward searches). Returns
// pages.size() when t precedes the chunk.
size_t LocatePageBinaryBackward(const std::vector<PageInfo>& pages,
                                Timestamp t, size_t* probes = nullptr);

}  // namespace tsviz

#endif  // TSVIZ_INDEX_BINARY_SEARCH_INDEX_H_
