#include "viz/ssim.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace tsviz {

double Ssim(const Bitmap& a, const Bitmap& b) {
  TSVIZ_CHECK(a.width() == b.width() && a.height() == b.height());
  // Standard constants for dynamic range L = 1 (binary images).
  constexpr double kC1 = 0.01 * 0.01;
  constexpr double kC2 = 0.03 * 0.03;
  constexpr int kWindow = 8;

  double total = 0.0;
  size_t windows = 0;
  for (int y0 = 0; y0 < a.height(); y0 += kWindow) {
    for (int x0 = 0; x0 < a.width(); x0 += kWindow) {
      const int w = std::min(kWindow, a.width() - x0);
      const int h = std::min(kWindow, a.height() - y0);
      const double n = static_cast<double>(w) * h;
      double sum_a = 0;
      double sum_b = 0;
      double sum_aa = 0;
      double sum_bb = 0;
      double sum_ab = 0;
      for (int y = y0; y < y0 + h; ++y) {
        for (int x = x0; x < x0 + w; ++x) {
          double pa = a.Get(x, y) ? 1.0 : 0.0;
          double pb = b.Get(x, y) ? 1.0 : 0.0;
          sum_a += pa;
          sum_b += pb;
          sum_aa += pa * pa;
          sum_bb += pb * pb;
          sum_ab += pa * pb;
        }
      }
      double mu_a = sum_a / n;
      double mu_b = sum_b / n;
      double var_a = sum_aa / n - mu_a * mu_a;
      double var_b = sum_bb / n - mu_b * mu_b;
      double cov = sum_ab / n - mu_a * mu_b;
      double ssim = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                    ((mu_a * mu_a + mu_b * mu_b + kC1) *
                     (var_a + var_b + kC2));
      total += ssim;
      ++windows;
    }
  }
  return windows == 0 ? 1.0 : total / static_cast<double>(windows);
}

Status WriteDiffPpm(const Bitmap& ground_truth, const Bitmap& rendered,
                    const std::string& path) {
  if (ground_truth.width() != rendered.width() ||
      ground_truth.height() != rendered.height()) {
    return Status::InvalidArgument("bitmap dimensions differ");
  }
  std::string ppm = "P6\n" + std::to_string(ground_truth.width()) + " " +
                    std::to_string(ground_truth.height()) + "\n255\n";
  for (int y = 0; y < ground_truth.height(); ++y) {
    for (int x = 0; x < ground_truth.width(); ++x) {
      bool truth = ground_truth.Get(x, y);
      bool got = rendered.Get(x, y);
      uint8_t r = 255;
      uint8_t g = 255;
      uint8_t b = 255;
      if (truth && got) {
        r = g = b = 0;  // correct: black
      } else if (truth) {
        g = b = 0;  // missed: red
      } else if (got) {
        r = g = 0;  // spurious: blue
      }
      ppm.push_back(static_cast<char>(r));
      ppm.push_back(static_cast<char>(g));
      ppm.push_back(static_cast<char>(b));
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + path);
  size_t written = std::fwrite(ppm.data(), 1, ppm.size(), file);
  int rc = std::fclose(file);
  if (written != ppm.size() || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace tsviz
