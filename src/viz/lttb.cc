#include "viz/lttb.h"

#include <cmath>
#include <cstdlib>

namespace tsviz {

std::vector<Point> DownsampleLttb(const std::vector<Point>& points,
                                  size_t n_out) {
  if (n_out >= points.size() || points.size() <= 2 || n_out <= 2) {
    if (n_out >= points.size()) return points;
    if (points.empty()) return {};
    if (n_out <= 1) return {points.front()};
    return {points.front(), points.back()};
  }

  std::vector<Point> out;
  out.reserve(n_out);
  out.push_back(points.front());

  // n_out - 2 interior buckets over points [1, n-1).
  const double bucket_size =
      static_cast<double>(points.size() - 2) / static_cast<double>(n_out - 2);
  size_t a = 0;  // index of the previously selected point
  for (size_t bucket = 0; bucket + 2 < n_out; ++bucket) {
    size_t range_begin =
        1 + static_cast<size_t>(std::floor(bucket_size * bucket));
    size_t range_end = 1 + static_cast<size_t>(
                               std::floor(bucket_size * (bucket + 1)));
    if (range_end <= range_begin) range_end = range_begin + 1;
    if (range_end > points.size() - 1) range_end = points.size() - 1;

    // Centroid of the *next* bucket (or the last point for the final one).
    size_t next_begin = range_end;
    size_t next_end = 1 + static_cast<size_t>(
                              std::floor(bucket_size * (bucket + 2)));
    if (next_end > points.size() - 1) next_end = points.size() - 1;
    if (next_end <= next_begin) next_end = next_begin + 1;
    double avg_t = 0.0;
    double avg_v = 0.0;
    size_t next_count = 0;
    for (size_t i = next_begin; i < next_end && i < points.size();
         ++i, ++next_count) {
      avg_t += static_cast<double>(points[i].t);
      avg_v += points[i].v;
    }
    if (next_count == 0) {
      avg_t = static_cast<double>(points.back().t);
      avg_v = points.back().v;
    } else {
      avg_t /= static_cast<double>(next_count);
      avg_v /= static_cast<double>(next_count);
    }

    // Pick the bucket point maximizing the triangle area with points[a] and
    // the next-bucket centroid.
    const double at = static_cast<double>(points[a].t);
    const double av = points[a].v;
    double best_area = -1.0;
    size_t best = range_begin;
    for (size_t i = range_begin; i < range_end; ++i) {
      double area =
          std::abs((at - avg_t) * (points[i].v - av) -
                   (at - static_cast<double>(points[i].t)) * (avg_v - av));
      if (area > best_area) {
        best_area = area;
        best = i;
      }
    }
    out.push_back(points[best]);
    a = best;
  }

  out.push_back(points.back());
  return out;
}

}  // namespace tsviz
