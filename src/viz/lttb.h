#ifndef TSVIZ_VIZ_LTTB_H_
#define TSVIZ_VIZ_LTTB_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace tsviz {

// Largest-Triangle-Three-Buckets downsampling (Steinarsson, 2013) — the de
// facto standard line-chart reduction outside the M4 line of work, included
// as a strong comparator in the pixel-accuracy experiment. Keeps the first
// and last points and, per bucket, the point forming the largest triangle
// with the previously kept point and the next bucket's centroid.
//
// `points` must be sorted by time; returns min(n_out, points.size()) points
// (all of them when n_out >= size, at least 2 when possible).
std::vector<Point> DownsampleLttb(const std::vector<Point>& points,
                                  size_t n_out);

}  // namespace tsviz

#endif  // TSVIZ_VIZ_LTTB_H_
