#ifndef TSVIZ_VIZ_PIXEL_DIFF_H_
#define TSVIZ_VIZ_PIXEL_DIFF_H_

#include <string>

#include "viz/bitmap.h"

namespace tsviz {

// Comparison of a reduced rendering against the ground-truth rendering of
// the full series: the "pixel error" metric of the M4 line of work.
struct PixelAccuracyReport {
  uint64_t differing_pixels = 0;
  uint64_t total_pixels = 0;
  uint64_t ground_truth_lit = 0;

  double ErrorRatio() const {
    return total_pixels == 0
               ? 0.0
               : static_cast<double>(differing_pixels) /
                     static_cast<double>(total_pixels);
  }

  std::string ToString() const;
};

// Compares `rendered` against `ground_truth` (same dimensions required).
PixelAccuracyReport ComparePixels(const Bitmap& ground_truth,
                                  const Bitmap& rendered);

}  // namespace tsviz

#endif  // TSVIZ_VIZ_PIXEL_DIFF_H_
