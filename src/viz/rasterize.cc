#include "viz/rasterize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tsviz {

namespace {

// Column of a timestamp: floor(width * (t - tqs) / (tqe - tqs)), in exact
// integer arithmetic so it agrees with SpanSet::IndexOf.
int ColumnOf(const CanvasSpec& spec, Timestamp t) {
  using I128 = __int128;
  I128 numerator =
      static_cast<I128>(spec.width) * (static_cast<I128>(t) - spec.tqs);
  return static_cast<int>(numerator /
                          (static_cast<I128>(spec.tqe) - spec.tqs));
}

// Continuous vertical position of a value: vmax maps to 0 (top), vmin to
// `height` (clamped into the last row when discretized).
double HeightOf(const CanvasSpec& spec, Value v) {
  if (spec.vmax <= spec.vmin) return spec.height / 2.0;
  return (spec.vmax - v) / (spec.vmax - spec.vmin) * spec.height;
}

int RowOf(const CanvasSpec& spec, double y) {
  int row = static_cast<int>(std::floor(y));
  return std::clamp(row, 0, spec.height - 1);
}

// Continuous time at which the path crosses from column c-1 into column c.
double BoundaryTime(const CanvasSpec& spec, int c) {
  return static_cast<double>(spec.tqs) +
         static_cast<double>(c) *
             static_cast<double>(spec.tqe - spec.tqs) /
             static_cast<double>(spec.width);
}

void FillColumn(Bitmap* bitmap, const CanvasSpec& spec, int c, double y0,
                double y1) {
  int r0 = RowOf(spec, std::min(y0, y1));
  int r1 = RowOf(spec, std::max(y0, y1));
  for (int r = r0; r <= r1; ++r) {
    bitmap->Set(c, r);
  }
}

void DrawSegment(Bitmap* bitmap, const CanvasSpec& spec, const Point& a,
                 const Point& b) {
  const int ca = ColumnOf(spec, a.t);
  const int cb = ColumnOf(spec, b.t);
  const double ya = HeightOf(spec, a.v);
  const double yb = HeightOf(spec, b.v);
  if (ca == cb) {
    FillColumn(bitmap, spec, ca, ya, yb);
    return;
  }
  const double ta = static_cast<double>(a.t);
  const double tb = static_cast<double>(b.t);
  auto interp = [&](double t) {
    return ya + (yb - ya) * (t - ta) / (tb - ta);
  };
  for (int c = ca; c <= cb; ++c) {
    double t0 = std::max(ta, BoundaryTime(spec, c));
    double t1 = std::min(tb, BoundaryTime(spec, c + 1));
    FillColumn(bitmap, spec, c, interp(t0), interp(t1));
  }
}

}  // namespace

CanvasSpec FitCanvas(const std::vector<Point>& points, const M4Query& query,
                     int width, int height) {
  CanvasSpec spec;
  spec.width = width;
  spec.height = height;
  spec.tqs = query.tqs;
  spec.tqe = query.tqe;
  bool any = false;
  for (const Point& p : points) {
    if (p.t < query.tqs || p.t >= query.tqe) continue;
    if (!any) {
      spec.vmin = spec.vmax = p.v;
      any = true;
    } else {
      spec.vmin = std::min(spec.vmin, p.v);
      spec.vmax = std::max(spec.vmax, p.v);
    }
  }
  return spec;
}

Bitmap RasterizeSeries(const std::vector<Point>& points,
                       const CanvasSpec& spec) {
  TSVIZ_CHECK(spec.width > 0 && spec.height > 0 && spec.tqe > spec.tqs);
  Bitmap bitmap(spec.width, spec.height);
  const Point* prev = nullptr;
  for (const Point& p : points) {
    if (p.t < spec.tqs || p.t >= spec.tqe) continue;
    if (prev == nullptr) {
      FillColumn(&bitmap, spec, ColumnOf(spec, p.t), HeightOf(spec, p.v),
                 HeightOf(spec, p.v));
    } else {
      DrawSegment(&bitmap, spec, *prev, p);
    }
    prev = &p;
  }
  return bitmap;
}

std::vector<Point> M4Polyline(const M4Result& rows) {
  std::vector<Point> points;
  points.reserve(rows.size() * 4);
  for (const M4Row& row : rows) {
    if (!row.has_data) continue;
    points.push_back(row.first);
    points.push_back(row.bottom);
    points.push_back(row.top);
    points.push_back(row.last);
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.t < b.t; });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const Point& a, const Point& b) {
                             return a.t == b.t;
                           }),
               points.end());
  return points;
}

Bitmap RasterizeM4(const M4Result& rows, const CanvasSpec& spec) {
  return RasterizeSeries(M4Polyline(rows), spec);
}

M4Result MinMaxRepresentation(const std::vector<Point>& merged,
                              const M4Query& query) {
  SpanSet spans(query);
  M4Result rows(static_cast<size_t>(spans.num_spans()));
  for (const Point& p : merged) {
    if (!spans.InQueryRange(p.t)) continue;
    M4Row& row = rows[static_cast<size_t>(spans.IndexOf(p.t))];
    if (!row.has_data) {
      row.has_data = true;
      row.first = row.last = row.bottom = row.top = p;
      continue;
    }
    if (p.v < row.bottom.v) row.bottom = p;
    if (p.v > row.top.v) row.top = p;
  }
  // MinMax keeps only the extremes: present them as first/last by time so
  // the polyline builder connects them faithfully.
  for (M4Row& row : rows) {
    if (!row.has_data) continue;
    const Point& earlier =
        row.bottom.t <= row.top.t ? row.bottom : row.top;
    const Point& later = row.bottom.t <= row.top.t ? row.top : row.bottom;
    row.first = earlier;
    row.last = later;
  }
  return rows;
}

M4Result SampledRepresentation(const std::vector<Point>& merged,
                               const M4Query& query, size_t stride) {
  TSVIZ_CHECK(stride > 0);
  std::vector<Point> sampled;
  sampled.reserve(merged.size() / stride + 1);
  for (size_t i = 0; i < merged.size(); i += stride) {
    sampled.push_back(merged[i]);
  }
  SpanSet spans(query);
  M4Result rows(static_cast<size_t>(spans.num_spans()));
  for (const Point& p : sampled) {
    if (!spans.InQueryRange(p.t)) continue;
    M4Row& row = rows[static_cast<size_t>(spans.IndexOf(p.t))];
    if (!row.has_data) {
      row.has_data = true;
      row.first = row.last = row.bottom = row.top = p;
      continue;
    }
    if (p.t < row.first.t) row.first = p;
    if (p.t > row.last.t) row.last = p;
    if (p.v < row.bottom.v) row.bottom = p;
    if (p.v > row.top.v) row.top = p;
  }
  return rows;
}

}  // namespace tsviz
