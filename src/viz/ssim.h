#ifndef TSVIZ_VIZ_SSIM_H_
#define TSVIZ_VIZ_SSIM_H_

#include <string>

#include "common/status.h"
#include "viz/bitmap.h"

namespace tsviz {

// Structural similarity (SSIM, Wang et al. 2004) between two binary
// renderings, computed over 8x8 windows with the standard stabilizing
// constants — the perceptual metric the original M4 evaluation (VLDB'14)
// reports alongside raw pixel error. 1.0 means structurally identical.
double Ssim(const Bitmap& a, const Bitmap& b);

// Color diff overlay for visual debugging: pixels lit in both renderings
// are black, pixels only in `ground_truth` (missed) are red, pixels only in
// `rendered` (spurious) are blue. Written as a binary PPM (P6).
Status WriteDiffPpm(const Bitmap& ground_truth, const Bitmap& rendered,
                    const std::string& path);

}  // namespace tsviz

#endif  // TSVIZ_VIZ_SSIM_H_
