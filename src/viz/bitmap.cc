#include "viz/bitmap.h"

#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace tsviz {

Bitmap::Bitmap(int width, int height) : width_(width), height_(height) {
  TSVIZ_CHECK(width > 0 && height > 0);
  bits_.assign((static_cast<size_t>(width) * height + 63) / 64, 0);
}

void Bitmap::Set(int x, int y) {
  if (!InBounds(x, y)) return;
  size_t idx = static_cast<size_t>(y) * width_ + x;
  bits_[idx / 64] |= uint64_t{1} << (idx % 64);
}

bool Bitmap::Get(int x, int y) const {
  if (!InBounds(x, y)) return false;
  size_t idx = static_cast<size_t>(y) * width_ + x;
  return (bits_[idx / 64] >> (idx % 64)) & 1;
}

uint64_t Bitmap::CountSet() const {
  uint64_t total = 0;
  for (uint64_t word : bits_) total += std::popcount(word);
  return total;
}

std::string Bitmap::ToPgm() const {
  std::string out = "P5\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + static_cast<size_t>(width_) * height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.push_back(Get(x, y) ? '\0' : static_cast<char>(0xff));
    }
  }
  return out;
}

Status Bitmap::WritePgm(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + path);
  std::string pgm = ToPgm();
  size_t written = std::fwrite(pgm.data(), 1, pgm.size(), file);
  int rc = std::fclose(file);
  if (written != pgm.size() || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

std::string Bitmap::ToAscii(int max_cols) const {
  int step = width_ <= max_cols ? 1 : (width_ + max_cols - 1) / max_cols;
  std::string out;
  for (int y = 0; y < height_; y += step) {
    for (int x = 0; x < width_; x += step) {
      // A cell is lit if any pixel in its block is lit.
      bool lit = false;
      for (int dy = 0; dy < step && !lit; ++dy) {
        for (int dx = 0; dx < step && !lit; ++dx) {
          lit = Get(x + dx, y + dy);
        }
      }
      out.push_back(lit ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

uint64_t PixelDiff(const Bitmap& a, const Bitmap& b) {
  TSVIZ_CHECK(a.width() == b.width() && a.height() == b.height());
  uint64_t diff = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (a.Get(x, y) != b.Get(x, y)) ++diff;
    }
  }
  return diff;
}

}  // namespace tsviz
