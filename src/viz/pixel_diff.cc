#include "viz/pixel_diff.h"

#include <sstream>

namespace tsviz {

std::string PixelAccuracyReport::ToString() const {
  std::ostringstream os;
  os << differing_pixels << "/" << total_pixels << " pixels differ ("
     << ErrorRatio() * 100.0 << "%), ground truth lit " << ground_truth_lit;
  return os.str();
}

PixelAccuracyReport ComparePixels(const Bitmap& ground_truth,
                                  const Bitmap& rendered) {
  PixelAccuracyReport report;
  report.total_pixels = static_cast<uint64_t>(ground_truth.width()) *
                        static_cast<uint64_t>(ground_truth.height());
  report.differing_pixels = PixelDiff(ground_truth, rendered);
  report.ground_truth_lit = ground_truth.CountSet();
  return report;
}

}  // namespace tsviz
