#ifndef TSVIZ_VIZ_BITMAP_H_
#define TSVIZ_VIZ_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsviz {

// Two-color pixel matrix for binary line-chart rendering (Section 1: M4 is
// error-free specifically for two-color line charts). Origin is the top-left
// corner; x grows right (time), y grows down.
class Bitmap {
 public:
  Bitmap(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void Set(int x, int y);
  bool Get(int x, int y) const;

  // Number of lit pixels.
  uint64_t CountSet() const;

  // Binary PGM (P5) serialization, for viewing the chart with any image
  // tool; lit pixels are black on white.
  std::string ToPgm() const;

  // Writes the PGM to a file.
  Status WritePgm(const std::string& path) const;

  // Rough terminal rendering: '#' for lit, '.' for unlit, downsampled to at
  // most max_cols columns.
  std::string ToAscii(int max_cols = 100) const;

  friend bool operator==(const Bitmap&, const Bitmap&) = default;

 private:
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  int width_;
  int height_;
  std::vector<uint64_t> bits_;
};

// Number of pixels where the two bitmaps differ; the paper's "pixel error"
// is diff / total.
uint64_t PixelDiff(const Bitmap& a, const Bitmap& b);

}  // namespace tsviz

#endif  // TSVIZ_VIZ_BITMAP_H_
