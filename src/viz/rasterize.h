#ifndef TSVIZ_VIZ_RASTERIZE_H_
#define TSVIZ_VIZ_RASTERIZE_H_

#include <vector>

#include "common/types.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "viz/bitmap.h"

namespace tsviz {

// Rendering target: `width` pixel columns over the half-open time domain
// [tqs, tqe) — the column of a timestamp is exactly the span index of an M4
// query with w == width — and `height` pixel rows over the closed value
// domain [vmin, vmax].
struct CanvasSpec {
  int width = 0;
  int height = 0;
  Timestamp tqs = 0;
  Timestamp tqe = 0;
  Value vmin = 0.0;
  Value vmax = 0.0;
};

// Canvas spanning `query`'s time range with the value domain fitted to the
// given points (vmin == vmax degenerates to a single-row band).
CanvasSpec FitCanvas(const std::vector<Point>& points, const M4Query& query,
                     int width, int height);

// Draws the polyline through `points` (sorted by time) with the column-exact
// line model of the M4 paper: for every pixel column a segment crosses, the
// vertical run between the segment's entry and exit heights is lit. Under
// this model a connected path lights exactly the rows between its per-column
// min and max heights, which is what makes the M4 subset pixel-exact.
Bitmap RasterizeSeries(const std::vector<Point>& points,
                       const CanvasSpec& spec);

// Flattens an M4 result into the deduplicated, time-ordered polyline of the
// (up to) 4 representation points per span.
std::vector<Point> M4Polyline(const M4Result& rows);

// Convenience: rasterize an M4 result.
Bitmap RasterizeM4(const M4Result& rows, const CanvasSpec& spec);

// Lossy baseline representations used by the pixel-accuracy experiment to
// show that M4's zero pixel error is not shared by other reductions
// (Section 5.1's MinMax remark).

// MinMax: per span keep only the bottom and top points.
M4Result MinMaxRepresentation(const std::vector<Point>& merged,
                              const M4Query& query);

// Systematic sampling: keep every k-th point, presented as per-span rows.
M4Result SampledRepresentation(const std::vector<Point>& merged,
                               const M4Query& query, size_t stride);

}  // namespace tsviz

#endif  // TSVIZ_VIZ_RASTERIZE_H_
