#ifndef TSVIZ_M4_M4_LSM_H_
#define TSVIZ_M4_M4_LSM_H_

#include "common/stats.h"
#include "common/status.h"
#include "index/chunk_searcher.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

struct M4LsmOptions {
  // How partial scans locate the page for a lookup timestamp (Section 3.5).
  LocateStrategy locate_strategy = LocateStrategy::kStepRegression;
};

// The chunk-merge-free operator (Section 3). For every time span it clips
// chunks with two virtual deletes of infinite version (Section 3.1), then
// iterates candidate generation from chunk metadata (Section 3.2) and
// candidate verification:
//
//  - FP/LP (Section 3.3, Prop. 3.1): a candidate only needs checking against
//    later deletes; on failure the chunk's time interval is tightened by the
//    delete boundary instead of loading the chunk, and the chunk is read —
//    with single-page index probes — only if its bound still wins.
//  - BP/TP (Section 3.4, Prop. 3.3): a candidate additionally needs an
//    overwrite check against later overlapping chunks, answered by a partial
//    scan of exactly one page via the chunk index (Table 1 case a). Failed
//    candidates fall back to the remaining extreme points, and only when all
//    metadata candidates die does the operator load the affected chunks and
//    recompute their statistics under deletes and updates (case c).
//
// No MergeReader is involved anywhere: chunks that are neither split by span
// boundaries nor touched by deletes/updates are served purely from metadata.
// Operates on a snapshot: pass a StoreView (a TsStore converts
// implicitly), and concurrent flush/compaction cannot affect the result.
Result<M4Result> RunM4Lsm(StoreView view, const M4Query& query,
                          QueryStats* stats, const M4LsmOptions& options = {});

// Computes only the rows for span indexes [span_begin, span_end) — the
// building block of the parallel driver (m4/parallel.h). Returns
// span_end - span_begin rows; metadata outside the window is never touched.
Result<M4Result> RunM4LsmSpans(StoreView view, const M4Query& query,
                               int64_t span_begin, int64_t span_end,
                               QueryStats* stats,
                               const M4LsmOptions& options = {});

}  // namespace tsviz

#endif  // TSVIZ_M4_M4_LSM_H_
