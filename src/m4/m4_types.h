#ifndef TSVIZ_M4_M4_TYPES_H_
#define TSVIZ_M4_M4_TYPES_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace tsviz {

// The four representation points of one time span (pixel column). Empty
// spans (no live data point in the span) have has_data == false.
struct M4Row {
  bool has_data = false;
  Point first;   // FP(T_i)
  Point last;    // LP(T_i)
  Point bottom;  // BP(T_i): some point with the minimal value
  Point top;     // TP(T_i): some point with the maximal value

  std::string ToString() const;
};

// One row per span, in span order: the output of Definition 2.9.
using M4Result = std::vector<M4Row>;

// Whether two rows agree as M4 representations. FP/LP must match exactly;
// BP/TP are compared on value only, since Definition 2.1 allows returning
// any point attaining the extreme value (their pixels depend only on the
// value, Section 2.1).
bool RowsEquivalent(const M4Row& a, const M4Row& b);

// All-rows form of RowsEquivalent; size mismatch is inequivalent.
bool ResultsEquivalent(const M4Result& a, const M4Result& b);

// Human-readable diff of the first mismatching row, for test failures.
std::string FirstMismatch(const M4Result& a, const M4Result& b);

// Checks internal invariants of a result: within each non-empty row,
// first.t <= last.t, bottom.t and top.t lie in [first.t, last.t], and
// bottom.v <= {first,last,top}.v <= top.v. Returns an empty string when
// valid, else a description of the first violation.
std::string ValidateResultInvariants(const M4Result& result);

}  // namespace tsviz

#endif  // TSVIZ_M4_M4_TYPES_H_
