#include "m4/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace tsviz {

Result<M4Result> RunM4LsmParallel(const TsStore& store, const M4Query& query,
                                  int num_threads, QueryStats* stats,
                                  const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  const int64_t w = query.w;
  const int64_t blocks = std::min<int64_t>(num_threads, w);
  if (blocks == 1) {
    return RunM4Lsm(store, query, stats, options);
  }

  struct BlockResult {
    Status status;
    M4Result rows;
    QueryStats stats;
  };
  std::vector<BlockResult> results(static_cast<size_t>(blocks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(blocks));
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = w * b / blocks;
    const int64_t end = w * (b + 1) / blocks;
    threads.emplace_back([&store, &query, &options, begin, end,
                          out = &results[static_cast<size_t>(b)]]() {
      Result<M4Result> rows =
          RunM4LsmSpans(store, query, begin, end, &out->stats, options);
      if (rows.ok()) {
        out->rows = std::move(rows).value();
      } else {
        out->status = rows.status();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  M4Result merged;
  merged.reserve(static_cast<size_t>(w));
  for (BlockResult& block : results) {
    TSVIZ_RETURN_IF_ERROR(block.status);
    merged.insert(merged.end(), block.rows.begin(), block.rows.end());
    if (stats != nullptr) *stats += block.stats;
  }
  return merged;
}

}  // namespace tsviz
