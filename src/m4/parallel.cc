#include "m4/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz {

ThreadPool& ExecutorPool() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultExecutorThreads());
    obs::MetricsRegistry::Instance().RegisterCallback(
        "executor_pool_queue_depth",
        "Tasks queued on the executor pool and not yet running",
        [p] { return static_cast<double>(p->queue_depth()); });
    return p;
  }();
  return *pool;
}

std::vector<int64_t> PartitionAlignedSpanCuts(const StoreView& view,
                                              const M4Query& query,
                                              int64_t blocks) {
  const int64_t w = query.w;
  std::vector<int64_t> cuts(static_cast<size_t>(blocks) + 1);
  for (int64_t b = 0; b <= blocks; ++b) {
    cuts[static_cast<size_t>(b)] = w * b / blocks;
  }
  // Candidate cut positions: the span containing each indexed partition's
  // start, for boundaries strictly inside the query range. The legacy
  // group has no boundaries to respect.
  SpanSet spans(query);
  std::vector<int64_t> candidates;
  for (const StorePartition& part : view.partitions()) {
    if (part.legacy() || part.interval.Empty()) continue;
    const Timestamp boundary = part.interval.start;
    if (boundary <= query.tqs || boundary >= query.tqe) continue;
    candidates.push_back(spans.IndexOf(boundary));
  }
  if (candidates.empty()) return cuts;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Snap each interior cut to the nearest candidate within half a block
  // width — close enough that block sizes stay balanced — then restore
  // monotonicity. Duplicated cuts yield empty blocks, which are skipped at
  // submit time.
  const int64_t tolerance = std::max<int64_t>(1, w / blocks / 2);
  for (int64_t b = 1; b < blocks; ++b) {
    int64_t& cut = cuts[static_cast<size_t>(b)];
    auto it = std::lower_bound(candidates.begin(), candidates.end(), cut);
    int64_t best = cut;
    int64_t best_dist = tolerance + 1;
    if (it != candidates.end() && *it - cut < best_dist) {
      best_dist = *it - cut;
      best = *it;
    }
    if (it != candidates.begin() && cut - *(it - 1) < best_dist) {
      best = *(it - 1);
    }
    cut = best;
  }
  for (int64_t b = 1; b <= blocks; ++b) {
    cuts[static_cast<size_t>(b)] =
        std::clamp(cuts[static_cast<size_t>(b)],
                   cuts[static_cast<size_t>(b - 1)], w);
  }
  cuts[static_cast<size_t>(blocks)] = w;
  return cuts;
}

Result<M4Result> RunM4LsmParallel(StoreView view, const M4Query& query,
                                  int num_threads, QueryStats* stats,
                                  const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  const int64_t w = query.w;
  const int64_t blocks = std::min<int64_t>(num_threads, w);
  if (blocks == 1) {
    return RunM4Lsm(view, query, stats, options);
  }

  static obs::Counter& tasks_total =
      obs::GetCounter("executor_pool_tasks_total",
                      "Span blocks submitted to the executor pool");

  struct BlockResult {
    Status status;
    M4Result rows;
    QueryStats stats;
  };
  const std::vector<int64_t> cuts =
      PartitionAlignedSpanCuts(view, query, blocks);
  std::vector<BlockResult> results(static_cast<size_t>(blocks));
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  for (int64_t b = 0; b < blocks; ++b) {
    if (cuts[static_cast<size_t>(b)] < cuts[static_cast<size_t>(b + 1)]) {
      ++remaining;
    }
  }
  if (remaining == 0) {
    return RunM4Lsm(view, query, stats, options);
  }

  // When the caller is tracing, each block gets a private Trace (a Trace is
  // single-threaded, so workers cannot share the parent's); their trees are
  // merged into the parent after the join, restoring the solve_*/
  // index_probe detail that used to vanish behind pool_wait.
  const bool tracing = stats != nullptr && stats->trace != nullptr;

  ThreadPool& pool = ExecutorPool();
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = cuts[static_cast<size_t>(b)];
    const int64_t end = cuts[static_cast<size_t>(b + 1)];
    if (begin >= end) continue;  // cut snapped onto its neighbour
    tasks_total.Inc();
    if (tracing) {
      results[static_cast<size_t>(b)].stats.trace =
          std::make_shared<obs::Trace>("block");
    }
    pool.Submit([view, &query, &options, begin, end, &done_mutex, &done_cv,
                 &remaining, out = &results[static_cast<size_t>(b)]]() {
      Result<M4Result> rows =
          RunM4LsmSpans(view, query, begin, end, &out->stats, options);
      if (rows.ok()) {
        out->rows = std::move(rows).value();
      } else {
        out->status = rows.status();
      }
      // Notify while holding the mutex: the caller may destroy done_cv the
      // moment it observes remaining == 0, so the signal must complete
      // before this worker releases the lock.
      std::lock_guard<std::mutex> lock(done_mutex);
      --remaining;
      done_cv.notify_one();
    });
  }
  {
    obs::TraceSpan span(stats != nullptr ? stats->trace.get() : nullptr,
                        "pool_wait");
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  M4Result merged;
  merged.reserve(static_cast<size_t>(w));
  for (BlockResult& block : results) {
    TSVIZ_RETURN_IF_ERROR(block.status);
    merged.insert(merged.end(), block.rows.begin(), block.rows.end());
    if (stats != nullptr) *stats += block.stats;  // += ignores traces
    if (tracing && block.stats.trace != nullptr) {
      stats->trace->MergeChildrenFrom(block.stats.trace->root());
    }
  }
  return merged;
}

}  // namespace tsviz
