#include "m4/aggregate.h"

#include "read/data_reader.h"
#include "read/merge_reader.h"
#include "read/metadata_reader.h"

namespace tsviz {

namespace {

Result<std::vector<AggregateRow>> RunScanAggregate(const StoreView& view,
                                                   const M4Query& query,
                                                   Aggregation aggregation,
                                                   QueryStats* stats) {
  SpanSet spans(query);
  TimeRange range(query.tqs, query.tqe - 1);
  std::vector<ChunkHandle> handles =
      SelectOverlappingChunks(view, range, stats);
  DataReader data_reader(stats);
  std::vector<LazyChunk*> chunks;
  chunks.reserve(handles.size());
  for (const ChunkHandle& handle : handles) {
    chunks.push_back(data_reader.GetChunk(handle));
  }
  MergeReader merger(std::move(chunks),
                     SelectOverlappingDeletes(view, range), range);
  merger.PreloadFullChunks();  // the scan drains every overlapping chunk

  struct Accumulator {
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<Accumulator> accumulators(
      static_cast<size_t>(spans.num_spans()));
  Point p;
  while (true) {
    TSVIZ_ASSIGN_OR_RETURN(bool more, merger.Next(&p));
    if (!more) break;
    if (stats != nullptr) ++stats->points_scanned;
    Accumulator& acc =
        accumulators[static_cast<size_t>(spans.IndexOf(p.t))];
    ++acc.count;
    acc.sum += p.v;
  }

  std::vector<AggregateRow> rows(accumulators.size());
  for (size_t i = 0; i < accumulators.size(); ++i) {
    const Accumulator& acc = accumulators[i];
    if (acc.count == 0) continue;
    rows[i].has_data = true;
    switch (aggregation) {
      case Aggregation::kCount:
        rows[i].value = static_cast<double>(acc.count);
        break;
      case Aggregation::kSum:
        rows[i].value = acc.sum;
        break;
      case Aggregation::kAvg:
        rows[i].value = acc.sum / static_cast<double>(acc.count);
        break;
      default:
        return Status::Internal("scan aggregate called for merge-free agg");
    }
  }
  return rows;
}

}  // namespace

bool IsMergeFree(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kFirstValue:
    case Aggregation::kLastValue:
    case Aggregation::kMin:
    case Aggregation::kMax:
      return true;
    case Aggregation::kCount:
    case Aggregation::kSum:
    case Aggregation::kAvg:
      return false;
  }
  return false;
}

Result<std::vector<AggregateRow>> RunGroupBy(const StoreView& view,
                                             const M4Query& query,
                                             Aggregation aggregation,
                                             QueryStats* stats,
                                             const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  if (!IsMergeFree(aggregation)) {
    return RunScanAggregate(view, query, aggregation, stats);
  }
  TSVIZ_ASSIGN_OR_RETURN(M4Result m4, RunM4Lsm(view, query, stats, options));
  std::vector<AggregateRow> rows(m4.size());
  for (size_t i = 0; i < m4.size(); ++i) {
    if (!m4[i].has_data) continue;
    rows[i].has_data = true;
    switch (aggregation) {
      case Aggregation::kFirstValue:
        rows[i].value = m4[i].first.v;
        break;
      case Aggregation::kLastValue:
        rows[i].value = m4[i].last.v;
        break;
      case Aggregation::kMin:
        rows[i].value = m4[i].bottom.v;
        break;
      case Aggregation::kMax:
        rows[i].value = m4[i].top.v;
        break;
      default:
        return Status::Internal("unexpected aggregation");
    }
  }
  return rows;
}

}  // namespace tsviz
