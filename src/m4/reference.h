#ifndef TSVIZ_M4_REFERENCE_H_
#define TSVIZ_M4_REFERENCE_H_

#include <vector>

#include "common/types.h"
#include "m4/m4_types.h"
#include "m4/span.h"

namespace tsviz {

// Oracle evaluator for tests: applies Definition 2.3 literally to an
// already-merged, time-ordered series. Both executors must be equivalent to
// this on every input.
M4Result ReferenceM4(const std::vector<Point>& merged_series,
                     const M4Query& query);

// Oracle merge: applies Definition 2.7 literally with per-timestamp maps.
// Quadratic-ish and memory-hungry; for tests only.
std::vector<Point> ReferenceMerge(
    const std::vector<std::pair<Version, std::vector<Point>>>& chunks,
    const std::vector<std::pair<Version, TimeRange>>& deletes);

}  // namespace tsviz

#endif  // TSVIZ_M4_REFERENCE_H_
