#include "m4/m4_udf.h"

#include "obs/trace.h"
#include "read/data_reader.h"
#include "read/merge_reader.h"
#include "read/metadata_reader.h"

namespace tsviz {

Result<M4Result> RunM4Udf(const StoreView& view, const M4Query& query,
                          QueryStats* stats) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  obs::Trace* trace = stats != nullptr ? stats->trace.get() : nullptr;
  obs::TraceSpan span_udf(trace, "m4_udf");
  SpanSet spans(query);
  // The query range [tqs, tqe) as a closed range for chunk selection.
  TimeRange range(query.tqs, query.tqe - 1);

  std::vector<ChunkHandle> handles;
  std::vector<DeleteRecord> deletes;
  {
    obs::TraceSpan span_meta(trace, "metadata_read");
    handles = SelectOverlappingChunks(view, range, stats);
    deletes = SelectOverlappingDeletes(view, range);
  }
  DataReader data_reader(stats);
  std::vector<LazyChunk*> chunks;
  chunks.reserve(handles.size());
  for (const ChunkHandle& handle : handles) {
    chunks.push_back(data_reader.GetChunk(handle));
  }

  obs::TraceSpan span_scan(trace, "merge_scan");
  MergeReader merger(std::move(chunks), std::move(deletes), range);
  merger.PreloadFullChunks();  // the scan drains every overlapping chunk
  M4Result result(static_cast<size_t>(spans.num_spans()));
  Point p;
  while (true) {
    TSVIZ_ASSIGN_OR_RETURN(bool more, merger.Next(&p));
    if (!more) break;
    if (stats != nullptr) ++stats->points_scanned;
    M4Row& row = result[static_cast<size_t>(spans.IndexOf(p.t))];
    if (!row.has_data) {
      row.has_data = true;
      row.first = row.last = row.bottom = row.top = p;
      continue;
    }
    // Points arrive in increasing time order, so `p` is always the new last.
    row.last = p;
    if (p.v < row.bottom.v) row.bottom = p;
    if (p.v > row.top.v) row.top = p;
  }
  return result;
}

}  // namespace tsviz
