#include "m4/cache.h"

#include <algorithm>

#include "m4/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz {

namespace {

obs::Counter& CacheHits() {
  static obs::Counter& c = obs::GetCounter(
      "m4_result_cache_hits_total", "M4 result cache hits");
  return c;
}

obs::Counter& CacheMisses() {
  static obs::Counter& c = obs::GetCounter(
      "m4_result_cache_misses_total", "M4 result cache misses");
  return c;
}

}  // namespace

size_t M4QueryCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(key.store));
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(key.state_version);
  mix(static_cast<uint64_t>(key.tqs));
  mix(static_cast<uint64_t>(key.tqe));
  mix(static_cast<uint64_t>(key.w));
  mix(static_cast<uint64_t>(key.strategy));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return static_cast<size_t>(h);
}

Result<M4Result> M4QueryCache::GetOrCompute(StoreView view,
                                            const M4Query& query,
                                            QueryStats* stats,
                                            const M4LsmOptions& options,
                                            int parallelism) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  Key key{view.owner(), view.state_version(), query.tqs,
          query.tqe,    query.w,              options.locate_strategy};
  {
    obs::TraceSpan probe(stats != nullptr ? stats->trace.get() : nullptr,
                         "cache_probe");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheHits().Inc();
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      if (stats != nullptr && it->second->degraded) stats->degraded = true;
      return it->second->result;
    }
  }

  // Compute outside the lock; concurrent misses on the same key may race,
  // which only costs a duplicate computation, never a wrong result. The
  // computation charges a local QueryStats so this entry's own degraded
  // flag is known even when the caller's stats already carry one.
  QueryStats local;
  if (stats != nullptr) local.trace = stats->trace;
  TSVIZ_ASSIGN_OR_RETURN(
      M4Result result,
      RunM4LsmParallel(std::move(view), query, std::max(1, parallelism),
                       &local, options));
  local.trace.reset();
  if (stats != nullptr) *stats += local;
  std::lock_guard<std::mutex> lock(mutex_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMisses().Inc();
  auto it = index_.find(key);
  if (it == index_.end() && capacity_ > 0) {
    lru_.emplace_front(Entry{key, result, local.degraded});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }
  return result;
}

size_t M4QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void M4QueryCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t M4QueryCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void M4QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace tsviz
