#include "m4/cache.h"

#include "obs/metrics.h"

namespace tsviz {

namespace {

obs::Counter& CacheHits() {
  static obs::Counter& c = obs::GetCounter(
      "m4_cache_hits_total", "M4 query cache hits");
  return c;
}

obs::Counter& CacheMisses() {
  static obs::Counter& c = obs::GetCounter(
      "m4_cache_misses_total", "M4 query cache misses");
  return c;
}

}  // namespace

Result<M4Result> M4QueryCache::GetOrCompute(const TsStore& store,
                                            const M4Query& query,
                                            QueryStats* stats,
                                            const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  Key key{&store,    store.state_version(), query.tqs,
          query.tqe, query.w,               options.locate_strategy};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      CacheHits().Inc();
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      return it->second->second;
    }
  }

  // Compute outside the lock; concurrent misses on the same key may race,
  // which only costs a duplicate computation, never a wrong result.
  TSVIZ_ASSIGN_OR_RETURN(M4Result result, RunM4Lsm(store, query, stats,
                                                   options));
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  CacheMisses().Inc();
  auto it = index_.find(key);
  if (it == index_.end() && capacity_ > 0) {
    lru_.emplace_front(key, result);
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return result;
}

size_t M4QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void M4QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace tsviz
