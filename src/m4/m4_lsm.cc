#include "m4/m4_lsm.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "index/binary_search_index.h"
#include "obs/trace.h"
#include "read/data_reader.h"
#include "read/lazy_chunk.h"
#include "read/metadata_reader.h"

namespace tsviz {

namespace {

// Safety valve on the generate/verify iteration (Algorithm 1's while-loop):
// hitting it indicates a logic bug, not a pathological input, and turns an
// infinite loop into a diagnosable error.
constexpr uint64_t kMaxRounds = 1u << 22;

// Query-lifetime state for one chunk: the lazily loaded pages and the index
// searcher are shared across every span the chunk intersects.
struct ChunkState {
  ChunkHandle handle;
  LazyChunk* lazy = nullptr;  // owned by the DataReader
  std::unique_ptr<ChunkSearcher> searcher;

  Version version() const { return handle.meta->version; }
};

// FP/LP candidate from one chunk: either a concrete point from metadata or
// loaded data (tight), or a lower/upper bound on the chunk's first/last live
// time produced by the lazy delete-boundary update of Section 3.3.
struct TimeEntry {
  Point p;
  bool tight = true;
};

// Per-span state of one chunk (the element of C'' in Section 3.1).
struct SpanView {
  ChunkState* chunk = nullptr;
  TimeRange interval;  // current, possibly tightened, time interval
  std::optional<TimeEntry> first;
  std::optional<TimeEntry> last;
  std::optional<Point> bottom;
  std::optional<Point> top;

  bool exact = false;            // live points materialized for this span
  std::vector<Point> live;       // live-under-deletes points inside the span
  std::vector<uint32_t> by_value;  // indices into live, sorted by value asc
  size_t bottom_cursor = 0;      // consumed prefix of by_value (BP pops)
  size_t top_cursor = 0;         // consumed suffix of by_value (TP pops)

  Version version() const { return chunk->version(); }
};

class M4LsmExecutor {
 public:
  M4LsmExecutor(StoreView view, const M4Query& query,
                int64_t span_begin, int64_t span_end, QueryStats* stats,
                const M4LsmOptions& options)
      : view_(std::move(view)),
        query_(query),
        spans_(query),
        span_begin_(span_begin),
        span_end_(span_end),
        stats_(stats),
        options_(options),
        data_reader_(stats) {}

  Result<M4Result> Run();

 private:
  Result<M4Row> ComputeRow(const TimeRange& span,
                           std::vector<SpanView>& views);

  // --- FP/LP (Section 3.3) -------------------------------------------------

  Result<std::optional<Point>> SolveFirst(std::vector<SpanView>& views,
                                          const TimeRange& span);
  Result<std::optional<Point>> SolveLast(std::vector<SpanView>& views,
                                         const TimeRange& span);

  // Replaces a non-tight first/last bound with the chunk's exact first/last
  // live point in the span using single-page index probes (Table 1 case b).
  Status ResolveFirst(SpanView& view, const TimeRange& span);
  Status ResolveLast(SpanView& view, const TimeRange& span);

  // --- BP/TP (Section 3.4) -------------------------------------------------

  Result<std::optional<Point>> SolveExtreme(std::vector<SpanView>& views,
                                            const TimeRange& span,
                                            bool bottom);

  // Loads the view's pages overlapping the span and recomputes its live
  // point set and statistics under deletes (Table 1 case c).
  Status LoadExact(SpanView& view, const TimeRange& span);

  // --- delete handling -----------------------------------------------------

  // Whether a point at `t` written at `version` is removed by a later delete
  // — real or virtual (the span-clipping deletes of Section 3.1).
  bool IsCovered(Timestamp t, Version version, const TimeRange& span) const;

  // Smallest uncovered timestamp >= t (respecting deletes later than
  // `version`), or nullopt when every time through span.end is covered.
  std::optional<Timestamp> NextUncovered(Timestamp t, Version version,
                                         const TimeRange& span) const;
  // Mirror image: largest uncovered timestamp <= t.
  std::optional<Timestamp> PrevUncovered(Timestamp t, Version version,
                                         const TimeRange& span) const;

  Status BumpRound();

  obs::Trace* trace() const {
    return stats_ != nullptr ? stats_->trace.get() : nullptr;
  }

  StoreView view_;
  const M4Query& query_;
  SpanSet spans_;
  int64_t span_begin_;
  int64_t span_end_;
  QueryStats* stats_;
  M4LsmOptions options_;
  DataReader data_reader_;
  std::vector<DeleteRecord> deletes_;       // real deletes in the query range
  std::vector<DeleteRecord> span_deletes_;  // subset overlapping current span
  uint64_t rounds_ = 0;
};

Status M4LsmExecutor::BumpRound() {
  if (stats_ != nullptr) ++stats_->candidate_rounds;
  if (++rounds_ > kMaxRounds) {
    return Status::Internal("candidate iteration failed to converge");
  }
  return Status::OK();
}

bool M4LsmExecutor::IsCovered(Timestamp t, Version version,
                              const TimeRange& span) const {
  if (t < span.start || t > span.end) return true;  // virtual deletes
  for (const DeleteRecord& del : span_deletes_) {
    if (del.version > version && del.range.Contains(t)) return true;
  }
  return false;
}

std::optional<Timestamp> M4LsmExecutor::NextUncovered(
    Timestamp t, Version version, const TimeRange& span) const {
  if (t < span.start) t = span.start;
  bool changed = true;
  while (changed) {
    if (t > span.end) return std::nullopt;
    changed = false;
    for (const DeleteRecord& del : span_deletes_) {
      if (del.version > version && del.range.Contains(t)) {
        if (del.range.end >= span.end) return std::nullopt;
        t = del.range.end + 1;
        changed = true;
      }
    }
  }
  return t;
}

std::optional<Timestamp> M4LsmExecutor::PrevUncovered(
    Timestamp t, Version version, const TimeRange& span) const {
  if (t > span.end) t = span.end;
  bool changed = true;
  while (changed) {
    if (t < span.start) return std::nullopt;
    changed = false;
    for (const DeleteRecord& del : span_deletes_) {
      if (del.version > version && del.range.Contains(t)) {
        if (del.range.start <= span.start) return std::nullopt;
        t = del.range.start - 1;
        changed = true;
      }
    }
  }
  return t;
}

Status M4LsmExecutor::ResolveFirst(SpanView& view, const TimeRange& span) {
  Timestamp from = view.first.has_value() ? view.first->p.t : span.start;
  while (true) {
    std::optional<Timestamp> next = NextUncovered(from, view.version(), span);
    if (!next.has_value()) {
      view.first.reset();
      return Status::OK();
    }
    TSVIZ_ASSIGN_OR_RETURN(std::optional<PointPos> hit,
                           view.chunk->searcher->FirstAtOrAfter(*next));
    if (!hit.has_value() || hit->point.t > span.end) {
      view.first.reset();
      return Status::OK();
    }
    if (!IsCovered(hit->point.t, view.version(), span)) {
      view.first = TimeEntry{hit->point, /*tight=*/true};
      view.interval.start = std::max(view.interval.start, hit->point.t);
      return Status::OK();
    }
    from = hit->point.t;  // covered; NextUncovered will jump past the delete
  }
}

Status M4LsmExecutor::ResolveLast(SpanView& view, const TimeRange& span) {
  Timestamp from = view.last.has_value() ? view.last->p.t : span.end;
  while (true) {
    std::optional<Timestamp> prev = PrevUncovered(from, view.version(), span);
    if (!prev.has_value()) {
      view.last.reset();
      return Status::OK();
    }
    TSVIZ_ASSIGN_OR_RETURN(std::optional<PointPos> hit,
                           view.chunk->searcher->LastAtOrBefore(*prev));
    if (!hit.has_value() || hit->point.t < span.start) {
      view.last.reset();
      return Status::OK();
    }
    if (!IsCovered(hit->point.t, view.version(), span)) {
      view.last = TimeEntry{hit->point, /*tight=*/true};
      view.interval.end = std::min(view.interval.end, hit->point.t);
      return Status::OK();
    }
    from = hit->point.t;
  }
}

Result<std::optional<Point>> M4LsmExecutor::SolveFirst(
    std::vector<SpanView>& views, const TimeRange& span) {
  while (true) {
    TSVIZ_RETURN_IF_ERROR(BumpRound());
    // Candidate generation: P'_G = entries with minimal time.
    Timestamp best_t = kMaxTimestamp;
    bool any = false;
    for (const SpanView& view : views) {
      if (view.first.has_value()) {
        best_t = std::min(best_t, view.first->p.t);
        any = true;
      }
    }
    if (!any) return std::optional<Point>();

    // A non-tight bound at the minimum means the true first point of that
    // chunk is unknown and could be anywhere at or after the bound: load
    // (probe) that chunk now — no cheaper pruning is possible.
    SpanView* untight = nullptr;
    for (SpanView& view : views) {
      if (view.first.has_value() && view.first->p.t == best_t &&
          !view.first->tight) {
        untight = &view;
        break;
      }
    }
    if (untight != nullptr) {
      TSVIZ_RETURN_IF_ERROR(ResolveFirst(*untight, span));
      continue;
    }

    // Candidate point: largest version among the minimal-time entries.
    SpanView* cand = nullptr;
    for (SpanView& view : views) {
      if (view.first.has_value() && view.first->p.t == best_t &&
          (cand == nullptr || view.version() > cand->version())) {
        cand = &view;
      }
    }

    // Verification (Proposition 3.1): only later deletes can invalidate.
    if (!IsCovered(best_t, cand->version(), span)) {
      return std::optional<Point>(cand->first->p);
    }
    // Lazy update: tighten the interval by the delete boundary instead of
    // loading the chunk (Section 3.3).
    std::optional<Timestamp> bound =
        NextUncovered(best_t, cand->version(), span);
    if (!bound.has_value() || *bound > cand->interval.end) {
      cand->first.reset();
    } else {
      cand->first = TimeEntry{Point{*bound, 0.0}, /*tight=*/false};
      cand->interval.start = std::max(cand->interval.start, *bound);
    }
  }
}

Result<std::optional<Point>> M4LsmExecutor::SolveLast(
    std::vector<SpanView>& views, const TimeRange& span) {
  while (true) {
    TSVIZ_RETURN_IF_ERROR(BumpRound());
    Timestamp best_t = kMinTimestamp;
    bool any = false;
    for (const SpanView& view : views) {
      if (view.last.has_value()) {
        best_t = std::max(best_t, view.last->p.t);
        any = true;
      }
    }
    if (!any) return std::optional<Point>();

    SpanView* untight = nullptr;
    for (SpanView& view : views) {
      if (view.last.has_value() && view.last->p.t == best_t &&
          !view.last->tight) {
        untight = &view;
        break;
      }
    }
    if (untight != nullptr) {
      TSVIZ_RETURN_IF_ERROR(ResolveLast(*untight, span));
      continue;
    }

    SpanView* cand = nullptr;
    for (SpanView& view : views) {
      if (view.last.has_value() && view.last->p.t == best_t &&
          (cand == nullptr || view.version() > cand->version())) {
        cand = &view;
      }
    }

    if (!IsCovered(best_t, cand->version(), span)) {
      return std::optional<Point>(cand->last->p);
    }
    std::optional<Timestamp> bound =
        PrevUncovered(best_t, cand->version(), span);
    if (!bound.has_value() || *bound < cand->interval.start) {
      cand->last.reset();
    } else {
      cand->last = TimeEntry{Point{*bound, 0.0}, /*tight=*/false};
      cand->interval.end = std::min(cand->interval.end, *bound);
    }
  }
}

Status M4LsmExecutor::LoadExact(SpanView& view, const TimeRange& span) {
  obs::TraceSpan span_load(trace(), "lazy_chunk_load");
  view.exact = true;
  view.live.clear();
  const auto& pages = view.chunk->lazy->pages();
  for (size_t pi = LocatePageBinary(pages, span.start);
       pi < pages.size() && pages[pi].min_t <= span.end; ++pi) {
    TSVIZ_ASSIGN_OR_RETURN(const std::vector<Point>* points,
                           view.chunk->lazy->GetPage(pi));
    auto it = std::lower_bound(
        points->begin(), points->end(), span.start,
        [](const Point& p, Timestamp t) { return p.t < t; });
    for (; it != points->end() && it->t <= span.end; ++it) {
      if (stats_ != nullptr) ++stats_->points_scanned;
      if (!IsCovered(it->t, view.version(), span)) {
        view.live.push_back(*it);
      }
    }
  }

  if (view.live.empty()) {
    view.first.reset();
    view.last.reset();
    view.bottom.reset();
    view.top.reset();
    return Status::OK();
  }

  view.interval = TimeRange(view.live.front().t, view.live.back().t);
  view.first = TimeEntry{view.live.front(), /*tight=*/true};
  view.last = TimeEntry{view.live.back(), /*tight=*/true};

  view.by_value.resize(view.live.size());
  for (uint32_t i = 0; i < view.live.size(); ++i) view.by_value[i] = i;
  std::sort(view.by_value.begin(), view.by_value.end(),
            [&view](uint32_t a, uint32_t b) {
              if (view.live[a].v != view.live[b].v) {
                return view.live[a].v < view.live[b].v;
              }
              return view.live[a].t < view.live[b].t;
            });
  view.bottom_cursor = 0;
  view.top_cursor = 0;
  view.bottom = view.live[view.by_value.front()];
  view.top = view.live[view.by_value.back()];
  return Status::OK();
}

Result<std::optional<Point>> M4LsmExecutor::SolveExtreme(
    std::vector<SpanView>& views, const TimeRange& span, bool bottom) {
  auto entry_of = [bottom](SpanView& view) -> std::optional<Point>& {
    return bottom ? view.bottom : view.top;
  };
  // `better(a, b)`: a is more extreme than b for this function.
  auto better = [bottom](Value a, Value b) {
    return bottom ? a < b : a > b;
  };

  while (true) {
    TSVIZ_RETURN_IF_ERROR(BumpRound());
    // Candidate generation: entries attaining the extreme value, by
    // descending version (the largest-version one is P_G, the rest are the
    // fallbacks of Section 3.4's lazy strategy).
    std::vector<SpanView*> ties;
    for (SpanView& view : views) {
      std::optional<Point>& entry = entry_of(view);
      if (!entry.has_value()) continue;
      if (ties.empty() || better(entry->v, (*entry_of(*ties.front())).v)) {
        ties.clear();
        ties.push_back(&view);
      } else if (entry->v == (*entry_of(*ties.front())).v) {
        ties.push_back(&view);
      }
    }
    if (ties.empty()) return std::optional<Point>();
    std::sort(ties.begin(), ties.end(), [](SpanView* a, SpanView* b) {
      return a->version() > b->version();
    });

    std::vector<SpanView*> to_reload;
    bool progressed = false;
    std::optional<Point> found;
    for (SpanView* view : ties) {
      const Point cand = *entry_of(*view);
      // Verification (Proposition 3.3), case analysis of Section 3.4.
      bool invalid = IsCovered(cand.t, view->version(), span);
      if (!invalid) {
        for (SpanView& other : views) {
          if (other.version() <= view->version()) continue;
          if (!other.interval.Contains(cand.t)) continue;
          // Partial scan: does the later chunk actually overwrite cand.t?
          TSVIZ_ASSIGN_OR_RETURN(std::optional<PointPos> hit,
                                 other.chunk->searcher->FindExact(cand.t));
          if (hit.has_value()) {
            invalid = true;
            break;
          }
        }
      }
      if (!invalid) {
        found = cand;
        break;
      }
      if (view->exact) {
        // Loaded views only die by overwrite; fall to their next extreme
        // live point.
        if (view->bottom_cursor + view->top_cursor + 1 >= view->live.size()) {
          entry_of(*view).reset();
        } else if (bottom) {
          ++view->bottom_cursor;
          view->bottom = view->live[view->by_value[view->bottom_cursor]];
        } else {
          ++view->top_cursor;
          view->top = view->live[view->by_value[view->by_value.size() - 1 -
                                                view->top_cursor]];
        }
        progressed = true;
      } else {
        to_reload.push_back(view);
      }
    }
    if (found.has_value()) return found;

    // All extreme candidates are non-latest: load the affected chunks and
    // recompute their metadata under deletes and updates.
    for (SpanView* view : to_reload) {
      TSVIZ_RETURN_IF_ERROR(LoadExact(*view, span));
      progressed = true;
    }
    if (!progressed) {
      return Status::Internal("BP/TP solver made no progress");
    }
  }
}

Result<M4Row> M4LsmExecutor::ComputeRow(const TimeRange& span,
                                        std::vector<SpanView>& views) {
  span_deletes_.clear();
  for (const DeleteRecord& del : deletes_) {
    if (del.range.Overlaps(span)) span_deletes_.push_back(del);
  }
  M4Row row;
  std::optional<Point> first;
  {
    obs::TraceSpan span_fp(trace(), "solve_first");
    TSVIZ_ASSIGN_OR_RETURN(first, SolveFirst(views, span));
  }
  if (!first.has_value()) return row;  // empty span
  std::optional<Point> last;
  std::optional<Point> bottom;
  std::optional<Point> top;
  {
    obs::TraceSpan span_lp(trace(), "solve_last");
    TSVIZ_ASSIGN_OR_RETURN(last, SolveLast(views, span));
  }
  {
    obs::TraceSpan span_bp(trace(), "solve_bottom");
    TSVIZ_ASSIGN_OR_RETURN(bottom, SolveExtreme(views, span, /*bottom=*/true));
  }
  {
    obs::TraceSpan span_tp(trace(), "solve_top");
    TSVIZ_ASSIGN_OR_RETURN(top, SolveExtreme(views, span, /*bottom=*/false));
  }
  if (!last.has_value() || !bottom.has_value() || !top.has_value()) {
    return Status::Internal("span has a first point but lacks last/bottom/top");
  }
  row.has_data = true;
  row.first = *first;
  row.last = *last;
  row.bottom = *bottom;
  row.top = *top;
  return row;
}

Result<M4Result> M4LsmExecutor::Run() {
  TSVIZ_RETURN_IF_ERROR(query_.Validate());
  if (span_begin_ < 0 || span_end_ > spans_.num_spans() ||
      span_begin_ > span_end_) {
    return Status::InvalidArgument("span window out of range");
  }
  // Only the metadata overlapping this executor's span window matters.
  const TimeRange query_range(spans_.SpanStart(span_begin_),
                              spans_.SpanStart(span_end_) - 1);

  // Algorithm 1 lines 2-3: metadata of all chunks and all deletes in range.
  std::vector<std::unique_ptr<ChunkState>> states;
  {
    obs::TraceSpan span_meta(trace(), "metadata_read");
    std::vector<ChunkHandle> handles =
        SelectOverlappingChunks(view_, query_range, stats_);
    deletes_ = SelectOverlappingDeletes(view_, query_range);

    states.reserve(handles.size());
    for (const ChunkHandle& handle : handles) {
      auto state = std::make_unique<ChunkState>();
      state->handle = handle;
      state->lazy = data_reader_.GetChunk(handle);
      state->searcher = std::make_unique<ChunkSearcher>(
          state->lazy, &handle.meta->index, options_.locate_strategy, stats_);
      states.push_back(std::move(state));
    }
    // Sweep chunks against spans in time order.
    std::sort(states.begin(), states.end(),
              [](const std::unique_ptr<ChunkState>& a,
                 const std::unique_ptr<ChunkState>& b) {
                return a->handle.meta->stats.first.t <
                       b->handle.meta->stats.first.t;
              });
  }

  M4Result result(static_cast<size_t>(span_end_ - span_begin_));
  std::vector<ChunkState*> active;
  size_t next_state = 0;
  for (int64_t i = span_begin_; i < span_end_; ++i) {
    const TimeRange span = spans_.SpanRange(i);
    while (next_state < states.size() &&
           states[next_state]->handle.meta->stats.first.t <= span.end) {
      active.push_back(states[next_state].get());
      ++next_state;
    }
    std::erase_if(active, [&span](ChunkState* state) {
      return state->handle.meta->stats.last.t < span.start;
    });

    std::vector<SpanView> views;
    views.reserve(active.size());
    for (ChunkState* state : active) {
      if (!state->handle.meta->Interval().Overlaps(span)) continue;
      SpanView view;
      view.chunk = state;
      view.interval = state->handle.meta->Interval();
      view.first = TimeEntry{state->handle.meta->stats.first, true};
      view.last = TimeEntry{state->handle.meta->stats.last, true};
      view.bottom = state->handle.meta->stats.bottom;
      view.top = state->handle.meta->stats.top;
      views.push_back(std::move(view));
    }
    TSVIZ_ASSIGN_OR_RETURN(result[static_cast<size_t>(i - span_begin_)],
                           ComputeRow(span, views));
  }
  return result;
}

}  // namespace

Result<M4Result> RunM4Lsm(StoreView view, const M4Query& query,
                          QueryStats* stats, const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  obs::TraceSpan span(stats != nullptr ? stats->trace.get() : nullptr,
                      "m4_lsm");
  M4LsmExecutor executor(std::move(view), query, 0, query.w, stats, options);
  return executor.Run();
}

Result<M4Result> RunM4LsmSpans(StoreView view, const M4Query& query,
                               int64_t span_begin, int64_t span_end,
                               QueryStats* stats,
                               const M4LsmOptions& options) {
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  obs::TraceSpan span(stats != nullptr ? stats->trace.get() : nullptr,
                      "m4_lsm");
  M4LsmExecutor executor(std::move(view), query, span_begin, span_end, stats,
                         options);
  return executor.Run();
}

}  // namespace tsviz
