#ifndef TSVIZ_M4_CACHE_H_
#define TSVIZ_M4_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// LRU cache of M4 results, keyed by the query geometry and the store's
// state version — interactive dashboards repeat the same zoom levels, and a
// pan/zoom session revisits its history constantly. Any flush, delete or
// compaction bumps the store's state version and implicitly invalidates
// every cached result for it. Thread-safe.
class M4QueryCache {
 public:
  explicit M4QueryCache(size_t capacity) : capacity_(capacity) {}

  M4QueryCache(const M4QueryCache&) = delete;
  M4QueryCache& operator=(const M4QueryCache&) = delete;

  // Returns the cached result or computes it (via the pooled parallel
  // operator when `parallelism` > 1) and caches it. Takes a snapshot view
  // (a TsStore converts implicitly) and keys on its owner + state version. `stats` (optional) is
  // only charged on a miss — a hit costs no I/O; the probe itself shows up
  // as a `cache_probe` span on the caller's trace.
  Result<M4Result> GetOrCompute(StoreView view, const M4Query& query,
                                QueryStats* stats,
                                const M4LsmOptions& options = {},
                                int parallelism = 1);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

  // Runtime knob (SQL `SET result_cache_capacity = n`); shrinking evicts
  // immediately. A capacity of 0 disables result caching.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  void Clear();

 private:
  struct Key {
    const TsStore* store;  // snapshot owner, used as identity only
    uint64_t state_version;
    Timestamp tqs;
    Timestamp tqe;
    int64_t w;
    LocateStrategy strategy;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  // A result computed while corrupt chunks were quarantined is still
  // cacheable (the state version pins the data it covered), but every hit
  // must re-report degraded=true — the flag travels with the entry.
  struct Entry {
    Key key;
    M4Result result;
    bool degraded = false;
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace tsviz

#endif  // TSVIZ_M4_CACHE_H_
