#ifndef TSVIZ_M4_CACHE_H_
#define TSVIZ_M4_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "common/status.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// LRU cache of M4 results, keyed by the query geometry and the store's
// state version — interactive dashboards repeat the same zoom levels, and a
// pan/zoom session revisits its history constantly. Any flush, delete or
// compaction bumps the store's state version and implicitly invalidates
// every cached result for it. Thread-safe.
class M4QueryCache {
 public:
  explicit M4QueryCache(size_t capacity) : capacity_(capacity) {}

  M4QueryCache(const M4QueryCache&) = delete;
  M4QueryCache& operator=(const M4QueryCache&) = delete;

  // Returns the cached result or computes it with RunM4Lsm and caches it.
  // `stats` (optional) is only charged on a miss — a hit costs no I/O.
  Result<M4Result> GetOrCompute(const TsStore& store, const M4Query& query,
                                QueryStats* stats,
                                const M4LsmOptions& options = {});

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const;

  void Clear();

 private:
  struct Key {
    const TsStore* store;
    uint64_t state_version;
    Timestamp tqs;
    Timestamp tqe;
    int64_t w;
    LocateStrategy strategy;

    friend auto operator<=>(const Key&, const Key&) = default;
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::pair<Key, M4Result>> lru_;  // front = most recent
  std::map<Key, std::list<std::pair<Key, M4Result>>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tsviz

#endif  // TSVIZ_M4_CACHE_H_
