#include "m4/m4_types.h"

#include <cmath>
#include <sstream>

namespace tsviz {

namespace {

void AppendPoint(std::ostringstream* os, const char* tag, const Point& p) {
  *os << tag << "=(" << p.t << ", " << p.v << ") ";
}

bool SameValue(Value a, Value b) {
  // Values flow through lossless codecs, so equality is exact; NaN-safe.
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool SamePoint(const Point& a, const Point& b) {
  return a.t == b.t && SameValue(a.v, b.v);
}

}  // namespace

std::string M4Row::ToString() const {
  if (!has_data) return "(empty)";
  std::ostringstream os;
  AppendPoint(&os, "first", first);
  AppendPoint(&os, "last", last);
  AppendPoint(&os, "bottom", bottom);
  AppendPoint(&os, "top", top);
  return os.str();
}

bool RowsEquivalent(const M4Row& a, const M4Row& b) {
  if (a.has_data != b.has_data) return false;
  if (!a.has_data) return true;
  return SamePoint(a.first, b.first) && SamePoint(a.last, b.last) &&
         SameValue(a.bottom.v, b.bottom.v) && SameValue(a.top.v, b.top.v);
}

bool ResultsEquivalent(const M4Result& a, const M4Result& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEquivalent(a[i], b[i])) return false;
  }
  return true;
}

std::string FirstMismatch(const M4Result& a, const M4Result& b) {
  if (a.size() != b.size()) {
    return "size mismatch: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEquivalent(a[i], b[i])) {
      return "span " + std::to_string(i) + ": " + a[i].ToString() + " vs " +
             b[i].ToString();
    }
  }
  return "";
}

std::string ValidateResultInvariants(const M4Result& result) {
  for (size_t i = 0; i < result.size(); ++i) {
    const M4Row& row = result[i];
    if (!row.has_data) continue;
    std::string where = "span " + std::to_string(i) + ": ";
    if (row.first.t > row.last.t) return where + "first.t > last.t";
    if (row.bottom.t < row.first.t || row.bottom.t > row.last.t) {
      return where + "bottom outside [first.t, last.t]";
    }
    if (row.top.t < row.first.t || row.top.t > row.last.t) {
      return where + "top outside [first.t, last.t]";
    }
    if (row.bottom.v > row.top.v) return where + "bottom.v > top.v";
    if (row.first.v < row.bottom.v || row.first.v > row.top.v) {
      return where + "first.v outside [bottom.v, top.v]";
    }
    if (row.last.v < row.bottom.v || row.last.v > row.top.v) {
      return where + "last.v outside [bottom.v, top.v]";
    }
  }
  return "";
}

}  // namespace tsviz
