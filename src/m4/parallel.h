#ifndef TSVIZ_M4_PARALLEL_H_
#define TSVIZ_M4_PARALLEL_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// The process-wide executor pool that parallel M4 queries submit their span
// blocks to. Sized by DefaultExecutorThreads(); leaked on purpose so late
// queries never race static destruction. Exposes executor_pool_queue_depth
// as a metrics gauge.
ThreadPool& ExecutorPool();

// Cut points (blocks+1 monotone span indices from 0 to query.w) that split
// the spans into `blocks` contiguous blocks for the pool. Cuts start at the
// even w*b/blocks split and each interior cut snaps to the first span of a
// nearby partition boundary (within half a block width), so neighbouring
// workers land on different partitions' file groups and never contend on
// the same partition's lazy chunks. Any monotone cut vector yields the same
// concatenated result; alignment only changes who loads what. Exposed for
// testing.
std::vector<int64_t> PartitionAlignedSpanCuts(const StoreView& view,
                                              const M4Query& query,
                                              int64_t blocks);

// Data-parallel M4-LSM: spans are independent (each pixel column only
// depends on the chunks overlapping it), so the query splits into
// contiguous span blocks submitted to the shared executor pool, each with
// its own chunk pins. Chunks straddling a block boundary are touched by
// both neighbours — with the shared page cache this costs at most one
// duplicate decode per boundary, and usually none.
//
// `num_threads` is the number of span blocks (parallelism), not a thread
// count: blocks queue on the fixed pool. Every block shares the one
// snapshot passed in, so all span rows come from the same store state no
// matter what background maintenance does meanwhile; file access uses
// positional reads and is thread-safe. `stats` (optional) receives the
// summed counters of all blocks; the caller's trace (if any) records a
// `pool_wait` span covering the wait for block completion.
Result<M4Result> RunM4LsmParallel(StoreView view, const M4Query& query,
                                  int num_threads, QueryStats* stats,
                                  const M4LsmOptions& options = {});

}  // namespace tsviz

#endif  // TSVIZ_M4_PARALLEL_H_
