#ifndef TSVIZ_M4_PARALLEL_H_
#define TSVIZ_M4_PARALLEL_H_

#include "common/stats.h"
#include "common/status.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// Data-parallel M4-LSM: spans are independent (each pixel column only
// depends on the chunks overlapping it), so the query splits into
// contiguous span blocks computed on separate threads, each with its own
// chunk cache. Chunks straddling a block boundary are loaded by both
// neighbours — a bounded duplication of at most (threads - 1) chunks.
//
// The store must not be mutated during the call (same contract as the
// serial operator); file access uses positional reads and is thread-safe.
// `stats` (optional) receives the summed counters of all threads.
Result<M4Result> RunM4LsmParallel(const TsStore& store, const M4Query& query,
                                  int num_threads, QueryStats* stats,
                                  const M4LsmOptions& options = {});

}  // namespace tsviz

#endif  // TSVIZ_M4_PARALLEL_H_
