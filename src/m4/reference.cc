#include "m4/reference.h"

#include <map>

namespace tsviz {

M4Result ReferenceM4(const std::vector<Point>& merged_series,
                     const M4Query& query) {
  SpanSet spans(query);
  M4Result result(static_cast<size_t>(spans.num_spans()));
  for (const Point& p : merged_series) {
    if (!spans.InQueryRange(p.t)) continue;
    M4Row& row = result[static_cast<size_t>(spans.IndexOf(p.t))];
    if (!row.has_data) {
      row.has_data = true;
      row.first = row.last = row.bottom = row.top = p;
      continue;
    }
    if (p.t < row.first.t) row.first = p;
    if (p.t > row.last.t) row.last = p;
    if (p.v < row.bottom.v) row.bottom = p;
    if (p.v > row.top.v) row.top = p;
  }
  return result;
}

std::vector<Point> ReferenceMerge(
    const std::vector<std::pair<Version, std::vector<Point>>>& chunks,
    const std::vector<std::pair<Version, TimeRange>>& deletes) {
  // Timestamp -> (version, value): keep the highest-version write.
  std::map<Timestamp, std::pair<Version, Value>> latest;
  for (const auto& [version, points] : chunks) {
    for (const Point& p : points) {
      auto it = latest.find(p.t);
      if (it == latest.end() || it->second.first < version) {
        latest[p.t] = {version, p.v};
      }
    }
  }
  std::vector<Point> merged;
  merged.reserve(latest.size());
  for (const auto& [t, entry] : latest) {
    const auto& [version, value] = entry;
    bool deleted = false;
    for (const auto& [del_version, range] : deletes) {
      if (del_version > version && range.Contains(t)) {
        deleted = true;
        break;
      }
    }
    if (!deleted) merged.push_back(Point{t, value});
  }
  return merged;
}

}  // namespace tsviz
