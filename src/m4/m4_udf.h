#ifndef TSVIZ_M4_M4_UDF_H_
#define TSVIZ_M4_M4_UDF_H_

#include "common/stats.h"
#include "common/status.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// The baseline operator (Section 1.1, Appendix A.5.2): the original
// RDBMS-oriented M4 algorithm implemented as a UDF over the assembled
// series. It loads every chunk overlapping the query range from disk,
// decodes all their pages, merges them into the latest-only series, and
// computes the four representation functions per span in one ordered scan —
// paying full I/O and decompression cost regardless of w.
Result<M4Result> RunM4Udf(const StoreView& view, const M4Query& query,
                          QueryStats* stats);

}  // namespace tsviz

#endif  // TSVIZ_M4_M4_UDF_H_
