#ifndef TSVIZ_M4_AGGREGATE_H_
#define TSVIZ_M4_AGGREGATE_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "m4/m4_lsm.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// Per-span GroupBy aggregations (the IoTDB GROUP BY family the M4 function
// ships alongside; Appendix A.1 expresses M4 itself through FirstTime /
// FirstValue / ... aggregators).
//
// kFirstValue/kLastValue/kMin/kMax are answered by the merge-free M4-LSM
// machinery — they are exactly the FP/LP values and BP/TP extremes.
// kCount/kSum/kAvg depend on every live point, which chunk metadata cannot
// provide under overlaps and deletes, so they fall back to the full
// merge-scan path (the M4-UDF read strategy).
enum class Aggregation {
  kFirstValue,
  kLastValue,
  kMin,
  kMax,
  kCount,
  kSum,
  kAvg,
};

// True when the aggregation is served from chunk metadata without merging.
bool IsMergeFree(Aggregation aggregation);

struct AggregateRow {
  bool has_data = false;
  double value = 0.0;

  friend bool operator==(const AggregateRow&, const AggregateRow&) = default;
};

// One row per span, in span order (kCount yields 0-valued rows with
// has_data=true only when the span is non-empty, matching SQL COUNT over
// grouped buckets).
Result<std::vector<AggregateRow>> RunGroupBy(const StoreView& view,
                                             const M4Query& query,
                                             Aggregation aggregation,
                                             QueryStats* stats,
                                             const M4LsmOptions& options = {});

}  // namespace tsviz

#endif  // TSVIZ_M4_AGGREGATE_H_
