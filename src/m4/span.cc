#include "m4/span.h"

#include "common/logging.h"

namespace tsviz {

Status M4Query::Validate() const {
  if (w <= 0) return Status::InvalidArgument("w must be positive");
  if (tqe <= tqs) {
    return Status::InvalidArgument("query range must be non-empty");
  }
  return Status::OK();
}

SpanSet::SpanSet(const M4Query& query)
    : tqs_(query.tqs), tqe_(query.tqe), w_(query.w) {
  TSVIZ_CHECK(query.Validate().ok());
}

int64_t SpanSet::IndexOf(Timestamp t) const {
  TSVIZ_CHECK(InQueryRange(t));
  using I128 = __int128;
  I128 numerator = static_cast<I128>(w_) * (static_cast<I128>(t) - tqs_);
  return static_cast<int64_t>(numerator / (static_cast<I128>(tqe_) - tqs_));
}

Timestamp SpanSet::SpanStart(int64_t i) const {
  TSVIZ_CHECK(i >= 0 && i <= w_);
  using I128 = __int128;
  I128 range = static_cast<I128>(tqe_) - tqs_;
  I128 product = static_cast<I128>(i) * range;
  // ceil(product / w) with non-negative operands.
  I128 offset = (product + w_ - 1) / w_;
  return static_cast<Timestamp>(static_cast<I128>(tqs_) + offset);
}

TimeRange SpanSet::SpanRange(int64_t i) const {
  return TimeRange(SpanStart(i), SpanStart(i + 1) - 1);
}

}  // namespace tsviz
