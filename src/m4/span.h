#ifndef TSVIZ_M4_SPAN_H_
#define TSVIZ_M4_SPAN_H_

#include <cstdint>

#include "common/status.h"
#include "common/time_range.h"
#include "common/types.h"

namespace tsviz {

// Parameters of an M4 representation query (Definition 2.3): a half-open
// query time range [tqs, tqe) divided into w equal time spans, one per pixel
// column.
struct M4Query {
  Timestamp tqs = 0;
  Timestamp tqe = 0;
  int64_t w = 0;

  Status Validate() const;
};

// Exact integer span arithmetic shared by both executors. The i-th (0-based)
// span is I_i = { t : floor(w * (t - tqs) / (tqe - tqs)) == i } — the
// grouping key of the SQL form in Appendix A.1 — whose boundaries are
// b_i = tqs + ceil(i * (tqe - tqs) / w), giving I_i = [b_i, b_{i+1}). All
// intermediate products run in 128-bit so 10M-point millisecond ranges can
// never overflow.
class SpanSet {
 public:
  // query must be valid (Validate() == OK).
  explicit SpanSet(const M4Query& query);

  int64_t num_spans() const { return w_; }

  // 0-based span index of timestamp t; t must lie in [tqs, tqe).
  int64_t IndexOf(Timestamp t) const;

  // Whether t falls inside the query range at all.
  bool InQueryRange(Timestamp t) const { return t >= tqs_ && t < tqe_; }

  // Inclusive start of span i: the smallest timestamp mapping to span i.
  Timestamp SpanStart(int64_t i) const;

  // The span as a closed TimeRange [SpanStart(i), SpanStart(i+1) - 1],
  // matching the coverage convention of deletes and chunk intervals.
  TimeRange SpanRange(int64_t i) const;

 private:
  Timestamp tqs_;
  Timestamp tqe_;
  int64_t w_;
};

}  // namespace tsviz

#endif  // TSVIZ_M4_SPAN_H_
