#ifndef TSVIZ_BG_MAINTENANCE_H_
#define TSVIZ_BG_MAINTENANCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bg/job_scheduler.h"
#include "common/status.h"
#include "storage/store.h"

namespace tsviz::bg {

// Policy knobs for the background maintenance subsystem. All thresholds are
// runtime-adjustable (`SET autoflush_bytes|compaction_files|ttl_ms = n`).
struct MaintenanceOptions {
  // Whether StartMaintenance actually starts the policy loop (manual
  // FLUSH/COMPACT and SHOW JOBS work either way).
  bool enabled = true;

  // Policy evaluation period.
  std::chrono::milliseconds tick_interval{100};

  // Auto-flush when a memtable's approximate heap footprint crosses this
  // (0 disables the size trigger).
  size_t memtable_flush_bytes = 4u << 20;

  // Compact when a series has at least this many data files (0 disables).
  size_t compaction_files = 8;

  // Compact when the fraction of chunks overlapping another chunk crosses
  // this (<= 0 disables; needs at least 2 files to trigger).
  double compaction_overlap = 0.0;

  // Per-series TTL in timestamp units (milliseconds by the repo's
  // convention): points older than `data_end - ttl` are expired with a
  // background DeleteRange, and fully-expired files trigger a compaction.
  // 0 disables.
  int64_t ttl = 0;

  // Scheduler sizing: worker threads and job-start rate cap (0 = no cap).
  int workers = 1;
  double max_jobs_per_sec = 0;
};

// The stores the maintenance loop may touch. Implemented by Database;
// defined here so bg does not depend on db. Stores are returned as
// shared_ptr so a job started just before DropSeries holds the store alive
// for the duration of its run.
class StoreCatalog {
 public:
  virtual ~StoreCatalog() = default;
  virtual std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListStoresForMaintenance() = 0;

  // Sharded catalogs expose per-shard iteration so a policy tick holds at
  // most one shard's lock at a time instead of snapshotting the whole
  // catalog at once. Defaults model a single shard holding everything, so
  // unsharded implementations need not override.
  virtual size_t NumMaintenanceShards() const { return 1; }
  virtual std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListShardStoresForMaintenance(size_t shard) {
    (void)shard;
    return ListStoresForMaintenance();
  }
};

// Drives the policy: a periodic "tick" job on the scheduler examines every
// store and enqueues flush/compact/ttl jobs, keyed by series name so the
// scheduler's per-key serialization guarantees at most one maintenance job
// touches a store at a time. All jobs run against the thread-safe TsStore —
// queries keep their copy-on-write snapshots, so background work is
// invisible to them.
class MaintenanceManager {
 public:
  MaintenanceManager(StoreCatalog* catalog, MaintenanceOptions options);
  ~MaintenanceManager();  // implies Stop()

  MaintenanceManager(const MaintenanceManager&) = delete;
  MaintenanceManager& operator=(const MaintenanceManager&) = delete;

  // Starts the scheduler and (when options.enabled) the periodic policy
  // tick. Idempotent.
  void Start();

  // Deterministic shutdown: cancels pending jobs, finishes running ones,
  // joins the workers. Idempotent.
  void Stop();

  bool running() const { return scheduler_.running(); }

  // One policy evaluation over every store; normally driven by the periodic
  // tick, exposed for tests. Returns the number of jobs enqueued.
  size_t Tick();

  // Explicit one-shot jobs (SQL FLUSH/COMPACT run the store call directly;
  // these enqueue the same work in the background instead).
  uint64_t ScheduleFlush(const std::string& series,
                         std::shared_ptr<TsStore> store);
  uint64_t ScheduleCompact(const std::string& series,
                           std::shared_ptr<TsStore> store);
  // Partition-scoped compaction; the job type carries the partition index
  // ("compact:p<index>"), so coalescing is per (series, partition) and two
  // hot partitions of one series queue independently.
  uint64_t ScheduleCompactPartition(const std::string& series,
                                    std::shared_ptr<TsStore> store,
                                    int64_t partition_index);
  uint64_t ScheduleTtl(const std::string& series,
                       std::shared_ptr<TsStore> store, int64_t ttl);

  // Cancels the series' pending jobs and waits out its running one. Must be
  // called before dropping a series.
  void Quiesce(const std::string& series) { scheduler_.Quiesce(series); }

  // Waits until every enqueued one-shot job has finished.
  void Drain() { scheduler_.Drain(); }

  std::vector<JobInfo> ListJobs() const { return scheduler_.ListJobs(); }

  // Runtime knobs (atomics: ticks read them without a lock).
  void set_memtable_flush_bytes(size_t v) { memtable_flush_bytes_ = v; }
  void set_compaction_files(size_t v) { compaction_files_ = v; }
  void set_ttl(int64_t v) { ttl_ = v; }
  size_t memtable_flush_bytes() const { return memtable_flush_bytes_; }
  size_t compaction_files() const { return compaction_files_; }
  int64_t ttl() const { return ttl_; }

  JobScheduler& scheduler() { return scheduler_; }

 private:
  // One store's policy evaluation (flush/compaction/TTL triggers); returns
  // the number of jobs enqueued and accumulates the memtable footprint.
  size_t TickStore(const std::string& name,
                   const std::shared_ptr<TsStore>& store, size_t flush_bytes,
                   size_t compact_files, int64_t ttl,
                   double* memtable_bytes_total);

  StoreCatalog* catalog_;
  const MaintenanceOptions options_;
  std::atomic<size_t> memtable_flush_bytes_;
  std::atomic<size_t> compaction_files_;
  std::atomic<int64_t> ttl_;
  JobScheduler scheduler_;
};

}  // namespace tsviz::bg

#endif  // TSVIZ_BG_MAINTENANCE_H_
