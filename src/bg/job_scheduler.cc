#include "bg/job_scheduler.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tsviz::bg {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& SubmittedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "bg_jobs_submitted_total", "Background jobs enqueued");
  return c;
}
obs::Counter& CompletedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "bg_jobs_completed_total", "Background jobs finished successfully");
  return c;
}
obs::Counter& FailedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "bg_jobs_failed_total", "Background jobs that returned an error");
  return c;
}
obs::Counter& CancelledTotal() {
  static obs::Counter& c = obs::GetCounter(
      "bg_jobs_cancelled_total", "Background jobs cancelled before running");
  return c;
}
obs::Counter& CoalescedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "bg_jobs_coalesced_total",
      "Background job submissions merged into an identical pending job");
  return c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::GetGauge(
      "bg_queue_depth", "Background jobs waiting to run");
  return g;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

JobScheduler::JobScheduler() : JobScheduler(Options()) {}

JobScheduler::JobScheduler(Options options) : options_(options) {}

JobScheduler::~JobScheduler() { Stop(); }

void JobScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  tokens_ = std::max(1.0, options_.max_jobs_per_sec);
  tokens_updated_ = Clock::now();
  int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void JobScheduler::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    // Cancel everything still pending; running jobs are left to finish.
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.state == JobState::kPending) {
        ArchiveLocked(it->second, JobState::kCancelled);
        CancelledTotal().Inc();
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    UpdateQueueGaugeLocked();
    workers.swap(workers_);
    work_cv_.notify_all();
  }
  for (std::thread& t : workers) t.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  stopping_ = false;
  idle_cv_.notify_all();
}

bool JobScheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

uint64_t JobScheduler::Submit(const std::string& key, const std::string& type,
                              std::function<Status()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A running job may enqueue follow-up work (TTL expiry chases itself with
  // a compaction) while Stop() is mid-flight; accepting it after the
  // cancel-pending sweep would strand it pending forever.
  if (stopping_) return 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kPending && !job.periodic && job.key == key &&
        job.type == type) {
      CoalescedTotal().Inc();
      return id;
    }
  }
  Job job;
  job.id = next_id_++;
  job.key = key;
  job.type = type;
  job.fn = std::move(fn);
  job.next_run = Clock::now();
  uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  SubmittedTotal().Inc();
  UpdateQueueGaugeLocked();
  work_cv_.notify_one();
  return id;
}

uint64_t JobScheduler::SubmitPeriodic(const std::string& key,
                                      const std::string& type,
                                      std::chrono::milliseconds period,
                                      std::function<Status()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return 0;
  Job job;
  job.id = next_id_++;
  job.key = key;
  job.type = type;
  job.fn = std::move(fn);
  job.periodic = true;
  job.period = period;
  job.next_run = Clock::now() + period;
  uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  SubmittedTotal().Inc();
  UpdateQueueGaugeLocked();
  work_cv_.notify_one();
  return id;
}

bool JobScheduler::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kPending) {
    return false;
  }
  ArchiveLocked(it->second, JobState::kCancelled);
  CancelledTotal().Inc();
  jobs_.erase(it);
  UpdateQueueGaugeLocked();
  return true;
}

void JobScheduler::Quiesce(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Cancel pending jobs with the key — including a periodic job that went
    // back to pending after the run we waited out below.
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.state == JobState::kPending && it->second.key == key) {
        ArchiveLocked(it->second, JobState::kCancelled);
        CancelledTotal().Inc();
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    UpdateQueueGaugeLocked();
    if (running_keys_.count(key) == 0) return;
    idle_cv_.wait(lock);
  }
}

void JobScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    if (num_running_ > 0) return false;
    for (const auto& [id, job] : jobs_) {
      if (!job.periodic && job.state == JobState::kPending) return false;
    }
    return true;
  });
}

std::vector<JobInfo> JobScheduler::ListJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size() + history_.size());
  for (const auto& [id, job] : jobs_) out.push_back(InfoOf(job));
  for (const JobInfo& info : history_) out.push_back(info);
  return out;
}

size_t JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t depth = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kPending) ++depth;
  }
  return depth;
}

JobInfo JobScheduler::InfoOf(const Job& job) {
  JobInfo info;
  info.id = job.id;
  info.key = job.key;
  info.type = job.type;
  info.state = job.state;
  info.periodic = job.periodic;
  info.runs = job.runs;
  info.last_millis = job.last_millis;
  info.last_status = job.last_status;
  return info;
}

void JobScheduler::ArchiveLocked(const Job& job, JobState final_state) {
  JobInfo info = InfoOf(job);
  info.state = final_state;
  history_.push_back(std::move(info));
  while (history_.size() > options_.history_limit) history_.pop_front();
}

void JobScheduler::UpdateQueueGaugeLocked() const {
  size_t depth = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kPending) ++depth;
  }
  QueueDepthGauge().Set(static_cast<double>(depth));
}

void JobScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (stopping_) return;
    const auto now = Clock::now();
    if (options_.max_jobs_per_sec > 0) {
      const double elapsed =
          std::chrono::duration<double>(now - tokens_updated_).count();
      tokens_ = std::min(std::max(1.0, options_.max_jobs_per_sec),
                         tokens_ + elapsed * options_.max_jobs_per_sec);
      tokens_updated_ = now;
    }

    Job* pick = nullptr;
    Clock::time_point earliest = Clock::time_point::max();
    bool have_waiter = false;
    for (auto& [id, job] : jobs_) {
      if (job.state != JobState::kPending) continue;
      if (!job.key.empty() && running_keys_.count(job.key) > 0) continue;
      if (job.next_run <= now) {
        pick = &job;
        break;
      }
      earliest = std::min(earliest, job.next_run);
      have_waiter = true;
    }
    if (pick == nullptr) {
      if (have_waiter) {
        work_cv_.wait_until(lock, earliest);
      } else {
        work_cv_.wait(lock);
      }
      continue;
    }
    if (options_.max_jobs_per_sec > 0 && tokens_ < 1.0) {
      const auto refill = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>((1.0 - tokens_) /
                                        options_.max_jobs_per_sec));
      work_cv_.wait_until(lock, now + refill);
      continue;
    }
    if (options_.max_jobs_per_sec > 0) tokens_ -= 1.0;

    pick->state = JobState::kRunning;
    if (!pick->key.empty()) running_keys_.insert(pick->key);
    ++num_running_;
    UpdateQueueGaugeLocked();
    const uint64_t id = pick->id;
    std::function<Status()> fn = pick->fn;

    lock.unlock();
    const auto start = Clock::now();
    Status status = fn();
    const double millis =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    // Drop the callback copy before re-locking: it may hold the last
    // shared_ptr to a store a concurrent DropSeries is waiting to release.
    fn = nullptr;
    lock.lock();

    auto it = jobs_.find(id);  // running jobs are never erased
    Job& job = it->second;
    ++job.runs;
    job.last_millis = millis;
    job.last_status = status.ok() ? "OK" : status.ToString();
    if (!job.key.empty()) running_keys_.erase(job.key);
    --num_running_;
    if (status.ok()) {
      CompletedTotal().Inc();
    } else {
      FailedTotal().Inc();
    }
    if (job.periodic && !stopping_) {
      job.state = JobState::kPending;
      job.next_run = Clock::now() + job.period;
    } else {
      ArchiveLocked(job, status.ok() ? JobState::kDone : JobState::kFailed);
      jobs_.erase(it);
    }
    UpdateQueueGaugeLocked();
    // A finished key may unblock same-key pending jobs on other workers,
    // and Quiesce/Drain may be waiting on the idle condition.
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

}  // namespace tsviz::bg
