#ifndef TSVIZ_BG_JOB_SCHEDULER_H_
#define TSVIZ_BG_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tsviz::bg {

// Lifecycle of a maintenance job as reported by SHOW JOBS.
enum class JobState { kPending, kRunning, kDone, kFailed, kCancelled };

const char* JobStateName(JobState state);

// A snapshot row for SHOW JOBS / tests.
struct JobInfo {
  uint64_t id = 0;
  std::string key;       // serialization key (usually the series name)
  std::string type;      // job kind ("flush", "compact", "ttl", "tick", ...)
  JobState state = JobState::kPending;
  bool periodic = false;
  uint64_t runs = 0;           // completed executions
  double last_millis = 0.0;    // duration of the most recent execution
  std::string last_status;     // "OK" or the error of the last execution
};

// The background job scheduler: a fixed set of worker threads — deliberately
// distinct from the query ExecutorPool(), so maintenance can never starve
// queries of span-block slots — running one-shot and periodic jobs.
//
// Guarantees:
//  - Per-key serialization: at most one job with a given non-empty key runs
//    at any time, no matter how many workers exist. Maintenance jobs key on
//    the series name, so at most one maintenance job touches a store at once.
//  - Coalescing: submitting a one-shot job while a pending (not running) job
//    with the same (key, type) exists is a no-op returning the pending job's
//    id — a burst of auto-flush triggers enqueues one flush.
//  - Rate limiting: a token bucket caps job starts at max_jobs_per_sec
//    (0 = unlimited); excess jobs stay queued, never dropped.
//  - Deterministic shutdown: Stop() cancels every pending job, lets running
//    jobs finish, and joins all workers. No job callback outlives Stop().
class JobScheduler {
 public:
  struct Options {
    int num_workers = 1;
    double max_jobs_per_sec = 0;  // 0 = unlimited
    size_t history_limit = 64;    // finished jobs kept for SHOW JOBS
  };

  JobScheduler();  // default Options
  explicit JobScheduler(Options options);
  ~JobScheduler();  // implies Stop()

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  void Start();
  void Stop();
  bool running() const;

  // Enqueues a one-shot job; runs as soon as a worker, the key and the rate
  // budget allow. Returns the job id (or the pending duplicate's id when
  // coalesced), or 0 when rejected because Stop() is in progress.
  uint64_t Submit(const std::string& key, const std::string& type,
                  std::function<Status()> fn);

  // Enqueues a periodic job; first run one period from now, then one period
  // after each completion (fixed delay, so runs never overlap themselves).
  uint64_t SubmitPeriodic(const std::string& key, const std::string& type,
                          std::chrono::milliseconds period,
                          std::function<Status()> fn);

  // Cancels a pending job (running jobs finish). True if it was pending.
  bool Cancel(uint64_t id);

  // Cancels every pending job with `key` and blocks until no job with that
  // key is running. Used before dropping a series.
  void Quiesce(const std::string& key);

  // Blocks until every one-shot job has finished and no job is running
  // (periodic jobs stay scheduled). Test synchronization aid.
  void Drain();

  // Pending and running jobs first (by id), then the most recent finished
  // jobs from the bounded history, oldest first.
  std::vector<JobInfo> ListJobs() const;

  size_t queue_depth() const;

 private:
  struct Job {
    uint64_t id = 0;
    std::string key;
    std::string type;
    std::function<Status()> fn;
    bool periodic = false;
    std::chrono::steady_clock::duration period{};
    std::chrono::steady_clock::time_point next_run{};
    JobState state = JobState::kPending;
    uint64_t runs = 0;
    double last_millis = 0.0;
    std::string last_status;
  };

  void WorkerLoop();
  // Moves a finished/cancelled job snapshot into the bounded history ring.
  void ArchiveLocked(const Job& job, JobState final_state);
  static JobInfo InfoOf(const Job& job);
  void UpdateQueueGaugeLocked() const;

  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here
  std::condition_variable idle_cv_;  // Quiesce/Drain wait here
  bool running_ = false;
  bool stopping_ = false;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Job> jobs_;     // pending + running
  std::set<std::string> running_keys_;
  size_t num_running_ = 0;
  std::deque<JobInfo> history_;      // most recent finished jobs, newest last
  // Token bucket (guarded by mutex_): tokens accrue at max_jobs_per_sec up
  // to a one-second burst.
  double tokens_ = 0;
  std::chrono::steady_clock::time_point tokens_updated_{};
  std::vector<std::thread> workers_;
};

}  // namespace tsviz::bg

#endif  // TSVIZ_BG_JOB_SCHEDULER_H_
