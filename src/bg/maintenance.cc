#include "bg/maintenance.h"

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsviz::bg {

namespace {

// Each job type gets its own duration histogram; the shared trace span
// names (bg_flush/bg_compact/bg_ttl/bg_tick) mirror them so EXPLAIN-style
// tooling and the metrics catalog agree.
obs::Histogram& FlushMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_flush_millis", "Background flush job duration (ms)");
  return h;
}
obs::Histogram& CompactMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_compact_millis", "Background compaction job duration (ms)");
  return h;
}
obs::Histogram& TtlMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_ttl_millis", "Background TTL expiry job duration (ms)");
  return h;
}
obs::Histogram& TickMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_tick_millis", "Maintenance policy tick duration (ms)");
  return h;
}
obs::Gauge& MemtableBytesGauge() {
  static obs::Gauge& g = obs::GetGauge(
      "bg_memtable_bytes",
      "Approximate memtable bytes across all series, sampled per tick");
  return g;
}

// Runs `fn` under a one-job trace whose only span is `span_name`, observing
// the duration into `hist`.
Status TimedJob(const char* span_name, obs::Histogram& hist,
                const std::function<Status()>& fn) {
  obs::Trace trace("bg_job");
  const auto start = std::chrono::steady_clock::now();
  Status status;
  {
    obs::TraceSpan span(&trace, span_name);
    status = fn();
  }
  hist.Observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  return status;
}

}  // namespace

MaintenanceManager::MaintenanceManager(StoreCatalog* catalog,
                                       MaintenanceOptions options)
    : catalog_(catalog),
      options_(options),
      memtable_flush_bytes_(options.memtable_flush_bytes),
      compaction_files_(options.compaction_files),
      ttl_(options.ttl),
      scheduler_(JobScheduler::Options{
          options.workers, options.max_jobs_per_sec, /*history_limit=*/64}) {}

MaintenanceManager::~MaintenanceManager() { Stop(); }

void MaintenanceManager::Start() {
  if (scheduler_.running()) return;
  scheduler_.Start();
  if (options_.enabled) {
    scheduler_.SubmitPeriodic(
        /*key=*/"", "tick", options_.tick_interval, [this] {
          return TimedJob("bg_tick", TickMillis(), [this] {
            Tick();
            return Status::OK();
          });
        });
  }
}

void MaintenanceManager::Stop() { scheduler_.Stop(); }

uint64_t MaintenanceManager::ScheduleFlush(const std::string& series,
                                           std::shared_ptr<TsStore> store) {
  return scheduler_.Submit(series, "flush", [store = std::move(store)] {
    return TimedJob("bg_flush", FlushMillis(),
                    [&store] { return store->Flush(); });
  });
}

uint64_t MaintenanceManager::ScheduleCompact(const std::string& series,
                                             std::shared_ptr<TsStore> store) {
  return scheduler_.Submit(series, "compact", [store = std::move(store)] {
    return TimedJob("bg_compact", CompactMillis(),
                    [&store] { return store->Compact(); });
  });
}

uint64_t MaintenanceManager::ScheduleTtl(const std::string& series,
                                         std::shared_ptr<TsStore> store,
                                         int64_t ttl) {
  return scheduler_.Submit(
      series, "ttl", [this, series, store = std::move(store), ttl] {
        bool expired = false;
        Status status = TimedJob("bg_ttl", TtlMillis(), [&store, ttl, &expired] {
          return store->ExpireTtl(ttl, &expired);
        });
        // A tombstone shrinks the live data but not the chunk-metadata
        // intervals the tick's pre-checks look at; chase it with a reclaim
        // compaction so the policy converges instead of re-enqueueing the
        // (no-op) expiry forever. Submitting from inside a job is safe —
        // the scheduler lock is not held while callbacks run — and `this`
        // outlives every callback because Stop() joins before the manager
        // is destroyed.
        if (status.ok() && expired) ScheduleCompact(series, store);
        return status;
      });
}

size_t MaintenanceManager::Tick() {
  const size_t flush_bytes = memtable_flush_bytes_.load();
  const size_t compact_files = compaction_files_.load();
  const int64_t ttl = ttl_.load();
  size_t enqueued = 0;
  double memtable_bytes_total = 0;
  for (auto& [name, store] : catalog_->ListStoresForMaintenance()) {
    const size_t mem_bytes = store->memtable_bytes();
    memtable_bytes_total += static_cast<double>(mem_bytes);

    if (flush_bytes > 0 && mem_bytes >= flush_bytes) {
      ScheduleFlush(name, store);
      ++enqueued;
    }
    if (ttl > 0) {
      // Cheap snapshot pre-check: only enqueue when data actually sits
      // below the watermark (ExpireTtl itself re-checks under its lock).
      const TimeRange interval = store->DataInterval();
      if (!interval.Empty() && interval.end >= kMinTimestamp + ttl &&
          interval.end - ttl > interval.start) {
        // The expiry tombstone and the reclaim compaction are separate
        // jobs; coalescing keeps each at most once in the queue.
        ScheduleTtl(name, store, ttl);
        ++enqueued;
      }
      if (store->CountFullyExpiredFiles(ttl) > 0) {
        ScheduleCompact(name, store);
        ++enqueued;
      }
    }
    const size_t num_files = store->NumFiles();
    if (compact_files > 0 && num_files >= compact_files) {
      ScheduleCompact(name, store);
      ++enqueued;
    } else if (options_.compaction_overlap > 0 && num_files > 1 &&
               store->OverlapFraction() >= options_.compaction_overlap) {
      ScheduleCompact(name, store);
      ++enqueued;
    }
  }
  MemtableBytesGauge().Set(memtable_bytes_total);
  return enqueued;
}

}  // namespace tsviz::bg
