#include "bg/maintenance.h"

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace tsviz::bg {

namespace {

// Each job type gets its own duration histogram; the shared trace span
// names (bg_flush/bg_compact/bg_ttl/bg_tick) mirror them so EXPLAIN-style
// tooling and the metrics catalog agree.
obs::Histogram& FlushMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_flush_millis", "Background flush job duration (ms)");
  return h;
}
obs::Histogram& CompactMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_compact_millis", "Background compaction job duration (ms)");
  return h;
}
obs::Histogram& TtlMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_ttl_millis", "Background TTL expiry job duration (ms)");
  return h;
}
obs::Histogram& TickMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "bg_tick_millis", "Maintenance policy tick duration (ms)");
  return h;
}
obs::Gauge& MemtableBytesGauge() {
  static obs::Gauge& g = obs::GetGauge(
      "bg_memtable_bytes",
      "Approximate memtable bytes across all series, sampled per tick");
  return g;
}

// Runs `fn` under a one-job trace whose only span is `span_name`, observing
// the duration into `hist`. With a non-empty `detail` ("flush <series>"),
// the run also lands in the flight recorder as a bg_job event carrying the
// trace — so DUMP TRACE shows background work on its worker threads. The
// policy tick passes an empty detail: recording every tick would drown the
// ring in no-op events.
Status TimedJob(const char* span_name, obs::Histogram& hist,
                const std::string& detail,
                const std::function<Status()>& fn) {
  auto trace = std::make_shared<obs::Trace>("bg_job");
  const auto start = std::chrono::steady_clock::now();
  Status status;
  {
    obs::TraceSpan span(trace.get(), span_name);
    status = fn();
  }
  const double millis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  hist.Observe(millis);
  if (status.code() == StatusCode::kIoError ||
      status.code() == StatusCode::kCorruption) {
    static obs::Counter& io_failures = obs::GetCounter(
        "bg_job_io_failures_total",
        "Background jobs that failed with an I/O or corruption error");
    io_failures.Inc();
  }
  if (!detail.empty()) {
    trace->root().millis = millis;
    obs::RecordedEvent event;
    event.kind = obs::EventKind::kBgJob;
    event.millis = millis;
    event.statement = detail;
    event.status = status.ok() ? "OK" : status.ToString();
    event.trace = std::move(trace);
    obs::FlightRecorder::Instance().Record(std::move(event));
  }
  return status;
}

}  // namespace

MaintenanceManager::MaintenanceManager(StoreCatalog* catalog,
                                       MaintenanceOptions options)
    : catalog_(catalog),
      options_(options),
      memtable_flush_bytes_(options.memtable_flush_bytes),
      compaction_files_(options.compaction_files),
      ttl_(options.ttl),
      scheduler_(JobScheduler::Options{
          options.workers, options.max_jobs_per_sec, /*history_limit=*/64}) {}

MaintenanceManager::~MaintenanceManager() { Stop(); }

void MaintenanceManager::Start() {
  if (scheduler_.running()) return;
  scheduler_.Start();
  if (options_.enabled) {
    scheduler_.SubmitPeriodic(
        /*key=*/"", "tick", options_.tick_interval, [this] {
          return TimedJob("bg_tick", TickMillis(), /*detail=*/"", [this] {
            Tick();
            return Status::OK();
          });
        });
  }
}

void MaintenanceManager::Stop() { scheduler_.Stop(); }

uint64_t MaintenanceManager::ScheduleFlush(const std::string& series,
                                           std::shared_ptr<TsStore> store) {
  return scheduler_.Submit(series, "flush", [series,
                                             store = std::move(store)] {
    return TimedJob("bg_flush", FlushMillis(), "flush " + series,
                    [&store] { return store->Flush(); });
  });
}

uint64_t MaintenanceManager::ScheduleCompact(const std::string& series,
                                             std::shared_ptr<TsStore> store) {
  return scheduler_.Submit(series, "compact", [series,
                                               store = std::move(store)] {
    return TimedJob("bg_compact", CompactMillis(), "compact " + series,
                    [&store] { return store->Compact(); });
  });
}

uint64_t MaintenanceManager::ScheduleCompactPartition(
    const std::string& series, std::shared_ptr<TsStore> store,
    int64_t partition_index) {
  return scheduler_.Submit(
      series, "compact:p" + std::to_string(partition_index),
      [series, store = std::move(store), partition_index] {
        return TimedJob(
            "bg_compact", CompactMillis(),
            "compact:p" + std::to_string(partition_index) + " " + series,
            [&store, partition_index] {
              return store->CompactPartition(partition_index);
            });
      });
}

uint64_t MaintenanceManager::ScheduleTtl(const std::string& series,
                                         std::shared_ptr<TsStore> store,
                                         int64_t ttl) {
  return scheduler_.Submit(
      series, "ttl", [this, series, store = std::move(store), ttl] {
        bool expired = false;
        Status status = TimedJob("bg_ttl", TtlMillis(), "ttl " + series,
                                 [&store, ttl, &expired] {
                                   return store->ExpireTtl(ttl, &expired);
                                 });
        // A tombstone shrinks the live data but not the chunk-metadata
        // intervals the tick's pre-checks look at; chase it with a reclaim
        // compaction so the policy converges instead of re-enqueueing the
        // (no-op) expiry forever. On a partitioned store the fully-expired
        // partitions were just unlinked wholesale, so only the partial
        // boundary partition — now the oldest one left — needs rewriting.
        // Submitting from inside a job is safe — the scheduler lock is not
        // held while callbacks run — and `this` outlives every callback
        // because Stop() joins before the manager is destroyed.
        if (status.ok() && expired) {
          const TimeRange interval = store->DataInterval();
          if (store->partition_interval() > 0 && !interval.Empty()) {
            ScheduleCompactPartition(series, store,
                                     store->PartitionIndexFor(interval.start));
          } else {
            ScheduleCompact(series, store);
          }
        }
        return status;
      });
}

size_t MaintenanceManager::Tick() {
  const size_t flush_bytes = memtable_flush_bytes_.load();
  const size_t compact_files = compaction_files_.load();
  const int64_t ttl = ttl_.load();
  size_t enqueued = 0;
  double memtable_bytes_total = 0;
  // Shard-by-shard walk: each ListShardStoresForMaintenance snapshot takes
  // one shard lock, so a tick over a large catalog never blocks lookups on
  // more than one shard at a time. Per-store trigger semantics are
  // unchanged from the single-map days.
  const size_t num_shards = catalog_->NumMaintenanceShards();
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (auto& [name, store] :
         catalog_->ListShardStoresForMaintenance(shard)) {
      enqueued += TickStore(name, store, flush_bytes, compact_files, ttl,
                            &memtable_bytes_total);
    }
  }
  MemtableBytesGauge().Set(memtable_bytes_total);
  return enqueued;
}

size_t MaintenanceManager::TickStore(const std::string& name,
                                     const std::shared_ptr<TsStore>& store,
                                     size_t flush_bytes, size_t compact_files,
                                     int64_t ttl,
                                     double* memtable_bytes_total) {
  size_t enqueued = 0;
  const size_t mem_bytes = store->memtable_bytes();
  *memtable_bytes_total += static_cast<double>(mem_bytes);

  if (flush_bytes > 0 && mem_bytes >= flush_bytes) {
    ScheduleFlush(name, store);
    ++enqueued;
  }
  // Evaluate every trigger before enqueueing anything: a worker may run
  // the first job (and its chase compaction) while this tick is still
  // inspecting the store, and decisions taken from the post-job state
  // would drop triggers the pre-job state warranted.
  const bool partitioned = store->partition_interval() > 0;
  const TimeRange interval = store->DataInterval();
  // Cheap snapshot pre-check: only enqueue when data actually sits
  // below the watermark (ExpireTtl itself re-checks under its lock).
  const bool want_ttl =
      ttl > 0 && !interval.Empty() && interval.end >= kMinTimestamp + ttl &&
      (interval.end - ttl > interval.start ||
       (partitioned && store->CountFullyExpiredPartitions(ttl) > 0));
  // Fully-expired flat files are reclaimed by a compaction chasing the
  // expiry tombstone; fully-expired partitions are unlinked by the
  // expiry job itself, so `want_ttl` already covers them.
  const bool want_expiry_compact =
      ttl > 0 && !partitioned && store->CountFullyExpiredFiles(ttl) > 0;
  std::vector<int64_t> hot_partitions;
  if (partitioned && compact_files > 0) {
    // Per-partition trigger: a partition accumulating files compacts
    // alone; cold partitions are never rewritten on its account.
    // Named view: the range-init temporary would drop the state snapshot
    // before the loop body runs (C++17 range-for lifetime rules).
    const StoreView view = store->CurrentView();
    for (const StorePartition& part : view.partitions()) {
      if (part.files.size() >= compact_files) {
        hot_partitions.push_back(part.index);
      }
    }
  }
  const size_t num_files = store->NumFiles();
  const bool want_flat_compact =
      want_expiry_compact ||
      (!partitioned && compact_files > 0 && num_files >= compact_files) ||
      (options_.compaction_overlap > 0 && num_files > 1 &&
       store->OverlapFraction() >= options_.compaction_overlap);

  if (want_ttl) {
    // The expiry tombstone and the reclaim compaction are separate
    // jobs; coalescing keeps each at most once in the queue.
    ScheduleTtl(name, store, ttl);
    ++enqueued;
  }
  for (int64_t index : hot_partitions) {
    ScheduleCompactPartition(name, store, index);
    ++enqueued;
  }
  if (want_flat_compact) {
    ScheduleCompact(name, store);
    ++enqueued;
  }
  return enqueued;
}

}  // namespace tsviz::bg
