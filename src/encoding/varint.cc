#include "encoding/varint.h"

namespace tsviz {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

Result<uint64_t> GetVarint64(std::string_view* src) {
  uint64_t value = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (src->empty()) return Status::Corruption("truncated varint");
    uint8_t byte = static_cast<uint8_t>(src->front());
    src->remove_prefix(1);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return Status::Corruption("varint too long");
}

Result<uint32_t> GetVarint32(std::string_view* src) {
  TSVIZ_ASSIGN_OR_RETURN(uint64_t value, GetVarint64(src));
  if (value > 0xffffffffull) return Status::Corruption("varint32 overflow");
  return static_cast<uint32_t>(value);
}

void PutFixed32(std::string* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

Result<uint32_t> GetFixed32(std::string_view* src) {
  if (src->size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>((*src)[i])) << (8 * i);
  }
  src->remove_prefix(4);
  return value;
}

Result<uint64_t> GetFixed64(std::string_view* src) {
  if (src->size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>((*src)[i])) << (8 * i);
  }
  src->remove_prefix(8);
  return value;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Result<std::string_view> GetLengthPrefixed(std::string_view* src) {
  TSVIZ_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(src));
  if (src->size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  std::string_view out = src->substr(0, len);
  src->remove_prefix(len);
  return out;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace tsviz
