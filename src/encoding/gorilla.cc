#include "encoding/gorilla.h"

#include <bit>
#include <cstring>

#include "encoding/bit_stream.h"

namespace tsviz {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Status EncodeGorilla(const std::vector<Value>& values, std::string* dst) {
  if (values.empty()) return Status::OK();
  BitWriter writer;
  uint64_t prev = DoubleToBits(values[0]);
  writer.WriteBits(prev, 64);
  int prev_leading = -1;   // leading zeros of the previous XOR window
  int prev_trailing = -1;  // trailing zeros of the previous XOR window
  for (size_t i = 1; i < values.size(); ++i) {
    uint64_t bits = DoubleToBits(values[i]);
    uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      writer.WriteBit(false);  // control '0': same value
      continue;
    }
    writer.WriteBit(true);
    int leading = std::countl_zero(x);
    int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      // Control '10': meaningful bits fit inside the previous window.
      writer.WriteBit(false);
      int meaningful = 64 - prev_leading - prev_trailing;
      writer.WriteBits(x >> prev_trailing, meaningful);
    } else {
      // Control '11': new window = 5-bit leading count + 6-bit length.
      writer.WriteBit(true);
      int meaningful = 64 - leading - trailing;
      writer.WriteBits(static_cast<uint64_t>(leading), 5);
      // meaningful is in [1, 64]; store 64 as 0 in the 6-bit field.
      writer.WriteBits(static_cast<uint64_t>(meaningful & 63), 6);
      writer.WriteBits(x >> trailing, meaningful);
      prev_leading = leading;
      prev_trailing = trailing;
    }
  }
  dst->append(writer.Finish());
  return Status::OK();
}

Status DecodeGorilla(std::string_view src, size_t count,
                     std::vector<Value>* out) {
  out->clear();
  if (count == 0) return Status::OK();
  out->reserve(count);
  BitReader reader(src);
  TSVIZ_ASSIGN_OR_RETURN(uint64_t prev, reader.ReadBits(64));
  out->push_back(BitsToDouble(prev));
  int prev_leading = -1;
  int prev_trailing = -1;
  for (size_t i = 1; i < count; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(bool changed, reader.ReadBit());
    if (!changed) {
      out->push_back(BitsToDouble(prev));
      continue;
    }
    TSVIZ_ASSIGN_OR_RETURN(bool new_window, reader.ReadBit());
    int leading;
    int meaningful;
    if (new_window) {
      TSVIZ_ASSIGN_OR_RETURN(uint64_t lead_bits, reader.ReadBits(5));
      TSVIZ_ASSIGN_OR_RETURN(uint64_t len_bits, reader.ReadBits(6));
      leading = static_cast<int>(lead_bits);
      meaningful = len_bits == 0 ? 64 : static_cast<int>(len_bits);
      prev_leading = leading;
      prev_trailing = 64 - leading - meaningful;
      if (prev_trailing < 0) return Status::Corruption("bad gorilla window");
    } else {
      if (prev_leading < 0) {
        return Status::Corruption("gorilla reuse before any window");
      }
      leading = prev_leading;
      meaningful = 64 - prev_leading - prev_trailing;
    }
    TSVIZ_ASSIGN_OR_RETURN(uint64_t payload, reader.ReadBits(meaningful));
    uint64_t x = payload << prev_trailing;
    prev ^= x;
    out->push_back(BitsToDouble(prev));
  }
  return Status::OK();
}

}  // namespace tsviz
