#ifndef TSVIZ_ENCODING_VARINT_H_
#define TSVIZ_ENCODING_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tsviz {

// LEB128-style variable-length integers plus zigzag mapping for signed
// values. These are the primitives of the file footer and the timestamp
// codec.

void PutVarint64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);

// Reads one varint from the front of *src, advancing it. Fails with
// kCorruption on truncated or over-long input.
Result<uint64_t> GetVarint64(std::string_view* src);
Result<uint32_t> GetVarint32(std::string_view* src);

inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

inline void PutSignedVarint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

inline Result<int64_t> GetSignedVarint64(std::string_view* src) {
  TSVIZ_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(src));
  return ZigZagDecode(raw);
}

// Little-endian fixed-width helpers (file format primitives).
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
Result<uint32_t> GetFixed32(std::string_view* src);
Result<uint64_t> GetFixed64(std::string_view* src);

// Length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);
Result<std::string_view> GetLengthPrefixed(std::string_view* src);

// FNV-1a 64-bit checksum used to detect page/footer corruption.
uint64_t Fnv1a64(std::string_view data);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_VARINT_H_
