#include "encoding/ts2diff.h"

#include "encoding/varint.h"

namespace tsviz {

Status EncodeTs2Diff(const std::vector<Timestamp>& timestamps,
                     std::string* dst) {
  if (timestamps.empty()) return Status::OK();
  PutFixed64(dst, static_cast<uint64_t>(timestamps[0]));
  int64_t prev_delta = 0;
  for (size_t i = 1; i < timestamps.size(); ++i) {
    if (timestamps[i] <= timestamps[i - 1]) {
      return Status::InvalidArgument(
          "timestamps must be strictly increasing within a chunk");
    }
    int64_t delta = timestamps[i] - timestamps[i - 1];
    PutSignedVarint64(dst, delta - prev_delta);
    prev_delta = delta;
  }
  return Status::OK();
}

Status DecodeTs2Diff(std::string_view* src, size_t count,
                     std::vector<Timestamp>* out) {
  out->clear();
  if (count == 0) return Status::OK();
  out->reserve(count);
  TSVIZ_ASSIGN_OR_RETURN(uint64_t first, GetFixed64(src));
  Timestamp prev = static_cast<Timestamp>(first);
  out->push_back(prev);
  int64_t prev_delta = 0;
  for (size_t i = 1; i < count; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(int64_t dd, GetSignedVarint64(src));
    int64_t delta = prev_delta + dd;
    if (delta <= 0) return Status::Corruption("non-increasing timestamp");
    prev += delta;
    prev_delta = delta;
    out->push_back(prev);
  }
  return Status::OK();
}

}  // namespace tsviz
