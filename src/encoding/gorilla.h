#ifndef TSVIZ_ENCODING_GORILLA_H_
#define TSVIZ_ENCODING_GORILLA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Gorilla XOR compression for doubles (Pelkonen et al., VLDB 2015), the
// scheme IoTDB and most TSDBs use for float values: each value is XORed with
// its predecessor; identical values cost 1 bit, values with a shared
// leading/trailing-zero window cost a few bits plus the meaningful payload.

// Appends the encoding of `values` to dst.
Status EncodeGorilla(const std::vector<Value>& values, std::string* dst);

// Decodes exactly `count` values from `src` (the whole buffer belongs to this
// block; bit padding at the tail is ignored).
Status DecodeGorilla(std::string_view src, size_t count,
                     std::vector<Value>* out);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_GORILLA_H_
