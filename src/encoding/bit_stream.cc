#include "encoding/bit_stream.h"

namespace tsviz {

void BitWriter::WriteBits(uint64_t value, int bits) {
  if (bits <= 0) return;
  if (bits < 64) value &= (uint64_t{1} << bits) - 1;
  for (int i = bits - 1; i >= 0; --i) {
    if (bits_in_last_ == 0) bytes_.push_back('\0');
    uint8_t bit = static_cast<uint8_t>((value >> i) & 1);
    bytes_.back() = static_cast<char>(
        static_cast<uint8_t>(bytes_.back()) |
        static_cast<uint8_t>(bit << (7 - bits_in_last_)));
    bits_in_last_ = (bits_in_last_ + 1) % 8;
  }
  bit_count_ += static_cast<size_t>(bits);
}

std::string BitWriter::Finish() {
  bits_in_last_ = 0;
  return std::move(bytes_);
}

Result<uint64_t> BitReader::ReadBits(int bits) {
  if (bits < 0 || bits > 64) {
    return Status::InvalidArgument("bit count out of range");
  }
  if (static_cast<size_t>(bits) > bits_remaining()) {
    return Status::Corruption("bit stream exhausted");
  }
  uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    size_t byte = pos_ / 8;
    int offset = static_cast<int>(pos_ % 8);
    uint8_t bit =
        (static_cast<uint8_t>(data_[byte]) >> (7 - offset)) & 1;
    out = (out << 1) | bit;
    ++pos_;
  }
  return out;
}

Result<bool> BitReader::ReadBit() {
  TSVIZ_ASSIGN_OR_RETURN(uint64_t bit, ReadBits(1));
  return bit != 0;
}

}  // namespace tsviz
