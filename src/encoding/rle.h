#ifndef TSVIZ_ENCODING_RLE_H_
#define TSVIZ_ENCODING_RLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Run-length value codec: runs of bit-identical doubles become one
// (varint length, fixed64 bits) pair. Ideal for status-like IoT channels
// that hold a value for long stretches (the RcvTime shape); degrades to
// 9 bytes/point on noisy data, so Gorilla remains the default.

Status EncodeRle(const std::vector<Value>& values, std::string* dst);

Status DecodeRle(std::string_view src, size_t count,
                 std::vector<Value>* out);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_RLE_H_
