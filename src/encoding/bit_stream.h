#ifndef TSVIZ_ENCODING_BIT_STREAM_H_
#define TSVIZ_ENCODING_BIT_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tsviz {

// Append-only MSB-first bit writer over a byte buffer. Used by the Gorilla
// value codec, which emits sub-byte control codes.
class BitWriter {
 public:
  BitWriter() = default;

  // Appends the lowest `bits` bits of `value`, most significant bit first.
  void WriteBits(uint64_t value, int bits);
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  // Pads the current byte with zero bits and returns the buffer.
  std::string Finish();

  size_t bit_count() const { return bit_count_; }

 private:
  std::string bytes_;
  int bits_in_last_ = 0;  // number of valid bits in the last byte (0..7)
  size_t bit_count_ = 0;
};

// MSB-first bit reader over a byte view. Reads past the end are reported via
// Status rather than undefined behaviour so corrupt pages fail cleanly.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  Result<uint64_t> ReadBits(int bits);
  Result<bool> ReadBit();

  size_t bits_consumed() const { return pos_; }
  size_t bits_remaining() const { return data_.size() * 8 - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;  // bit offset from the start of data_
};

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_BIT_STREAM_H_
