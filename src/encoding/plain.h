#ifndef TSVIZ_ENCODING_PLAIN_H_
#define TSVIZ_ENCODING_PLAIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Uncompressed little-endian codecs; the baseline for the encoding bench and
// the fallback when compression is disabled in StoreConfig.

Status EncodePlainTimestamps(const std::vector<Timestamp>& timestamps,
                             std::string* dst);
Status DecodePlainTimestamps(std::string_view* src, size_t count,
                             std::vector<Timestamp>* out);

Status EncodePlainValues(const std::vector<Value>& values, std::string* dst);
Status DecodePlainValues(std::string_view src, size_t count,
                         std::vector<Value>* out);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_PLAIN_H_
