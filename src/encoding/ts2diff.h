#ifndef TSVIZ_ENCODING_TS2DIFF_H_
#define TSVIZ_ENCODING_TS2DIFF_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Delta-of-delta timestamp codec (IoTDB's TS_2DIFF spirit): the first
// timestamp is stored raw, the first delta as a zigzag varint, and every
// subsequent value as the zigzag varint of (delta - previous delta). Regular
// sensor timestamps compress to ~1 byte/point, so decoding a chunk has a real
// CPU cost while storage stays compact — the asymmetry the paper's
// merge-free design exploits.

// Appends the encoding of `timestamps` (must be strictly increasing) to dst.
Status EncodeTs2Diff(const std::vector<Timestamp>& timestamps,
                     std::string* dst);

// Decodes exactly `count` timestamps from the front of *src, advancing it.
Status DecodeTs2Diff(std::string_view* src, size_t count,
                     std::vector<Timestamp>* out);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_TS2DIFF_H_
