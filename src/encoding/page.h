#ifndef TSVIZ_ENCODING_PAGE_H_
#define TSVIZ_ENCODING_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Codec selectors recorded per page, so readers never guess.
enum class TsCodec : uint8_t { kPlain = 0, kTs2Diff = 1 };
enum class ValueCodec : uint8_t { kPlain = 0, kGorilla = 1, kRle = 2 };

// A page is the unit of decompression: a run of consecutive points encoded
// as one timestamp block plus one value block, with a checksum. Chunks are
// sequences of pages; partial scans decode only the pages they touch.
//
// Wire layout:
//   varint   point count
//   u8       timestamp codec
//   u8       value codec
//   fixed64  min timestamp
//   fixed64  max timestamp
//   varint + bytes  timestamp block
//   varint + bytes  value block
//   fixed64  FNV-1a checksum of everything above

// Directory entry describing one page inside a chunk blob; stored in the
// chunk metadata so readers can seek to and decode a single page.
struct PageInfo {
  uint32_t count = 0;
  Timestamp min_t = 0;
  Timestamp max_t = 0;
  uint32_t offset = 0;  // byte offset of the page within the chunk blob
  uint32_t length = 0;  // encoded byte length of the page

  friend bool operator==(const PageInfo&, const PageInfo&) = default;
};

// Encodes `points` (sorted, strictly increasing timestamps, non-empty) as one
// page appended to *dst. On success fills *info (offset relative to the dst
// size before the call).
Status EncodePage(const Point* points, size_t count, TsCodec ts_codec,
                  ValueCodec value_codec, std::string* dst, PageInfo* info);

// Decodes the page stored in `src` (exactly one page's bytes) into *out
// (points are appended). Verifies the checksum.
Status DecodePage(std::string_view src, std::vector<Point>* out);

}  // namespace tsviz

#endif  // TSVIZ_ENCODING_PAGE_H_
