#include "encoding/plain.h"

#include <cstring>

#include "encoding/varint.h"

namespace tsviz {

Status EncodePlainTimestamps(const std::vector<Timestamp>& timestamps,
                             std::string* dst) {
  for (Timestamp t : timestamps) {
    PutFixed64(dst, static_cast<uint64_t>(t));
  }
  return Status::OK();
}

Status DecodePlainTimestamps(std::string_view* src, size_t count,
                             std::vector<Timestamp>* out) {
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(uint64_t raw, GetFixed64(src));
    out->push_back(static_cast<Timestamp>(raw));
  }
  return Status::OK();
}

Status EncodePlainValues(const std::vector<Value>& values, std::string* dst) {
  for (Value v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(dst, bits);
  }
  return Status::OK();
}

Status DecodePlainValues(std::string_view src, size_t count,
                         std::vector<Value>* out) {
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TSVIZ_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64(&src));
    Value v;
    std::memcpy(&v, &bits, sizeof(v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace tsviz
