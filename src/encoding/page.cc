#include "encoding/page.h"

#include "encoding/gorilla.h"
#include "encoding/plain.h"
#include "encoding/rle.h"
#include "encoding/ts2diff.h"
#include "encoding/varint.h"

namespace tsviz {

Status EncodePage(const Point* points, size_t count, TsCodec ts_codec,
                  ValueCodec value_codec, std::string* dst, PageInfo* info) {
  if (count == 0) return Status::InvalidArgument("empty page");
  const size_t start = dst->size();

  std::vector<Timestamp> timestamps(count);
  std::vector<Value> values(count);
  for (size_t i = 0; i < count; ++i) {
    timestamps[i] = points[i].t;
    values[i] = points[i].v;
  }

  std::string body;
  PutVarint64(&body, count);
  body.push_back(static_cast<char>(ts_codec));
  body.push_back(static_cast<char>(value_codec));
  PutFixed64(&body, static_cast<uint64_t>(timestamps.front()));
  PutFixed64(&body, static_cast<uint64_t>(timestamps.back()));

  std::string ts_block;
  switch (ts_codec) {
    case TsCodec::kPlain:
      TSVIZ_RETURN_IF_ERROR(EncodePlainTimestamps(timestamps, &ts_block));
      break;
    case TsCodec::kTs2Diff:
      TSVIZ_RETURN_IF_ERROR(EncodeTs2Diff(timestamps, &ts_block));
      break;
  }
  PutLengthPrefixed(&body, ts_block);

  std::string value_block;
  switch (value_codec) {
    case ValueCodec::kPlain:
      TSVIZ_RETURN_IF_ERROR(EncodePlainValues(values, &value_block));
      break;
    case ValueCodec::kGorilla:
      TSVIZ_RETURN_IF_ERROR(EncodeGorilla(values, &value_block));
      break;
    case ValueCodec::kRle:
      TSVIZ_RETURN_IF_ERROR(EncodeRle(values, &value_block));
      break;
  }
  PutLengthPrefixed(&body, value_block);

  PutFixed64(&body, Fnv1a64(body));
  dst->append(body);

  if (info != nullptr) {
    info->count = static_cast<uint32_t>(count);
    info->min_t = timestamps.front();
    info->max_t = timestamps.back();
    info->offset = static_cast<uint32_t>(start);
    info->length = static_cast<uint32_t>(dst->size() - start);
  }
  return Status::OK();
}

Status DecodePage(std::string_view src, std::vector<Point>* out) {
  if (src.size() < 8) return Status::Corruption("page too small");
  std::string_view body = src.substr(0, src.size() - 8);
  std::string_view checksum_view = src.substr(src.size() - 8);
  TSVIZ_ASSIGN_OR_RETURN(uint64_t stored_checksum,
                         GetFixed64(&checksum_view));
  if (Fnv1a64(body) != stored_checksum) {
    return Status::Corruption("page checksum mismatch");
  }

  TSVIZ_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&body));
  if (body.size() < 2) return Status::Corruption("truncated page header");
  auto ts_codec = static_cast<TsCodec>(body[0]);
  auto value_codec = static_cast<ValueCodec>(body[1]);
  body.remove_prefix(2);
  // min/max timestamps: validated against decoded data below.
  TSVIZ_ASSIGN_OR_RETURN(uint64_t min_raw, GetFixed64(&body));
  TSVIZ_ASSIGN_OR_RETURN(uint64_t max_raw, GetFixed64(&body));

  TSVIZ_ASSIGN_OR_RETURN(std::string_view ts_block, GetLengthPrefixed(&body));
  TSVIZ_ASSIGN_OR_RETURN(std::string_view value_block,
                         GetLengthPrefixed(&body));

  std::vector<Timestamp> timestamps;
  switch (ts_codec) {
    case TsCodec::kPlain: {
      std::string_view cursor = ts_block;
      TSVIZ_RETURN_IF_ERROR(DecodePlainTimestamps(&cursor, count,
                                                  &timestamps));
      break;
    }
    case TsCodec::kTs2Diff: {
      std::string_view cursor = ts_block;
      TSVIZ_RETURN_IF_ERROR(DecodeTs2Diff(&cursor, count, &timestamps));
      break;
    }
    default:
      return Status::Corruption("unknown timestamp codec");
  }

  std::vector<Value> values;
  switch (value_codec) {
    case ValueCodec::kPlain:
      TSVIZ_RETURN_IF_ERROR(DecodePlainValues(value_block, count, &values));
      break;
    case ValueCodec::kGorilla:
      TSVIZ_RETURN_IF_ERROR(DecodeGorilla(value_block, count, &values));
      break;
    case ValueCodec::kRle:
      TSVIZ_RETURN_IF_ERROR(DecodeRle(value_block, count, &values));
      break;
    default:
      return Status::Corruption("unknown value codec");
  }

  if (timestamps.size() != count || values.size() != count || count == 0) {
    return Status::Corruption("page block size mismatch");
  }
  if (timestamps.front() != static_cast<Timestamp>(min_raw) ||
      timestamps.back() != static_cast<Timestamp>(max_raw)) {
    return Status::Corruption("page time bounds mismatch");
  }

  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(Point{timestamps[i], values[i]});
  }
  return Status::OK();
}

}  // namespace tsviz
