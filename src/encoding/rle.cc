#include "encoding/rle.h"

#include <cstring>

#include "encoding/varint.h"

namespace tsviz {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Status EncodeRle(const std::vector<Value>& values, std::string* dst) {
  size_t i = 0;
  while (i < values.size()) {
    uint64_t bits = DoubleToBits(values[i]);
    size_t run = 1;
    while (i + run < values.size() &&
           DoubleToBits(values[i + run]) == bits) {
      ++run;
    }
    PutVarint64(dst, run);
    PutFixed64(dst, bits);
    i += run;
  }
  return Status::OK();
}

Status DecodeRle(std::string_view src, size_t count,
                 std::vector<Value>* out) {
  out->clear();
  out->reserve(count);
  while (out->size() < count) {
    TSVIZ_ASSIGN_OR_RETURN(uint64_t run, GetVarint64(&src));
    if (run == 0 || run > count - out->size()) {
      return Status::Corruption("rle run overflows value count");
    }
    TSVIZ_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64(&src));
    out->insert(out->end(), run, BitsToDouble(bits));
  }
  return Status::OK();
}

}  // namespace tsviz
