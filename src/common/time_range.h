#ifndef TSVIZ_COMMON_TIME_RANGE_H_
#define TSVIZ_COMMON_TIME_RANGE_H_

#include <algorithm>
#include <string>

#include "common/types.h"

namespace tsviz {

// Closed time interval [start, end]. This is the shape of both a delete's
// time range (Definition 2.5: t is covered iff tds <= t <= tde) and a chunk's
// time interval [FP(C).t, LP(C).t].
struct TimeRange {
  Timestamp start = 0;
  Timestamp end = 0;

  TimeRange() = default;
  TimeRange(Timestamp s, Timestamp e) : start(s), end(e) {}

  bool Contains(Timestamp t) const { return start <= t && t <= end; }

  bool Overlaps(const TimeRange& other) const {
    return start <= other.end && other.start <= end;
  }

  // True iff `other` lies entirely inside this range.
  bool Covers(const TimeRange& other) const {
    return start <= other.start && other.end <= end;
  }

  bool Empty() const { return start > end; }

  // Number of representable timestamps in the range (0 if empty). Saturates
  // instead of overflowing for sentinel-sized ranges.
  uint64_t Length() const;

  TimeRange Intersect(const TimeRange& other) const {
    return TimeRange(std::max(start, other.start), std::min(end, other.end));
  }

  std::string ToString() const;

  friend bool operator==(const TimeRange&, const TimeRange&) = default;
};

}  // namespace tsviz

#endif  // TSVIZ_COMMON_TIME_RANGE_H_
