#ifndef TSVIZ_COMMON_THREAD_POOL_H_
#define TSVIZ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsviz {

// Fixed-size executor pool. Tasks are plain closures run FIFO on a bounded
// set of long-lived worker threads; submitting never spawns a thread, which
// is what keeps per-query parallelism cheap enough for dashboard-scale
// traffic (the old parallel operator paid a thread spawn+join per span
// block per query).
//
// Completion is the caller's business: tasks that must be awaited signal a
// latch/condition of their own (see m4/parallel.cc). The destructor drains
// the queue — every task already submitted runs before join.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task. Thread-safe; never blocks on the workers.
  void Submit(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Tasks accepted but not yet picked up by a worker (the backlog a
  // saturated pool accumulates; exported as a gauge by the executor).
  size_t queue_depth() const;

  // Total tasks ever submitted.
  uint64_t tasks_submitted() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  uint64_t tasks_submitted_ = 0;
  bool stopping_ = false;
};

// Number of workers the process-wide executor pool starts with: the
// hardware concurrency, clamped to [2, 32].
int DefaultExecutorThreads();

}  // namespace tsviz

#endif  // TSVIZ_COMMON_THREAD_POOL_H_
