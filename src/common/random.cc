#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace tsviz {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

int64_t Rng::Zipf(int64_t n, double s) {
  // Rejection-inversion sampling (Hormann & Derflinger). Good enough for
  // workload generation; exact distribution shape is not load-bearing.
  if (n <= 1) return 0;
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : std::pow(x, 1.0 - s) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    return s == 1.0 ? std::exp(y) : std::pow(y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hxn = h(nd + 0.5);
  while (true) {
    double u = UniformReal(hx0, hxn);
    double x = h_inv(u);
    int64_t k = static_cast<int64_t>(std::llround(x));
    k = std::clamp<int64_t>(k, 1, n);
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k - 1;
  }
}

}  // namespace tsviz
