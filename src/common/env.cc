#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

namespace tsviz {

namespace {

std::atomic<uint64_t> g_fsyncs{0};
std::atomic<uint64_t> g_dir_syncs{0};
std::atomic<uint64_t> g_fsync_failures{0};
std::atomic<uint64_t> g_faults_injected{0};

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// ---------------------------------------------------------------------------
// PosixEnv

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  uint64_t size() const override { return size_; }

  Status Read(uint64_t offset, size_t length, std::string* out) override {
    out->assign(length, '\0');
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd_, out->data() + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(Errno("pread", path_));
      }
      if (n == 0) return Status::IoError(path_ + ": unexpected EOF");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError(path_ + ": file is closed");
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        size_ += done;  // a partial tail may be on disk; caller truncates
        return Status::IoError(Errno("write", path_));
      }
      done += static_cast<size_t>(n);
    }
    size_ += done;
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError(path_ + ": file is closed");
    g_fsyncs.fetch_add(1, std::memory_order_relaxed);
    if (::fsync(fd_) != 0) {
      g_fsync_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError(Errno("fsync", path_));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::IoError(path_ + ": file is closed");
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(Errno("ftruncate", path_));
    }
    size_ = size;
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IoError(Errno("close", path_));
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IoError(Errno("cannot open", path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError(Errno("cannot stat", path));
    }
    return std::unique_ptr<RandomAccessFile>(std::make_unique<
        PosixRandomAccessFile>(fd, path, static_cast<uint64_t>(st.st_size)));
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return Status::IoError(Errno("cannot create", path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path, 0));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return Status::IoError(Errno("cannot open", path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError(Errno("cannot stat", path));
    }
    return std::unique_ptr<WritableFile>(std::make_unique<PosixWritableFile>(
        fd, path, static_cast<uint64_t>(st.st_size)));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path + ": no such file");
      return Status::IoError(Errno("cannot open", path));
    }
    std::string content;
    char buffer[8192];
    while (true) {
      ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = Status::IoError(Errno("read", path));
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      content.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return content;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(Errno("cannot rename " + from + " to", to));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(Errno("cannot remove", path));
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& path) override {
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(Errno("cannot remove dir", path));
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    // mkdir -p: create each prefix component, tolerating pre-existing ones.
    std::string prefix;
    size_t begin = 0;
    while (begin <= path.size()) {
      size_t end = path.find('/', begin);
      if (end == std::string::npos) end = path.size();
      prefix = path.substr(0, end);
      begin = end + 1;
      if (prefix.empty()) continue;  // leading '/'
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IoError(Errno("cannot create dir", prefix));
      }
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Status::IoError(Errno("cannot open dir", dir));
    g_dir_syncs.fetch_add(1, std::memory_order_relaxed);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      g_fsync_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError(Errno("fsync dir", dir));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// FaultInjectionEnv

// Shared by the env and every handle it has opened, so swapping envs never
// invalidates in-flight handles.
struct FaultState {
  FaultConfig config;
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> syncs{0};

  // Whether the `seq`-th op (0-based, category-local) of a fault kind that
  // fires every `every` ops should inject. The seed shifts the schedule so
  // different seeds fault different ops.
  bool ShouldInject(uint64_t seq, uint64_t every) const {
    if (every == 0 || seq < config.start_after) return false;
    return (seq - config.start_after + config.seed) % every == every - 1;
  }
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        std::shared_ptr<FaultState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  uint64_t size() const override { return base_->size(); }

  Status Read(uint64_t offset, size_t length, std::string* out) override {
    const uint64_t seq =
        state_->reads.fetch_add(1, std::memory_order_relaxed);
    if (state_->ShouldInject(seq, state_->config.eio_every)) {
      g_faults_injected.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("faultfs: injected EIO");
    }
    if (state_->ShouldInject(seq, state_->config.short_read_every)) {
      // A torn read: the first half is real, the tail is zeros — exactly
      // what a page torn across a crash looks like. The checksum layer is
      // what must catch this.
      g_faults_injected.fetch_add(1, std::memory_order_relaxed);
      TSVIZ_RETURN_IF_ERROR(base_->Read(offset, length / 2, out));
      out->resize(length, '\0');
      return Status::OK();
    }
    return base_->Read(offset, length, out);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultState> state_;
};

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    std::shared_ptr<FaultState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    const uint64_t seq =
        state_->appends.fetch_add(1, std::memory_order_relaxed);
    if (state_->ShouldInject(seq, state_->config.torn_append_every)) {
      // Write a prefix, then fail: the record is torn on disk and the
      // caller must truncate back to its pre-append size.
      g_faults_injected.fetch_add(1, std::memory_order_relaxed);
      (void)base_->Append(data.substr(0, data.size() / 2));
      return Status::IoError("faultfs: injected torn append");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    const uint64_t seq = state_->syncs.fetch_add(1, std::memory_order_relaxed);
    if (state_->ShouldInject(seq, state_->config.fsync_fail_every)) {
      g_faults_injected.fetch_add(1, std::memory_order_relaxed);
      g_fsync_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("faultfs: injected fsync failure");
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultState> state_;
};

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  void Reconfigure(const FaultConfig& config) {
    // Fresh state: new schedule, new counters; handles opened under the old
    // config keep their old (shared) state.
    auto state = std::make_shared<FaultState>();
    state->config = config;
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = std::move(state);
  }

  FaultConfig config() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_ != nullptr ? state_->config : FaultConfig{};
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           base_->NewRandomAccessFile(path));
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<FaultRandomAccessFile>(std::move(file), State()));
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewWritableFile(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultWritableFile>(std::move(file), State()));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewAppendableFile(path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultWritableFile>(std::move(file), State()));
  }

  // Metadata ops pass through un-faulted: the injected failures target the
  // data plane (reads, appends, fsyncs), where the recovery machinery is.
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }

 private:
  std::shared_ptr<FaultState> State() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }

  Env* base_;
  mutable std::mutex mutex_;
  std::shared_ptr<FaultState> state_ = std::make_shared<FaultState>();
};

FaultInjectionEnv& FaultEnv() {
  static FaultInjectionEnv* env = new FaultInjectionEnv(BaseEnv());
  return *env;
}

std::atomic<Env*>& CurrentEnvSlot() {
  static std::atomic<Env*> env{BaseEnv()};
  return env;
}

bool SetFaultKnobValue(const std::string& knob, uint64_t value,
                       FaultConfig* config) {
  if (knob == "seed") config->seed = value;
  else if (knob == "start_after") config->start_after = value;
  else if (knob == "eio_every") config->eio_every = value;
  else if (knob == "short_read_every") config->short_read_every = value;
  else if (knob == "torn_append_every") config->torn_append_every = value;
  else if (knob == "fsync_fail_every") config->fsync_fail_every = value;
  else return false;
  return true;
}

// Parses TSVIZ_FAULTFS ("eio_every=100,seed=7,...") into a FaultConfig.
bool ParseFaultSpec(const char* spec, FaultConfig* config) {
  std::string s(spec);
  size_t begin = 0;
  bool any = false;
  while (begin < s.size()) {
    size_t end = s.find(',', begin);
    if (end == std::string::npos) end = s.size();
    std::string item = s.substr(begin, end - begin);
    begin = end + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string knob = item.substr(0, eq);
    const uint64_t value = std::strtoull(item.c_str() + eq + 1, nullptr, 10);
    if (SetFaultKnobValue(knob, value, config)) any = true;
  }
  return any;
}

}  // namespace

Env* BaseEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Env* GetEnv() {
  static bool env_var_checked = [] {
    const char* spec = std::getenv("TSVIZ_FAULTFS");
    FaultConfig config;
    if (spec != nullptr && ParseFaultSpec(spec, &config)) {
      SetFaultConfig(config);
    }
    return true;
  }();
  (void)env_var_checked;
  return CurrentEnvSlot().load(std::memory_order_acquire);
}

void SetEnv(Env* env) {
  CurrentEnvSlot().store(env != nullptr ? env : BaseEnv(),
                         std::memory_order_release);
}

void SetFaultConfig(const FaultConfig& config) {
  FaultEnv().Reconfigure(config);
  CurrentEnvSlot().store(config.any() ? static_cast<Env*>(&FaultEnv())
                                      : BaseEnv(),
                         std::memory_order_release);
}

FaultConfig CurrentFaultConfig() {
  if (CurrentEnvSlot().load(std::memory_order_acquire) != &FaultEnv()) {
    return FaultConfig{};
  }
  return FaultEnv().config();
}

Status SetFaultKnob(const std::string& knob, uint64_t value) {
  FaultConfig config = FaultEnv().config();
  if (!SetFaultKnobValue(knob, value, &config)) {
    return Status::InvalidArgument("unknown faultfs knob: " + knob);
  }
  SetFaultConfig(config);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view content,
                       bool durable) {
  Env* env = GetEnv();
  const std::string tmp = path + ".tmp";
  auto cleanup_failure = [&](Status status) {
    (void)env->RemoveFile(tmp);
    return status;
  };
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp));
  if (Status s = file->Append(content); !s.ok()) return cleanup_failure(s);
  if (durable) {
    if (Status s = file->Sync(); !s.ok()) return cleanup_failure(s);
  }
  if (Status s = file->Close(); !s.ok()) return cleanup_failure(s);
  if (Status s = env->RenameFile(tmp, path); !s.ok()) {
    return cleanup_failure(s);
  }
  if (durable) {
    TSVIZ_RETURN_IF_ERROR(env->SyncDir(ParentDir(path)));
  }
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

uint64_t EnvFsyncCount() {
  return g_fsyncs.load(std::memory_order_relaxed);
}
uint64_t EnvDirSyncCount() {
  return g_dir_syncs.load(std::memory_order_relaxed);
}
uint64_t EnvFsyncFailureCount() {
  return g_fsync_failures.load(std::memory_order_relaxed);
}
uint64_t EnvFaultsInjectedCount() {
  return g_faults_injected.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Crash points

namespace {

struct CrashPointRegistry {
  std::mutex mutex;
  std::set<std::string> seen;
  std::string armed;  // empty = disarmed
};

CrashPointRegistry& Crashes() {
  static CrashPointRegistry* registry = new CrashPointRegistry();
  return *registry;
}

std::atomic<bool> g_any_armed{false};

}  // namespace

void CrashPointHit(const char* name) {
  CrashPointRegistry& registry = Crashes();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.seen.insert(name);
    fire = g_any_armed.load(std::memory_order_relaxed) &&
           registry.armed == name;
  }
  if (fire) {
    // Simulate a kill: no atexit handlers, no stream flushing. Everything
    // already handed to the OS (unbuffered appends, completed renames)
    // survives; anything buffered in user space is lost — exactly the
    // contract the recovery path must honour.
    std::_Exit(kCrashPointExitCode);
  }
}

void ArmCrashPoint(const std::string& name) {
  CrashPointRegistry& registry = Crashes();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.armed = name;
  g_any_armed.store(true, std::memory_order_relaxed);
}

void DisarmCrashPoints() {
  CrashPointRegistry& registry = Crashes();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.armed.clear();
  g_any_armed.store(false, std::memory_order_relaxed);
}

std::vector<std::string> SeenCrashPoints() {
  CrashPointRegistry& registry = Crashes();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return std::vector<std::string>(registry.seen.begin(), registry.seen.end());
}

}  // namespace tsviz
