#ifndef TSVIZ_COMMON_LOGGING_H_
#define TSVIZ_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>

namespace tsviz {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Minimum level that is emitted; defaults to kInfo, overridable with the
// TSVIZ_LOG_LEVEL environment variable (0-3) or SetLogLevel().
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Total WARN / ERROR lines emitted since process start. The metrics
// registry exposes these as log_warnings_total / log_errors_total, so tests
// and operators can catch paths that only warn instead of failing.
uint64_t LogWarningCount();
uint64_t LogErrorCount();

// Structured key=value suffix for log lines, rendered as " key=value":
//
//   TSVIZ_INFO << "flushed memtable" << Field("points", n)
//              << Field("file", path);
//
// Keeps the message grep-able (the k=v convention) without every call site
// hand-formatting the separator.
class Field {
 public:
  template <typename T>
  Field(const char* key, const T& value) {
    std::ostringstream os;
    os << ' ' << key << '=' << value;
    text_ = os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, const Field& field) {
    return os << field.text_;
  }

 private:
  std::string text_;
};

namespace internal {

// Collects one log line and writes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Prints the failed condition and aborts. Out of line so the check macro
// stays small at every call site.
[[noreturn]] void CheckFail(const char* file, int line, const char* cond);

}  // namespace internal

// Streaming log statements: TSVIZ_INFO << "x=" << x;
#define TSVIZ_DEBUG                                               \
  if (::tsviz::GetLogLevel() <= ::tsviz::LogLevel::kDebug)        \
  ::tsviz::internal::LogMessage(::tsviz::LogLevel::kDebug, __FILE__, __LINE__)
#define TSVIZ_INFO                                                \
  if (::tsviz::GetLogLevel() <= ::tsviz::LogLevel::kInfo)         \
  ::tsviz::internal::LogMessage(::tsviz::LogLevel::kInfo, __FILE__, __LINE__)
#define TSVIZ_WARN                                                \
  if (::tsviz::GetLogLevel() <= ::tsviz::LogLevel::kWarn)         \
  ::tsviz::internal::LogMessage(::tsviz::LogLevel::kWarn, __FILE__, __LINE__)
#define TSVIZ_ERROR                                               \
  if (::tsviz::GetLogLevel() <= ::tsviz::LogLevel::kError)        \
  ::tsviz::internal::LogMessage(::tsviz::LogLevel::kError, __FILE__, __LINE__)

// Invariant check that aborts with a message; active in all build types.
#define TSVIZ_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::tsviz::internal::CheckFail(__FILE__, __LINE__, #cond);     \
    }                                                              \
  } while (false)

}  // namespace tsviz

#endif  // TSVIZ_COMMON_LOGGING_H_
