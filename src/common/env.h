#ifndef TSVIZ_COMMON_ENV_H_
#define TSVIZ_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsviz {

// Filesystem abstraction the storage layer routes every open / pread /
// append / rename / unlink / fsync through. The default implementation is a
// thin POSIX wrapper; tests swap in a FaultInjectionEnv (below) to return
// EIO, torn buffers, failed fsyncs and short appends on a deterministic
// schedule — which is what lets the crash-torture and corruption tests
// exercise the recovery and degradation paths without a real power cut.

// Positional reader over one file. Thread-safe: Read carries its own offset.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // File size observed at open time.
  virtual uint64_t size() const = 0;

  // Reads exactly `length` bytes at `offset` into *out (replaced, not
  // appended). Reading past the end of the file is an error; callers bound
  // their reads by size(). A fault-injected implementation may fill *out
  // with torn data of the full length — integrity is the checksum layer's
  // job, not this one's.
  virtual Status Read(uint64_t offset, size_t length, std::string* out) = 0;
};

// Sequential writer. Appends are unbuffered (one write(2) per Append), so
// an acknowledged record is in the OS page cache and survives a process
// crash; surviving power loss additionally requires Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Close() = 0;

  // Logical end offset: pre-existing bytes (for appendable opens) plus
  // everything successfully appended. After a failed Append the caller can
  // Truncate back to the last good size to erase a torn tail.
  virtual uint64_t size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  // Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  // Opens `path` for appending, creating it when missing.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  // Whole-file read; kNotFound when the file does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDir(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  // fsyncs the directory itself, making renames/unlinks inside it durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

// The process PosixEnv (never fault-injected).
Env* BaseEnv();
// The current env: BaseEnv() unless a fault-injection config is installed.
// The first call honours the TSVIZ_FAULTFS environment variable (a
// comma-separated "knob=value" list using the FaultConfig field names).
Env* GetEnv();
// Overrides the current env (not owned); nullptr restores BaseEnv().
void SetEnv(Env* env);

// Atomically replaces `path` with `content`: writes `path`.tmp, then (when
// `durable`) fsyncs it, renames over `path`, and fsyncs the parent
// directory. Readers never observe a half-written file.
Status WriteFileAtomic(const std::string& path, std::string_view content,
                       bool durable);

// Parent directory of `path` ("." when it has no slash).
std::string ParentDir(const std::string& path);

// Process-wide I/O counters. The obs layer bridges these into the metrics
// registry (common cannot depend on obs).
uint64_t EnvFsyncCount();
uint64_t EnvDirSyncCount();
uint64_t EnvFsyncFailureCount();
uint64_t EnvFaultsInjectedCount();

// ---------------------------------------------------------------------------
// Fault injection

// Deterministic fault schedule: each faultable operation (read, append,
// fsync) gets a category-local sequence number; after `start_after` ops the
// (seed-offset) sequence number selects every `*_every`-th op for a fault.
// Zero disables that fault kind.
struct FaultConfig {
  uint64_t seed = 0;               // offsets the schedule
  uint64_t start_after = 0;        // faultable ops passed through first
  uint64_t eio_every = 0;          // nth read fails with an injected EIO
  uint64_t short_read_every = 0;   // nth read returns a torn (zero-tail) buffer
  uint64_t torn_append_every = 0;  // nth append writes a prefix, then fails
  uint64_t fsync_fail_every = 0;   // nth fsync fails without syncing

  bool any() const {
    return eio_every != 0 || short_read_every != 0 || torn_append_every != 0 ||
           fsync_fail_every != 0;
  }
};

// Installs a FaultInjectionEnv over BaseEnv() as the current env (or, with
// an all-zero config, uninstalls it). Only files opened after the call go
// through injected handles; handles opened earlier keep plain behaviour.
void SetFaultConfig(const FaultConfig& config);
FaultConfig CurrentFaultConfig();

// `SET faultfs_<knob> = n` plumbing: `knob` is the FaultConfig field name
// (seed, start_after, eio_every, short_read_every, torn_append_every,
// fsync_fail_every). Updates that field and re-installs the env.
Status SetFaultKnob(const std::string& knob, uint64_t value);

// ---------------------------------------------------------------------------
// Crash points

// Marks a named point in a mutation protocol where a crash must be
// recoverable. In normal operation this only records the name (so the
// torture tooling can verify every registered point gets exercised); when
// the name is armed the process exits immediately with kCrashPointExitCode,
// simulating a kill at exactly this point.
#define TSVIZ_CRASHPOINT(name) ::tsviz::CrashPointHit(name)

inline constexpr int kCrashPointExitCode = 42;

void CrashPointHit(const char* name);
// Arms one crash point; the next hit of that name exits the process.
void ArmCrashPoint(const std::string& name);
void DisarmCrashPoints();
// Every crash point hit since process start, sorted and deduplicated.
std::vector<std::string> SeenCrashPoints();

}  // namespace tsviz

#endif  // TSVIZ_COMMON_ENV_H_
