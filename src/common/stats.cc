#include "common/stats.h"

#include <sstream>

namespace tsviz {

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  chunks_total += other.chunks_total;
  chunks_loaded += other.chunks_loaded;
  pages_decoded += other.pages_decoded;
  points_scanned += other.points_scanned;
  bytes_read += other.bytes_read;
  metadata_reads += other.metadata_reads;
  candidate_rounds += other.candidate_rounds;
  index_lookups += other.index_lookups;
  return *this;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "chunks=" << chunks_loaded << "/" << chunks_total
     << " pages=" << pages_decoded << " points=" << points_scanned
     << " bytes=" << bytes_read << " meta=" << metadata_reads
     << " rounds=" << candidate_rounds << " idx=" << index_lookups;
  return os.str();
}

}  // namespace tsviz
