#include "common/stats.h"

#include <sstream>

namespace tsviz {

QueryStats& QueryStats::operator+=(const QueryStats& other) {
#define TSVIZ_ADD_FIELD(name) name += other.name;
  TSVIZ_QUERY_STATS_FIELDS(TSVIZ_ADD_FIELD)
#undef TSVIZ_ADD_FIELD
  degraded = degraded || other.degraded;
  return *this;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  bool first = true;
#define TSVIZ_PRINT_FIELD(name)     \
  if (!first) os << " ";            \
  first = false;                    \
  os << #name << "=" << name;
  TSVIZ_QUERY_STATS_FIELDS(TSVIZ_PRINT_FIELD)
#undef TSVIZ_PRINT_FIELD
  return os.str();
}

const std::vector<std::string>& QueryStats::FieldNames() {
  static const std::vector<std::string> names = {
#define TSVIZ_NAME_FIELD(name) #name,
      TSVIZ_QUERY_STATS_FIELDS(TSVIZ_NAME_FIELD)
#undef TSVIZ_NAME_FIELD
  };
  return names;
}

std::vector<uint64_t> QueryStats::FieldValues() const {
  return {
#define TSVIZ_VALUE_FIELD(name) name,
      TSVIZ_QUERY_STATS_FIELDS(TSVIZ_VALUE_FIELD)
#undef TSVIZ_VALUE_FIELD
  };
}

std::string QueryStats::CsvHeader() {
  std::string header;
  for (const std::string& name : FieldNames()) {
    if (!header.empty()) header += ",";
    header += name;
  }
  return header;
}

std::string QueryStats::ToCsvRow() const {
  std::string row;
  for (uint64_t value : FieldValues()) {
    if (!row.empty()) row += ",";
    row += std::to_string(value);
  }
  return row;
}

}  // namespace tsviz
