#ifndef TSVIZ_COMMON_STATS_H_
#define TSVIZ_COMMON_STATS_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tsviz {

namespace obs {
class Trace;  // defined in obs/trace.h; common only carries the pointer
}  // namespace obs

// The single source of truth for QueryStats' counters. operator+=,
// ToString, CsvHeader/ToCsvRow and FieldNames/FieldValues are all generated
// from this list, so a counter added here is automatically aggregated,
// printed, and serialized everywhere (benches, EXPLAIN ANALYZE, tests) —
// it cannot be forgotten in one of them.
#define TSVIZ_QUERY_STATS_FIELDS(X) \
  X(chunks_total)                   \
  X(chunks_loaded)                  \
  X(pages_decoded)                  \
  X(points_scanned)                 \
  X(bytes_read)                     \
  X(metadata_reads)                 \
  X(candidate_rounds)               \
  X(index_lookups)                  \
  X(partitions_scanned)             \
  X(partitions_pruned)              \
  X(chunks_quarantined)

// Cost counters accumulated while serving one query (or one experiment run).
// The benches report these alongside wall-clock latency so that the
// M4-UDF-vs-M4-LSM asymmetry (chunks loaded, bytes decoded, points scanned)
// is visible independently of machine speed.
struct QueryStats {
  uint64_t chunks_total = 0;       // chunks overlapping the query range
  uint64_t chunks_loaded = 0;      // chunks whose data was read from disk
  uint64_t pages_decoded = 0;      // pages actually decompressed
  uint64_t points_scanned = 0;     // decoded points examined
  uint64_t bytes_read = 0;         // raw bytes read from chunk data regions
  uint64_t metadata_reads = 0;     // chunk metadata entries consulted
  uint64_t candidate_rounds = 0;   // candidate generate/verify iterations
  uint64_t index_lookups = 0;      // step-regression index probes
  uint64_t partitions_scanned = 0;  // partitions whose metadata was consulted
  uint64_t partitions_pruned = 0;   // partitions ruled out by interval alone
  uint64_t chunks_quarantined = 0;  // corrupt chunks skipped by selection

  // True when any data the query wanted was skipped as corrupt
  // (read_tolerance=degrade): the result covers the surviving chunks only.
  // ORed (not summed) by operator+=; surfaced by EXPLAIN ANALYZE.
  bool degraded = false;

  // Optional per-query phase timing tree (see obs/trace.h). Engine code
  // opens obs::TraceSpan on it when set; null (the default) costs one
  // pointer check. Not a counter: operator+= and the serializers ignore it.
  std::shared_ptr<obs::Trace> trace;

  void Reset() { *this = QueryStats(); }
  QueryStats& operator+=(const QueryStats& other);
  std::string ToString() const;

  // Counter names/values in TSVIZ_QUERY_STATS_FIELDS order.
  static const std::vector<std::string>& FieldNames();
  std::vector<uint64_t> FieldValues() const;

  // One shared CSV serialization for benches and EXPLAIN ANALYZE.
  static std::string CsvHeader();
  std::string ToCsvRow() const;
};

// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsviz

#endif  // TSVIZ_COMMON_STATS_H_
