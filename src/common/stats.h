#ifndef TSVIZ_COMMON_STATS_H_
#define TSVIZ_COMMON_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace tsviz {

// Cost counters accumulated while serving one query (or one experiment run).
// The benches report these alongside wall-clock latency so that the
// M4-UDF-vs-M4-LSM asymmetry (chunks loaded, bytes decoded, points scanned)
// is visible independently of machine speed.
struct QueryStats {
  uint64_t chunks_total = 0;       // chunks overlapping the query range
  uint64_t chunks_loaded = 0;      // chunks whose data was read from disk
  uint64_t pages_decoded = 0;      // pages actually decompressed
  uint64_t points_scanned = 0;     // decoded points examined
  uint64_t bytes_read = 0;         // raw bytes read from chunk data regions
  uint64_t metadata_reads = 0;     // chunk metadata entries consulted
  uint64_t candidate_rounds = 0;   // candidate generate/verify iterations
  uint64_t index_lookups = 0;      // step-regression index probes

  void Reset() { *this = QueryStats(); }
  QueryStats& operator+=(const QueryStats& other);
  std::string ToString() const;
};

// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsviz

#endif  // TSVIZ_COMMON_STATS_H_
