#include "common/thread_pool.h"

#include <algorithm>

namespace tsviz {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    ++tasks_submitted_;
  }
  cv_.notify_one();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_submitted_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the backlog even when stopping: a submitted task may carry a
      // completion latch someone is waiting on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int DefaultExecutorThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<int>(static_cast<int>(hw), 2, 32);
}

}  // namespace tsviz
