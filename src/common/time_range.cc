#include "common/time_range.h"

#include <string>

namespace tsviz {

uint64_t TimeRange::Length() const {
  if (Empty()) return 0;
  // start <= end here; compute end - start + 1 in unsigned space to avoid
  // signed overflow when the endpoints span the full Timestamp domain.
  uint64_t diff =
      static_cast<uint64_t>(end) - static_cast<uint64_t>(start);
  if (diff == std::numeric_limits<uint64_t>::max()) return diff;
  return diff + 1;
}

std::string TimeRange::ToString() const {
  return "[" + std::to_string(start) + ", " + std::to_string(end) + "]";
}

}  // namespace tsviz
