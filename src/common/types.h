#ifndef TSVIZ_COMMON_TYPES_H_
#define TSVIZ_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace tsviz {

// Milliseconds since epoch, matching Apache IoTDB's time unit. Signed so that
// deltas and virtual-delete sentinels (+/- infinity) are representable.
using Timestamp = int64_t;

// Sensor reading value. The paper's datasets are numeric series; double
// covers all of them.
using Value = double;

// Global incremental version number assigned to each chunk or delete
// (Definition 2.4/2.5). Larger versions apply later.
using Version = uint64_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

// Version larger than any real chunk/delete version; used for the virtual
// deletes that clip a chunk to an M4 time span (Section 3.1).
inline constexpr Version kInfiniteVersion =
    std::numeric_limits<Version>::max();

// A time-value pair (Section 2.1).
struct Point {
  Timestamp t = 0;
  Value v = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

}  // namespace tsviz

#endif  // TSVIZ_COMMON_TYPES_H_
