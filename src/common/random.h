#ifndef TSVIZ_COMMON_RANDOM_H_
#define TSVIZ_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tsviz {

// Deterministic PRNG wrapper used by workload generators and property tests.
// All randomness in the repository flows through explicitly seeded Rng
// instances so every experiment and test is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Zipf-distributed integer in [0, n), skew s > 0. Used by the skewed
  // (KOB/RcvTime-like) arrival processes.
  int64_t Zipf(int64_t n, double s);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tsviz

#endif  // TSVIZ_COMMON_RANDOM_H_
