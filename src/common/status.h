#ifndef TSVIZ_COMMON_STATUS_H_
#define TSVIZ_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tsviz {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

// Error-or-success return type for all fallible library operations. The
// library does not throw exceptions; constructors that can fail are replaced
// by factory functions returning Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Whether retrying the same operation later may succeed without any code
  // or data change. Transient conditions — a replica that is still syncing
  // or lagging (kUnavailable) and I/O errors (kIoError, which the fault
  // injection Env surfaces for transient disk trouble) — are retryable;
  // semantic errors (bad arguments, corruption, missing series) are not.
  // The replication relay's backoff loop and the SQL error text both key on
  // this classification instead of matching message strings.
  bool retryable() const {
    return code_ == StatusCode::kUnavailable || code_ == StatusCode::kIoError;
  }

  // Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from error Status keeps call sites
  // (`return value;`, `return Status::IoError(...);`) readable.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK Status out of the enclosing function.
#define TSVIZ_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::tsviz::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

// Evaluates a Result<T> expression and either binds its value or propagates
// the error. `lhs` may declare a new variable (e.g. `auto x`).
#define TSVIZ_ASSIGN_OR_RETURN(lhs, expr)              \
  TSVIZ_ASSIGN_OR_RETURN_IMPL_(                        \
      TSVIZ_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)

#define TSVIZ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define TSVIZ_STATUS_CONCAT_(a, b) TSVIZ_STATUS_CONCAT_IMPL_(a, b)
#define TSVIZ_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace tsviz

#endif  // TSVIZ_COMMON_STATUS_H_
