#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tsviz {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("TSVIZ_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& LevelVar() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

std::atomic<uint64_t>& WarnCounter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

std::atomic<uint64_t>& ErrorCounter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return LevelVar().load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  LevelVar().store(level, std::memory_order_relaxed);
}

uint64_t LogWarningCount() {
  return WarnCounter().load(std::memory_order_relaxed);
}

uint64_t LogErrorCount() {
  return ErrorCounter().load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ == LogLevel::kWarn) {
    WarnCounter().fetch_add(1, std::memory_order_relaxed);
  } else if (level_ == LogLevel::kError) {
    ErrorCounter().fetch_add(1, std::memory_order_relaxed);
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

void CheckFail(const char* file, int line, const char* cond) {
  { LogMessage(LogLevel::kError, file, line) << "CHECK failed: " << cond; }
  std::abort();
}

}  // namespace internal

}  // namespace tsviz
