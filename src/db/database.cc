#include "db/database.h"

#include <cmath>
#include <filesystem>

#include "storage/page_cache.h"

namespace tsviz {

namespace fs = std::filesystem;

bool IsValidSeriesName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name == "." || name == "..") return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseConfig config) {
  if (config.root_dir.empty()) {
    return Status::InvalidArgument("root_dir must be set");
  }
  std::error_code ec;
  fs::create_directories(config.root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + config.root_dir + ": " +
                           ec.message());
  }
  auto db = std::unique_ptr<Database>(new Database(std::move(config)));
  if (db->config_.query_parallelism < 1) {
    return Status::InvalidArgument("query_parallelism must be positive");
  }
  if (db->config_.page_cache_bytes.has_value()) {
    SharedPageCache::Instance().set_capacity_bytes(
        *db->config_.page_cache_bytes);
  }
  TSVIZ_RETURN_IF_ERROR(db->Discover());
  return db;
}

Status Database::ApplySetting(const std::string& name, double value) {
  if (value < 0 || value != std::floor(value)) {
    return Status::InvalidArgument("setting '" + name +
                                   "' requires a non-negative integer");
  }
  if (name == "parallelism") {
    if (value < 1) {
      return Status::InvalidArgument("parallelism must be positive");
    }
    query_parallelism_ = static_cast<int>(value);
    return Status::OK();
  }
  if (name == "page_cache_bytes") {
    SharedPageCache::Instance().set_capacity_bytes(
        static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "result_cache_capacity") {
    result_cache_.set_capacity(static_cast<size_t>(value));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown setting: " + name);
}

Status Database::Discover() {
  for (const auto& entry : fs::directory_iterator(config_.root_dir)) {
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    if (!IsValidSeriesName(name)) continue;
    StoreConfig store_config = config_.series_defaults;
    store_config.data_dir = entry.path().string();
    TSVIZ_ASSIGN_OR_RETURN(series_[name],
                           TsStore::Open(std::move(store_config)));
  }
  return Status::OK();
}

Result<TsStore*> Database::GetOrCreateSeries(const std::string& name) {
  if (!IsValidSeriesName(name)) {
    return Status::InvalidArgument("invalid series name: " + name);
  }
  auto it = series_.find(name);
  if (it == series_.end()) {
    StoreConfig store_config = config_.series_defaults;
    store_config.data_dir = config_.root_dir + "/" + name;
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                           TsStore::Open(std::move(store_config)));
    it = series_.emplace(name, std::move(store)).first;
  }
  return it->second.get();
}

Result<TsStore*> Database::GetSeries(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    return Status::NotFound("no such series: " + name);
  }
  return it->second.get();
}

std::vector<std::string> Database::ListSeries() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, store] : series_) names.push_back(name);
  return names;
}

Status Database::DropSeries(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    return Status::NotFound("no such series: " + name);
  }
  series_.erase(it);  // closes the store's files first
  std::error_code ec;
  fs::remove_all(config_.root_dir + "/" + name, ec);
  if (ec) {
    return Status::IoError("cannot remove series " + name + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status Database::FlushAll() {
  for (auto& [name, store] : series_) {
    TSVIZ_RETURN_IF_ERROR(store->Flush());
  }
  return Status::OK();
}

Status Database::Write(const std::string& series, Timestamp t, Value v) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetOrCreateSeries(series));
  return store->Write(t, v);
}

Status Database::DeleteRange(const std::string& series,
                             const TimeRange& range) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  return store->DeleteRange(range);
}

Result<M4Result> Database::QueryM4(const std::string& series,
                                   const M4Query& query, QueryStats* stats,
                                   const M4LsmOptions& options) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  return RunM4Lsm(*store, query, stats, options);
}

}  // namespace tsviz
