#include "db/database.h"

#include <cmath>
#include <filesystem>
#include <optional>

#include "common/env.h"
#include "obs/recorder.h"
#include "storage/page_cache.h"
#include "storage/quarantine.h"

namespace tsviz {

namespace fs = std::filesystem;

namespace {

bool IsKnownSetKnob(const std::string& name) {
  for (const char* knob : kSetKnobNames) {
    if (name == knob) return true;
  }
  return false;
}

}  // namespace

bool IsValidSeriesName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name == "." || name == "..") return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseConfig config) {
  if (config.root_dir.empty()) {
    return Status::InvalidArgument("root_dir must be set");
  }
  std::error_code ec;
  fs::create_directories(config.root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + config.root_dir + ": " +
                           ec.message());
  }
  auto db = std::unique_ptr<Database>(new Database(std::move(config)));
  if (db->config_.query_parallelism < 1) {
    return Status::InvalidArgument("query_parallelism must be positive");
  }
  if (db->config_.page_cache_bytes.has_value()) {
    SharedPageCache::Instance().set_capacity_bytes(
        *db->config_.page_cache_bytes);
  }
  TSVIZ_RETURN_IF_ERROR(db->Discover());
  // The manager always exists (SHOW JOBS / knobs work without a running
  // policy loop); the loop itself starts with StartMaintenance.
  db->maintenance_ = std::make_unique<bg::MaintenanceManager>(
      db.get(), db->config_.maintenance);
  return db;
}

Database::~Database() {
  // Stop maintenance before the catalog is torn down: no job may touch a
  // store while the database destructs.
  if (maintenance_ != nullptr) maintenance_->Stop();
}

Status Database::ApplySetting(const std::string& name, double value) {
  // Membership first: a name outside the X-macro catalog is rejected before
  // any handler can see it, so a knob cannot be handled without being
  // listed. Every rejection names the valid knobs, and fires before any
  // state is touched — a bad SET never half-applies.
  if (!IsKnownSetKnob(name)) {
    return Status::InvalidArgument("unknown setting '" + name +
                                   "'; valid knobs: " + kValidSetKnobs);
  }
  const bool allows_zero =
      name == "durable_fsync" || name.rfind("faultfs_", 0) == 0 ||
      name == "trace_sample_every" || name == "slow_query_millis";
  if ((allows_zero ? !(value >= 0) : !(value > 0)) ||
      value != std::floor(value) || !std::isfinite(value)) {
    return Status::InvalidArgument(
        "setting '" + name + "' requires a " +
        (allows_zero ? "non-negative" : "positive") +
        " integer; valid knobs: " + kValidSetKnobs);
  }
  if (name == "durable_fsync") {
    const bool durable = value != 0;
    durable_fsync_.store(durable, std::memory_order_relaxed);
    for (auto& [series_name, store] : ListStoresForMaintenance()) {
      store->set_durable_fsync(durable);
    }
    return Status::OK();
  }
  if (name.rfind("faultfs_", 0) == 0) {
    // Strips the prefix and forwards to the fault-injection env. The
    // membership check above already guarantees the field name is known.
    return SetFaultKnob(name.substr(8), static_cast<uint64_t>(value));
  }
  if (name == "read_tolerance") {
    return Status::InvalidArgument(
        "setting 'read_tolerance' takes a word (degrade or strict); "
        "valid knobs: " +
        std::string(kValidSetKnobs));
  }
  if (name == "parallelism") {
    query_parallelism_.store(static_cast<int>(value),
                             std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "page_cache_bytes") {
    SharedPageCache::Instance().set_capacity_bytes(
        static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "result_cache_capacity") {
    result_cache_.set_capacity(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "catalog_shards") {
    // Process-wide default, consumed at the next Database::Open; the live
    // catalog keeps its shard count (it cannot re-hash under lookups).
    SetDefaultCatalogShards(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "autoflush_bytes") {
    maintenance_->set_memtable_flush_bytes(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "compaction_files") {
    maintenance_->set_compaction_files(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "ttl_ms") {
    maintenance_->set_ttl(static_cast<int64_t>(value));
    return Status::OK();
  }
  if (name == "max_connections") {
    max_connections_.store(static_cast<int>(value), std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "listen_backlog") {
    listen_backlog_.store(static_cast<int>(value), std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "trace_sample_every") {
    obs::FlightRecorder::Instance().set_trace_sample_every(
        static_cast<uint64_t>(value));
    return Status::OK();
  }
  if (name == "slow_query_millis") {
    obs::FlightRecorder::Instance().set_slow_query_millis(value);
    return Status::OK();
  }
  if (name == "recorder_capacity_bytes") {
    obs::FlightRecorder::Instance().set_capacity_bytes(
        static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "partition_interval_ms") {
    // Applies to series created after this point; an existing series keeps
    // the interval pinned in its partition.meta manifest.
    partition_interval_ms_.store(static_cast<int64_t>(value),
                                 std::memory_order_relaxed);
    return Status::OK();
  }
  // Listed in TSVIZ_SET_KNOBS but not handled above — the drift test
  // exercises every listed knob, so this cannot ship silently.
  return Status::Internal("setting '" + name +
                          "' is listed but has no handler");
}

Status Database::ApplySetting(const std::string& name,
                              const std::string& value) {
  if (name == "read_tolerance") {
    ReadTolerance tolerance;
    Status status = ParseReadTolerance(value, &tolerance);
    if (!status.ok()) {
      return Status::InvalidArgument(
          "setting 'read_tolerance' accepts degrade or strict, got '" +
          value + "'; valid knobs: " + kValidSetKnobs);
    }
    SetReadTolerance(tolerance);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "setting '" + name + "' does not take a word value; valid knobs: " +
      kValidSetKnobs);
}

StoreConfig Database::CurrentSeriesDefaults() const {
  StoreConfig store_config = config_.series_defaults;
  store_config.partition_interval_ms =
      partition_interval_ms_.load(std::memory_order_relaxed);
  store_config.durable_fsync =
      durable_fsync_.load(std::memory_order_relaxed);
  return store_config;
}

Status Database::Discover() {
  for (const auto& entry : fs::directory_iterator(config_.root_dir)) {
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    if (!IsValidSeriesName(name)) continue;
    StoreConfig store_config = CurrentSeriesDefaults();
    store_config.data_dir = entry.path().string();
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                           TsStore::Open(std::move(store_config)));
    catalog_.Insert(name, std::move(store));
  }
  return Status::OK();
}

Result<TsStore*> Database::GetOrCreateSeries(const std::string& name) {
  if (!IsValidSeriesName(name)) {
    return Status::InvalidArgument("invalid series name: " + name);
  }
  TSVIZ_ASSIGN_OR_RETURN(
      std::shared_ptr<TsStore> store,
      catalog_.FindOrCreate(name, [this, &name] {
        StoreConfig store_config = CurrentSeriesDefaults();
        store_config.data_dir = config_.root_dir + "/" + name;
        return TsStore::Open(std::move(store_config));
      }));
  // The raw pointer stays valid until DropSeries: the catalog keeps its own
  // shared_ptr reference — same contract as before sharding.
  return store.get();
}

Result<TsStore*> Database::GetSeries(const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Find(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  return store.get();
}

Result<std::shared_ptr<TsStore>> Database::GetSeriesShared(
    const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Find(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  return store;
}

std::vector<std::string> Database::ListSeries() const {
  return catalog_.ListNames();
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
Database::ListStoresForMaintenance() {
  return catalog_.ListAll();
}

size_t Database::NumMaintenanceShards() const {
  return catalog_.num_shards();
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
Database::ListShardStoresForMaintenance(size_t shard) {
  return catalog_.ListShard(shard);
}

Status Database::DropSeries(const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Remove(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  // The catalog no longer hands the series out, so no new maintenance job
  // can pick it up. Wait out any job already running against the store,
  // then release the last reference so its files close before the
  // directory is removed.
  if (maintenance_ != nullptr) maintenance_->Quiesce(name);
  store.reset();
  std::error_code ec;
  fs::remove_all(config_.root_dir + "/" + name, ec);
  if (ec) {
    return Status::IoError("cannot remove series " + name + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status Database::FlushAll() {
  for (auto& [name, store] : ListStoresForMaintenance()) {
    TSVIZ_RETURN_IF_ERROR(store->Flush());
  }
  return Status::OK();
}

Status Database::CompactAll() {
  for (auto& [name, store] : ListStoresForMaintenance()) {
    TSVIZ_RETURN_IF_ERROR(store->Compact());
  }
  return Status::OK();
}

Status Database::Write(const std::string& series, Timestamp t, Value v) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetOrCreateSeries(series));
  return store->Write(t, v);
}

Status Database::WriteBatch(const std::string& series,
                            const std::vector<Point>& points) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetOrCreateSeries(series));
  return store->WriteBatch(points);
}

Status Database::DeleteRange(const std::string& series,
                             const TimeRange& range) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  return store->DeleteRange(range);
}

Result<M4Result> Database::QueryM4(const std::string& series,
                                   const M4Query& query, QueryStats* stats,
                                   const M4LsmOptions& options) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  // Under read_tolerance=degrade a corrupt chunk discovered mid-read is
  // quarantined and the query retried over the surviving chunks.
  std::optional<Result<M4Result>> result;
  Status status = RunWithReadTolerance([&]() {
    result.emplace(RunM4Lsm(*store, query, stats, options));
    return result->ok() ? Status::OK() : result->status();
  });
  if (!status.ok()) return status;
  return std::move(*result);
}

}  // namespace tsviz
