#include "db/database.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "read/series_reader.h"
#include "storage/page_cache.h"
#include "storage/quarantine.h"

namespace tsviz {

namespace fs = std::filesystem;

namespace {

bool IsKnownSetKnob(const std::string& name) {
  for (const char* knob : kSetKnobNames) {
    if (name == knob) return true;
  }
  return false;
}

}  // namespace

bool IsValidSeriesName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name == "." || name == "..") return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseConfig config) {
  if (config.root_dir.empty()) {
    return Status::InvalidArgument("root_dir must be set");
  }
  std::error_code ec;
  fs::create_directories(config.root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + config.root_dir + ": " +
                           ec.message());
  }
  auto db = std::unique_ptr<Database>(new Database(std::move(config)));
  if (db->config_.query_parallelism < 1) {
    return Status::InvalidArgument("query_parallelism must be positive");
  }
  if (db->config_.page_cache_bytes.has_value()) {
    SharedPageCache::Instance().set_capacity_bytes(
        *db->config_.page_cache_bytes);
  }
  TSVIZ_RETURN_IF_ERROR(db->Discover());
  // The manager always exists (SHOW JOBS / knobs work without a running
  // policy loop); the loop itself starts with StartMaintenance.
  db->maintenance_ = std::make_unique<bg::MaintenanceManager>(
      db.get(), db->config_.maintenance);
  return db;
}

Database::~Database() {
  // Stop maintenance before the catalog is torn down: no job may touch a
  // store while the database destructs.
  if (maintenance_ != nullptr) maintenance_->Stop();
  // Then the replication machinery: the applier writes into the catalog and
  // the relay reads the log, so both must be quiet before teardown.
  if (applier_ != nullptr) applier_->Stop();
  if (relay_ != nullptr) relay_->Stop();
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (repl_log_ != nullptr) {
    NotePrimaryAppliedLocked(primary_applied_seq_, /*force=*/true);
  }
}

Status Database::ApplySetting(const std::string& name, double value) {
  // Membership first: a name outside the X-macro catalog is rejected before
  // any handler can see it, so a knob cannot be handled without being
  // listed. Every rejection names the valid knobs, and fires before any
  // state is touched — a bad SET never half-applies.
  if (!IsKnownSetKnob(name)) {
    return Status::InvalidArgument("unknown setting '" + name +
                                   "'; valid knobs: " + kValidSetKnobs);
  }
  const bool allows_zero =
      name == "durable_fsync" || name.rfind("faultfs_", 0) == 0 ||
      name == "trace_sample_every" || name == "slow_query_millis" ||
      name == "idle_timeout_ms" || name == "max_staleness_ms" ||
      name == "repl_listen_port";
  if ((allows_zero ? !(value >= 0) : !(value > 0)) ||
      value != std::floor(value) || !std::isfinite(value)) {
    return Status::InvalidArgument(
        "setting '" + name + "' requires a " +
        (allows_zero ? "non-negative" : "positive") +
        " integer; valid knobs: " + kValidSetKnobs);
  }
  if (name == "durable_fsync") {
    const bool durable = value != 0;
    durable_fsync_.store(durable, std::memory_order_relaxed);
    for (auto& [series_name, store] : ListStoresForMaintenance()) {
      store->set_durable_fsync(durable);
    }
    std::lock_guard<std::mutex> lock(repl_mutex_);
    if (repl_log_ != nullptr) repl_log_->set_durable(durable);
    return Status::OK();
  }
  if (name.rfind("faultfs_", 0) == 0) {
    // Strips the prefix and forwards to the fault-injection env. The
    // membership check above already guarantees the field name is known.
    return SetFaultKnob(name.substr(8), static_cast<uint64_t>(value));
  }
  if (name == "read_tolerance") {
    return Status::InvalidArgument(
        "setting 'read_tolerance' takes a word (degrade or strict); "
        "valid knobs: " +
        std::string(kValidSetKnobs));
  }
  if (name == "replica_of") {
    return Status::InvalidArgument(
        "setting 'replica_of' takes 'host:port' or off; valid knobs: " +
        std::string(kValidSetKnobs));
  }
  if (name == "idle_timeout_ms") {
    idle_timeout_ms_.store(static_cast<int64_t>(value),
                           std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "max_staleness_ms") {
    max_staleness_ms_.store(static_cast<int64_t>(value),
                            std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "repl_listen_port") {
    if (value > 65535) {
      return Status::InvalidArgument("repl_listen_port must be <= 65535");
    }
    return value == 0 ? DisablePrimary()
                      : EnablePrimary(static_cast<int>(value));
  }
  if (name == "parallelism") {
    query_parallelism_.store(static_cast<int>(value),
                             std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "page_cache_bytes") {
    SharedPageCache::Instance().set_capacity_bytes(
        static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "result_cache_capacity") {
    result_cache_.set_capacity(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "catalog_shards") {
    // Process-wide default, consumed at the next Database::Open; the live
    // catalog keeps its shard count (it cannot re-hash under lookups).
    SetDefaultCatalogShards(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "autoflush_bytes") {
    maintenance_->set_memtable_flush_bytes(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "compaction_files") {
    maintenance_->set_compaction_files(static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "ttl_ms") {
    maintenance_->set_ttl(static_cast<int64_t>(value));
    return Status::OK();
  }
  if (name == "max_connections") {
    max_connections_.store(static_cast<int>(value), std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "listen_backlog") {
    listen_backlog_.store(static_cast<int>(value), std::memory_order_relaxed);
    return Status::OK();
  }
  if (name == "trace_sample_every") {
    obs::FlightRecorder::Instance().set_trace_sample_every(
        static_cast<uint64_t>(value));
    return Status::OK();
  }
  if (name == "slow_query_millis") {
    obs::FlightRecorder::Instance().set_slow_query_millis(value);
    return Status::OK();
  }
  if (name == "recorder_capacity_bytes") {
    obs::FlightRecorder::Instance().set_capacity_bytes(
        static_cast<size_t>(value));
    return Status::OK();
  }
  if (name == "partition_interval_ms") {
    // Applies to series created after this point; an existing series keeps
    // the interval pinned in its partition.meta manifest.
    partition_interval_ms_.store(static_cast<int64_t>(value),
                                 std::memory_order_relaxed);
    return Status::OK();
  }
  // Listed in TSVIZ_SET_KNOBS but not handled above — the drift test
  // exercises every listed knob, so this cannot ship silently.
  return Status::Internal("setting '" + name +
                          "' is listed but has no handler");
}

Status Database::ApplySetting(const std::string& name,
                              const std::string& value) {
  if (name == "read_tolerance") {
    ReadTolerance tolerance;
    Status status = ParseReadTolerance(value, &tolerance);
    if (!status.ok()) {
      return Status::InvalidArgument(
          "setting 'read_tolerance' accepts degrade or strict, got '" +
          value + "'; valid knobs: " + kValidSetKnobs);
    }
    SetReadTolerance(tolerance);
    return Status::OK();
  }
  if (name == "replica_of") {
    if (value == "off" || value == "none") {
      return DisableReplica();
    }
    const size_t colon = value.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= value.size()) {
      return Status::InvalidArgument(
          "setting 'replica_of' accepts 'host:port' or off, got '" + value +
          "'");
    }
    int port = 0;
    for (size_t i = colon + 1; i < value.size(); ++i) {
      char c = value[i];
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument(
            "setting 'replica_of' has a bad port in '" + value + "'");
      }
      port = port * 10 + (c - '0');
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument(
          "setting 'replica_of' has a bad port in '" + value + "'");
    }
    return EnableReplica(value.substr(0, colon), port);
  }
  return Status::InvalidArgument(
      "setting '" + name + "' does not take a word value; valid knobs: " +
      kValidSetKnobs);
}

StoreConfig Database::CurrentSeriesDefaults() const {
  StoreConfig store_config = config_.series_defaults;
  store_config.partition_interval_ms =
      partition_interval_ms_.load(std::memory_order_relaxed);
  store_config.durable_fsync =
      durable_fsync_.load(std::memory_order_relaxed);
  return store_config;
}

Status Database::Discover() {
  for (const auto& entry : fs::directory_iterator(config_.root_dir)) {
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    if (!IsValidSeriesName(name)) continue;
    // root/repl holds replication state (log, watermarks), not a series.
    if (name == "repl") continue;
    StoreConfig store_config = CurrentSeriesDefaults();
    store_config.data_dir = entry.path().string();
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                           TsStore::Open(std::move(store_config)));
    catalog_.Insert(name, std::move(store));
  }
  return Status::OK();
}

Result<TsStore*> Database::GetOrCreateSeries(const std::string& name) {
  if (!IsValidSeriesName(name)) {
    return Status::InvalidArgument("invalid series name: " + name);
  }
  // The replication state directory lives at root/repl; a series by that
  // name would share its directory (and a resync wipe would destroy the
  // follower's watermark), so the name is reserved.
  if (name == "repl") {
    return Status::InvalidArgument(
        "series name 'repl' is reserved for replication state");
  }
  TSVIZ_ASSIGN_OR_RETURN(
      std::shared_ptr<TsStore> store,
      catalog_.FindOrCreate(name, [this, &name] {
        StoreConfig store_config = CurrentSeriesDefaults();
        store_config.data_dir = config_.root_dir + "/" + name;
        return TsStore::Open(std::move(store_config));
      }));
  // The raw pointer stays valid until DropSeries: the catalog keeps its own
  // shared_ptr reference — same contract as before sharding.
  return store.get();
}

Result<TsStore*> Database::GetSeries(const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Find(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  return store.get();
}

Result<std::shared_ptr<TsStore>> Database::GetSeriesShared(
    const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Find(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  return store;
}

std::vector<std::string> Database::ListSeries() const {
  return catalog_.ListNames();
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
Database::ListStoresForMaintenance() {
  return catalog_.ListAll();
}

size_t Database::NumMaintenanceShards() const {
  return catalog_.num_shards();
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
Database::ListShardStoresForMaintenance(size_t shard) {
  return catalog_.ListShard(shard);
}

Status Database::DropSeriesLocal(const std::string& name) {
  std::shared_ptr<TsStore> store = catalog_.Remove(name);
  if (store == nullptr) {
    return Status::NotFound("no such series: " + name);
  }
  // The catalog no longer hands the series out, so no new maintenance job
  // can pick it up. Wait out any job already running against the store,
  // then release the last reference so its files close before the
  // directory is removed.
  if (maintenance_ != nullptr) maintenance_->Quiesce(name);
  store.reset();
  std::error_code ec;
  fs::remove_all(config_.root_dir + "/" + name, ec);
  if (ec) {
    return Status::IoError("cannot remove series " + name + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status Database::DropSeries(const std::string& name) {
  if (IsReplica()) {
    return Status::Unavailable(
        "read-only replica: writes must go to the primary");
  }
  if (replication_role() == ReplicationRole::kPrimary) {
    // Validate before logging so a drop of a missing series is an error to
    // the client instead of a poison record in the log.
    if (catalog_.Find(name) == nullptr) {
      return Status::NotFound("no such series: " + name);
    }
    return PrimaryMutate(repl::ReplOp::kDropSeries, name, std::string(),
                         [&] { return DropSeriesLocal(name); });
  }
  return DropSeriesLocal(name);
}

Status Database::FlushAll() {
  for (auto& [name, store] : ListStoresForMaintenance()) {
    TSVIZ_RETURN_IF_ERROR(store->Flush());
  }
  return Status::OK();
}

Status Database::CompactAll() {
  for (auto& [name, store] : ListStoresForMaintenance()) {
    TSVIZ_RETURN_IF_ERROR(store->Compact());
  }
  return Status::OK();
}

Status Database::WriteBatchLocal(const std::string& series,
                                 const std::vector<Point>& points) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetOrCreateSeries(series));
  return store->WriteBatch(points);
}

Status Database::DeleteRangeLocal(const std::string& series,
                                  const TimeRange& range) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  return store->DeleteRange(range);
}

Status Database::Write(const std::string& series, Timestamp t, Value v) {
  if (IsReplica()) {
    return Status::Unavailable(
        "read-only replica: writes must go to the primary");
  }
  if (replication_role() == ReplicationRole::kPrimary) {
    // Validate everything the local apply would reject BEFORE logging, so
    // the log never carries a record that deterministically fails — the
    // follower applies the same checks.
    if (!IsValidSeriesName(series) || series == "repl") {
      return Status::InvalidArgument("invalid series name: " + series);
    }
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("value must be finite");
    }
    Point p;
    p.t = t;
    p.v = v;
    const std::vector<Point> points = {p};
    return PrimaryMutate(repl::ReplOp::kPutBatch, series,
                         repl::EncodePointsPayload(points),
                         [&] { return WriteBatchLocal(series, points); });
  }
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetOrCreateSeries(series));
  return store->Write(t, v);
}

Status Database::WriteBatch(const std::string& series,
                            const std::vector<Point>& points) {
  if (IsReplica()) {
    return Status::Unavailable(
        "read-only replica: writes must go to the primary");
  }
  if (replication_role() == ReplicationRole::kPrimary) {
    if (points.empty()) return Status::OK();
    if (!IsValidSeriesName(series) || series == "repl") {
      return Status::InvalidArgument("invalid series name: " + series);
    }
    for (const Point& p : points) {
      if (!std::isfinite(p.v)) {
        return Status::InvalidArgument("value must be finite");
      }
    }
    return PrimaryMutate(repl::ReplOp::kPutBatch, series,
                         repl::EncodePointsPayload(points),
                         [&] { return WriteBatchLocal(series, points); });
  }
  return WriteBatchLocal(series, points);
}

Status Database::DeleteRange(const std::string& series,
                             const TimeRange& range) {
  if (IsReplica()) {
    return Status::Unavailable(
        "read-only replica: writes must go to the primary");
  }
  if (replication_role() == ReplicationRole::kPrimary) {
    if (catalog_.Find(series) == nullptr) {
      return Status::NotFound("no such series: " + series);
    }
    return PrimaryMutate(repl::ReplOp::kDeleteRange, series,
                         repl::EncodeRangePayload(range),
                         [&] { return DeleteRangeLocal(series, range); });
  }
  return DeleteRangeLocal(series, range);
}

// --- Replication -----------------------------------------------------------

const char* ReplicationRoleName(ReplicationRole role) {
  switch (role) {
    case ReplicationRole::kStandalone:
      return "STANDALONE";
    case ReplicationRole::kPrimary:
      return "PRIMARY";
    case ReplicationRole::kReplica:
      return "REPLICA";
  }
  return "UNKNOWN";
}

Status Database::PrimaryMutate(repl::ReplOp op, const std::string& series,
                               std::string payload,
                               const std::function<Status()>& apply) {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ != ReplicationRole::kPrimary || repl_log_ == nullptr) {
    // Raced with DisablePrimary: fall back to the standalone path.
    return apply();
  }
  uint64_t seq = 0;
  TSVIZ_RETURN_IF_ERROR(repl_log_->Append(op, series, std::move(payload),
                                          &seq));
  // A crash here leaves the record logged but unapplied; EnablePrimary on
  // the restarted process replays past the applied watermark.
  TSVIZ_CRASHPOINT("repl.log.after_append");
  TSVIZ_RETURN_IF_ERROR(apply());
  NotePrimaryAppliedLocked(seq, /*force=*/false);
  return Status::OK();
}

void Database::NotePrimaryAppliedLocked(uint64_t seq, bool force) {
  // Only a dense prefix counts as applied: if seq N's local apply failed
  // (injected I/O error) while N+1 succeeded, the watermark must stay at
  // N-1 so a restart replays N — otherwise a record every follower applied
  // would be missing from the primary forever.
  if (seq != primary_applied_seq_ + 1 && !force) {
    if (seq <= primary_applied_seq_) return;
    // Gap below seq: keep the watermark at the prefix end; still honor a
    // forced persistence of the current value.
    seq = primary_applied_seq_;
  } else if (seq > primary_applied_seq_) {
    primary_applied_seq_ = seq;
  } else {
    seq = primary_applied_seq_;
  }
  // Lazy persistence: the watermark may trail the truth by up to the
  // stride, which only costs re-applying that many records on restart —
  // every logged op is effect-idempotent.
  constexpr uint64_t kPersistStride = 16;
  if (!force && seq < primary_persisted_seq_ + kPersistStride) return;
  std::string content = std::to_string(seq) + "\n";
  if (WriteFileAtomic(ReplDir() + "/applied", content,
                      durable_fsync_.load(std::memory_order_relaxed))
          .ok()) {
    primary_persisted_seq_ = seq;
  }
}

Status Database::ApplyLoggedRecord(const repl::ReplRecord& record) {
  switch (record.op) {
    case repl::ReplOp::kPutBatch: {
      TSVIZ_ASSIGN_OR_RETURN(std::vector<Point> points,
                             repl::DecodePointsPayload(record.payload));
      return WriteBatchLocal(record.series, points);
    }
    case repl::ReplOp::kDeleteRange: {
      TSVIZ_ASSIGN_OR_RETURN(TimeRange range,
                             repl::DecodeRangePayload(record.payload));
      Status status = DeleteRangeLocal(record.series, range);
      if (status.code() == StatusCode::kNotFound) return Status::OK();
      return status;
    }
    case repl::ReplOp::kDropSeries: {
      Status status = DropSeriesLocal(record.series);
      if (status.code() == StatusCode::kNotFound) return Status::OK();
      return status;
    }
  }
  return Status::Corruption("repl record has unknown op");
}

Status Database::EnablePrimary(int port) {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ == ReplicationRole::kReplica) {
    return Status::InvalidArgument(
        "this database is a replica; SET replica_of = off first");
  }
  std::error_code ec;
  fs::create_directories(ReplDir(), ec);
  if (ec) {
    return Status::IoError("cannot create " + ReplDir() + ": " +
                           ec.message());
  }
  const bool durable = durable_fsync_.load(std::memory_order_relaxed);
  if (repl_log_ == nullptr) {
    TSVIZ_ASSIGN_OR_RETURN(repl_log_,
                           repl::ReplLog::Open(ReplDir() + "/log", durable));
    const uint64_t last = repl_log_->last_seq();
    if (last == 0) {
      // First enable. Pre-existing data was written before the log existed,
      // so followers could never replay it — synthesize a baseline: flush
      // everything, then log one put batch per series from the merged
      // on-disk state (WAL-replay-only bootstrap).
      for (auto& [series_name, store] : ListStoresForMaintenance()) {
        TSVIZ_RETURN_IF_ERROR(store->Flush());
        TSVIZ_ASSIGN_OR_RETURN(
            std::vector<Point> points,
            ReadMergedSeries(store->CurrentView(),
                             TimeRange(kMinTimestamp, kMaxTimestamp),
                             nullptr));
        // Chunked so one giant series does not become one giant record.
        constexpr size_t kBaselineChunk = 4096;
        for (size_t i = 0; i < points.size(); i += kBaselineChunk) {
          std::vector<Point> chunk(
              points.begin() + static_cast<ptrdiff_t>(i),
              points.begin() +
                  static_cast<ptrdiff_t>(
                      std::min(points.size(), i + kBaselineChunk)));
          TSVIZ_RETURN_IF_ERROR(repl_log_->Append(
              repl::ReplOp::kPutBatch, series_name,
              repl::EncodePointsPayload(chunk), nullptr));
        }
      }
      primary_applied_seq_ = repl_log_->last_seq();
      NotePrimaryAppliedLocked(primary_applied_seq_, /*force=*/true);
    } else {
      // Restarted primary: records past the durable applied watermark were
      // logged but possibly never applied (crash at repl.log.after_append).
      // Re-apply them; over-replay is harmless (effect-idempotent).
      uint64_t applied = 0;
      if (auto read = GetEnv()->ReadFileToString(ReplDir() + "/applied");
          read.ok()) {
        applied = std::strtoull(read->c_str(), nullptr, 10);
      }
      if (applied > last) applied = last;
      uint64_t next = applied + 1;
      while (next <= last) {
        TSVIZ_ASSIGN_OR_RETURN(std::vector<repl::ReplRecord> records,
                               repl_log_->Read(next, 64));
        if (records.empty()) break;
        for (const repl::ReplRecord& record : records) {
          TSVIZ_RETURN_IF_ERROR(ApplyLoggedRecord(record));
          next = record.seq + 1;
        }
      }
      primary_applied_seq_ = last;
      NotePrimaryAppliedLocked(last, /*force=*/true);
    }
  }
  if (relay_ != nullptr) relay_->Stop();
  repl::RelayOptions relay_options;
  relay_options.port = port;
  relay_options.listen_backlog =
      listen_backlog_.load(std::memory_order_relaxed);
  auto relay = std::make_unique<repl::Relay>(repl_log_.get(), relay_options);
  TSVIZ_RETURN_IF_ERROR(relay->Start());
  relay_ = std::move(relay);
  role_ = ReplicationRole::kPrimary;
  role_cached_.store(static_cast<int>(role_), std::memory_order_relaxed);
  SubmitReplHeartbeatLocked();
  return Status::OK();
}

Status Database::DisablePrimary() {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ != ReplicationRole::kPrimary) return Status::OK();
  if (relay_ != nullptr) {
    relay_->Stop();
    relay_.reset();
  }
  NotePrimaryAppliedLocked(primary_applied_seq_, /*force=*/true);
  // The log stays on disk (and open): re-enabling resumes the same
  // sequence, and followers resume from their watermarks.
  role_ = ReplicationRole::kStandalone;
  role_cached_.store(static_cast<int>(role_), std::memory_order_relaxed);
  return Status::OK();
}

Status Database::EnableReplica(const std::string& host, int port) {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ == ReplicationRole::kPrimary) {
    return Status::InvalidArgument(
        "this database is a primary; SET repl_listen_port = 0 first");
  }
  std::error_code ec;
  fs::create_directories(ReplDir(), ec);
  if (ec) {
    return Status::IoError("cannot create " + ReplDir() + ": " +
                           ec.message());
  }
  if (applier_ != nullptr) applier_->Stop();
  repl::ApplierOptions options;
  options.host = host;
  options.port = port;
  options.watermark_path = ReplDir() + "/watermark";
  options.durable = durable_fsync_.load(std::memory_order_relaxed);
  // Flip the role before the applier starts so no client write can slip
  // between the applier's first apply and the rejection gate.
  role_ = ReplicationRole::kReplica;
  role_cached_.store(static_cast<int>(role_), std::memory_order_relaxed);
  applier_ = std::make_unique<repl::Applier>(this, options);
  if (Status status = applier_->Start(); !status.ok()) {
    applier_.reset();
    role_ = ReplicationRole::kStandalone;
    role_cached_.store(static_cast<int>(role_), std::memory_order_relaxed);
    return status;
  }
  SubmitReplHeartbeatLocked();
  return Status::OK();
}

Status Database::DisableReplica() {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ != ReplicationRole::kReplica) return Status::OK();
  if (applier_ != nullptr) {
    applier_->Stop();
    applier_.reset();
  }
  // Local data is kept: the database detaches with whatever prefix of the
  // primary's history it had applied.
  role_ = ReplicationRole::kStandalone;
  role_cached_.store(static_cast<int>(role_), std::memory_order_relaxed);
  return Status::OK();
}

void Database::SubmitReplHeartbeatLocked() {
  // One periodic job per Database lifetime: refreshes the lag gauge even
  // while the applier is blocked in backoff, so `repl_lag_ms` keeps growing
  // during an outage. Visible in SHOW JOBS like any other periodic job.
  if (heartbeat_submitted_ || maintenance_ == nullptr) return;
  heartbeat_submitted_ = true;
  maintenance_->scheduler().SubmitPeriodic(
      "repl", "repl_heartbeat", std::chrono::milliseconds(250), [this] {
        static obs::Gauge& lag =
            obs::GetGauge("repl_lag_ms",
                          "Follower staleness (ms since last fully "
                          "caught up)");
        lag.Set(static_cast<double>(replication_lag_ms()));
        return Status::OK();
      });
}

int64_t Database::replication_lag_ms() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ != ReplicationRole::kReplica || applier_ == nullptr) return 0;
  return applier_->lag_ms();
}

int Database::repl_port() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  return relay_ != nullptr ? relay_->port() : 0;
}

Status Database::CheckReplicaRead() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  if (role_ != ReplicationRole::kReplica || applier_ == nullptr) {
    return Status::OK();
  }
  if (applier_->state() == repl::ApplierState::kSyncing) {
    return Status::Unavailable(
        "replica is resyncing after divergence; retry later or query the "
        "primary");
  }
  const int64_t bound = max_staleness_ms_.load(std::memory_order_relaxed);
  if (bound > 0) {
    const int64_t lag = applier_->lag_ms();
    if (lag > bound) {
      return Status::Unavailable(
          "replica lag " + std::to_string(lag) +
          "ms exceeds max_staleness_ms=" + std::to_string(bound) +
          "; retry later or query the primary");
    }
  }
  return Status::OK();
}

ReplicationStatus Database::replication_status() const {
  std::lock_guard<std::mutex> lock(repl_mutex_);
  ReplicationStatus status;
  status.role = role_;
  switch (role_) {
    case ReplicationRole::kStandalone:
      status.state = "IDLE";
      break;
    case ReplicationRole::kPrimary:
      status.state = "SERVING";
      status.listen_port = relay_ != nullptr ? relay_->port() : 0;
      status.last_seq = repl_log_ != nullptr ? repl_log_->last_seq() : 0;
      status.divergences =
          relay_ != nullptr ? relay_->divergences_reported() : 0;
      break;
    case ReplicationRole::kReplica:
      if (applier_ != nullptr) {
        status.state = repl::ApplierStateName(applier_->state());
        status.primary = applier_->primary_address();
        status.last_seq = applier_->applied_seq();
        status.primary_seq = applier_->observed_primary_seq();
        status.lag_ms = applier_->lag_ms();
        status.reconnects = applier_->reconnects();
        status.divergences = applier_->divergences();
      }
      break;
  }
  return status;
}

Status Database::ApplyPutBatch(const std::string& series,
                               const std::vector<Point>& points) {
  return WriteBatchLocal(series, points);
}

Status Database::ApplyDeleteRange(const std::string& series,
                                  const TimeRange& range) {
  Status status = DeleteRangeLocal(series, range);
  // Deleting from a series this follower never materialized is a no-op,
  // not an error — idempotent replay must converge.
  if (status.code() == StatusCode::kNotFound) return Status::OK();
  return status;
}

Status Database::ApplyDropSeries(const std::string& series) {
  Status status = DropSeriesLocal(series);
  if (status.code() == StatusCode::kNotFound) return Status::OK();
  return status;
}

Status Database::WipeForResync() {
  for (const std::string& name : ListSeries()) {
    Status status = DropSeriesLocal(name);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  // Drop cached results that could otherwise serve wiped data.
  result_cache_.Clear();
  return Status::OK();
}

Result<M4Result> Database::QueryM4(const std::string& series,
                                   const M4Query& query, QueryStats* stats,
                                   const M4LsmOptions& options) {
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, GetSeries(series));
  // Under read_tolerance=degrade a corrupt chunk discovered mid-read is
  // quarantined and the query retried over the surviving chunks.
  std::optional<Result<M4Result>> result;
  Status status = RunWithReadTolerance([&]() {
    result.emplace(RunM4Lsm(*store, query, stats, options));
    return result->ok() ? Status::OK() : result->status();
  });
  if (!status.ok()) return status;
  return std::move(*result);
}

}  // namespace tsviz
