#ifndef TSVIZ_DB_CATALOG_H_
#define TSVIZ_DB_CATALOG_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/store.h"

namespace tsviz {

// Process-wide default shard count used when DatabaseConfig::catalog_shards
// is 0. `SET catalog_shards = n` updates it; like the shared page cache's
// capacity it is process state, so the change applies to the next
// Database::Open rather than to any catalog already built (a catalog cannot
// re-hash its series while lookups run against it).
size_t DefaultCatalogShards();
void SetDefaultCatalogShards(size_t shards);

// Sharded series catalog: the series map split into a fixed array of N
// shards (FNV-1a hash of the series name -> shard), each with its own
// reader-writer lock and std::map. Lookups, creates and drops touch exactly
// one shard's lock, so ingest and query traffic over distinct series stops
// serializing on a single database-wide mutex; cross-shard listings
// (ListSeries, maintenance ticks) take one shard at a time and merge the
// per-shard snapshots, never holding two locks at once.
//
// The hot GetSeries path is reader-friendly twice over: it takes the shard's
// std::shared_mutex in shared mode (concurrent lookups on one shard never
// exclude each other), and the uncontended acquisition is a try-lock that
// skips the clock reads — only a contended acquisition measures its wait,
// into the `catalog_lock_wait_millis` histogram that quantifies exactly the
// serialization this structure removes.
//
// Thread-safe; stores are handed out as shared_ptr (or raw pointers whose
// lifetime the caller bounds by the database) exactly like the pre-sharding
// Database did.
class SeriesCatalog {
 public:
  // `shards` is clamped to [1, 1024]; 0 uses DefaultCatalogShards().
  explicit SeriesCatalog(size_t shards);

  SeriesCatalog(const SeriesCatalog&) = delete;
  SeriesCatalog& operator=(const SeriesCatalog&) = delete;

  size_t num_shards() const { return shards_.size(); }

  // The shard a series name routes to (exposed for per-shard iteration and
  // tests).
  size_t ShardOf(const std::string& name) const;

  // Fast path: shared-lock lookup, nullptr when absent.
  std::shared_ptr<TsStore> Find(const std::string& name) const;

  // Finds `name`, or inserts the store built by `factory` (called without
  // any shard lock held — store opening does disk I/O). Two concurrent
  // creators of one name race benignly: both build, one wins the insert,
  // the loser's store is discarded and `created` (optional) reports who won.
  Result<std::shared_ptr<TsStore>> FindOrCreate(
      const std::string& name,
      const std::function<Result<std::unique_ptr<TsStore>>()>& factory,
      bool* created = nullptr);

  // Inserts without a factory (discovery at Open). Replaces any existing
  // entry.
  void Insert(const std::string& name, std::shared_ptr<TsStore> store);

  // Removes and returns the entry, nullptr when absent.
  std::shared_ptr<TsStore> Remove(const std::string& name);

  // Sorted names across every shard (snapshot-merge: one shard lock at a
  // time).
  std::vector<std::string> ListNames() const;

  // Every live (name, store) pair across all shards, sorted by name.
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>> ListAll()
      const;

  // One shard's (name, store) pairs in that shard's map order — the
  // per-shard maintenance iteration: a policy tick walks shard by shard and
  // never holds more than one shard's lock.
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>> ListShard(
      size_t shard) const;

  // Total series across all shards (sums per-shard sizes, one lock at a
  // time; racy against concurrent creates, like any container size).
  size_t size() const;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, std::shared_ptr<TsStore>> series;
  };

  Shard& shard_for(const std::string& name) {
    return *shards_[ShardOf(name)];
  }
  const Shard& shard_for(const std::string& name) const {
    return *shards_[ShardOf(name)];
  }

  // unique_ptr keeps Shard addresses stable and sidesteps the
  // non-movability of shared_mutex under vector growth.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tsviz

#endif  // TSVIZ_DB_CATALOG_H_
