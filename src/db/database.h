#ifndef TSVIZ_DB_DATABASE_H_
#define TSVIZ_DB_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "m4/cache.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

struct DatabaseConfig {
  // Root directory; each series lives in its own subdirectory.
  std::string root_dir;

  // Defaults applied to newly created series (data_dir is overridden).
  StoreConfig series_defaults;

  // Span-block parallelism for M4 SELECTs: 1 runs the serial operator,
  // larger values submit that many span blocks to the shared executor pool.
  // Runtime override: `SET parallelism = n`.
  int query_parallelism = 1;

  // Capacity (entries) of the per-database M4 result cache; 0 disables
  // result caching. Runtime override: `SET result_cache_capacity = n`.
  size_t m4_result_cache_capacity = 64;

  // When set, overrides the byte budget of the process-wide shared page
  // cache at open. Runtime override: `SET page_cache_bytes = n`.
  std::optional<size_t> page_cache_bytes;
};

// Multi-series façade over TsStore: one LSM store per named series under a
// shared root, discovered on open. This is the shape of a real deployment —
// IoTDB manages one chunk stream per (device, measurement) path — while each
// series keeps the single-series semantics the paper defines.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseConfig config);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // The store for `name`, creating it on first use. Series names are
  // restricted to [A-Za-z0-9_.-] (they become directory names).
  Result<TsStore*> GetOrCreateSeries(const std::string& name);

  // The store for an existing series; kNotFound if absent.
  Result<TsStore*> GetSeries(const std::string& name);

  // Sorted list of series names.
  std::vector<std::string> ListSeries() const;

  // Removes a series and its on-disk data.
  Status DropSeries(const std::string& name);

  // Flushes every series' memtable.
  Status FlushAll();

  // Convenience write/delete/query forwarding to the named series
  // (creating it for writes).
  Status Write(const std::string& series, Timestamp t, Value v);
  Status DeleteRange(const std::string& series, const TimeRange& range);
  Result<M4Result> QueryM4(const std::string& series, const M4Query& query,
                           QueryStats* stats,
                           const M4LsmOptions& options = {});

  // Runtime knobs (`SET <name> = <value>`): parallelism,
  // page_cache_bytes, result_cache_capacity.
  Status ApplySetting(const std::string& name, double value);

  // The M4 result cache shared by every SELECT against this database.
  M4QueryCache& result_cache() { return result_cache_; }
  int query_parallelism() const { return query_parallelism_; }

 private:
  explicit Database(DatabaseConfig config)
      : config_(std::move(config)),
        query_parallelism_(config_.query_parallelism),
        result_cache_(config_.m4_result_cache_capacity) {}

  Status Discover();

  DatabaseConfig config_;
  int query_parallelism_;
  M4QueryCache result_cache_;
  std::map<std::string, std::unique_ptr<TsStore>> series_;
};

// Whether `name` is a legal series name.
bool IsValidSeriesName(const std::string& name);

}  // namespace tsviz

#endif  // TSVIZ_DB_DATABASE_H_
