#ifndef TSVIZ_DB_DATABASE_H_
#define TSVIZ_DB_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bg/maintenance.h"
#include "common/status.h"
#include "m4/cache.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// The runtime knobs ApplySetting accepts, in the order error messages list
// them. Shared with the SQL layer so parser errors and executor errors
// agree on the catalog.
inline constexpr char kValidSetKnobs[] =
    "autoflush_bytes, compaction_files, durable_fsync, faultfs_eio_every, "
    "faultfs_fsync_fail_every, faultfs_seed, faultfs_short_read_every, "
    "faultfs_torn_append_every, listen_backlog, max_connections, "
    "page_cache_bytes, parallelism, partition_interval_ms, read_tolerance, "
    "recorder_capacity_bytes, result_cache_capacity, slow_query_millis, "
    "trace_sample_every, ttl_ms";

struct DatabaseConfig {
  // Root directory; each series lives in its own subdirectory.
  std::string root_dir;

  // Defaults applied to newly created series (data_dir is overridden).
  StoreConfig series_defaults;

  // Span-block parallelism for M4 SELECTs: 1 runs the serial operator,
  // larger values submit that many span blocks to the shared executor pool.
  // Runtime override: `SET parallelism = n`.
  int query_parallelism = 1;

  // Capacity (entries) of the per-database M4 result cache; 0 disables
  // result caching. Runtime override: `SET result_cache_capacity = n`.
  size_t m4_result_cache_capacity = 64;

  // When set, overrides the byte budget of the process-wide shared page
  // cache at open. Runtime override: `SET page_cache_bytes = n`.
  std::optional<size_t> page_cache_bytes;

  // Background maintenance policy (auto-flush, triggered compaction, TTL).
  // The manager exists either way — SHOW JOBS and the runtime knobs always
  // work — but the policy loop only runs between StartMaintenance and
  // StopMaintenance, and only when `maintenance.enabled` is true.
  bg::MaintenanceOptions maintenance;
};

// Multi-series façade over TsStore: one LSM store per named series under a
// shared root, discovered on open. This is the shape of a real deployment —
// IoTDB manages one chunk stream per (device, measurement) path — while each
// series keeps the single-series semantics the paper defines.
//
// Thread-safe: the series map is guarded by a mutex, stores are internally
// synchronized, and background maintenance jobs hold shared_ptr references
// so DropSeries cannot pull a store out from under a running job.
class Database : public bg::StoreCatalog {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseConfig config);

  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // The store for `name`, creating it on first use. Series names are
  // restricted to [A-Za-z0-9_.-] (they become directory names).
  Result<TsStore*> GetOrCreateSeries(const std::string& name);

  // The store for an existing series; kNotFound if absent.
  Result<TsStore*> GetSeries(const std::string& name);

  // Shared-ownership variant for callers that must outlive a concurrent
  // DropSeries (background jobs, long scans).
  Result<std::shared_ptr<TsStore>> GetSeriesShared(const std::string& name);

  // Sorted list of series names.
  std::vector<std::string> ListSeries() const;

  // Removes a series and its on-disk data, after quiescing its background
  // maintenance jobs.
  Status DropSeries(const std::string& name);

  // Flushes every series' memtable.
  Status FlushAll();

  // Compacts every series.
  Status CompactAll();

  // Convenience write/delete/query forwarding to the named series
  // (creating it for writes).
  Status Write(const std::string& series, Timestamp t, Value v);
  Status DeleteRange(const std::string& series, const TimeRange& range);
  Result<M4Result> QueryM4(const std::string& series, const M4Query& query,
                           QueryStats* stats,
                           const M4LsmOptions& options = {});

  // Runtime knobs (`SET <name> = <value>`). Valid names: kValidSetKnobs.
  // Values must be non-negative integers (most knobs require > 0;
  // durable_fsync, the faultfs_* knobs, trace_sample_every and
  // slow_query_millis accept 0, which means off);
  // negative and non-integer values — and unknown names — are rejected
  // with kInvalidArgument listing the valid knobs, without mutating any
  // state. `partition_interval_ms` applies to series created after the
  // SET; existing series keep the interval pinned in their partition.meta.
  Status ApplySetting(const std::string& name, double value);

  // Bare-word knobs: `SET read_tolerance = degrade|strict`. Numeric knobs
  // reject a word value and vice versa, each naming the valid knobs.
  Status ApplySetting(const std::string& name, const std::string& value);

  // The partition interval newly created series will use.
  int64_t partition_interval_ms() const {
    std::lock_guard<std::mutex> lock(settings_mutex_);
    return config_.series_defaults.partition_interval_ms;
  }

  // Background maintenance lifecycle; the server binds these to its own
  // start/stop. Both idempotent.
  void StartMaintenance() { maintenance_->Start(); }
  void StopMaintenance() { maintenance_->Stop(); }
  bg::MaintenanceManager& maintenance() { return *maintenance_; }

  // bg::StoreCatalog: every live series, as shared_ptrs that keep the
  // stores alive for the duration of a maintenance job.
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListStoresForMaintenance() override;

  // The M4 result cache shared by every SELECT against this database.
  M4QueryCache& result_cache() { return result_cache_; }
  int query_parallelism() const {
    std::lock_guard<std::mutex> lock(settings_mutex_);
    return query_parallelism_;
  }

  // Network admission cap (`SET max_connections`): the server evaluates it
  // at every accept, so a runtime change applies to the next connection.
  int max_connections() const {
    return max_connections_.load(std::memory_order_relaxed);
  }

  // Pending-connection queue length passed to listen(2)
  // (`SET listen_backlog`): read at server Start, so a runtime change
  // applies to the next Start.
  int listen_backlog() const {
    return listen_backlog_.load(std::memory_order_relaxed);
  }

 private:
  explicit Database(DatabaseConfig config)
      : config_(std::move(config)),
        query_parallelism_(config_.query_parallelism),
        result_cache_(config_.m4_result_cache_capacity) {}

  Status Discover();

  DatabaseConfig config_;
  // Guards query_parallelism_ and the runtime-adjustable parts of
  // config_.series_defaults (partition_interval_ms).
  mutable std::mutex settings_mutex_;
  int query_parallelism_;
  std::atomic<int> max_connections_{1024};
  std::atomic<int> listen_backlog_{64};
  M4QueryCache result_cache_;
  mutable std::mutex series_mutex_;  // guards series_
  std::map<std::string, std::shared_ptr<TsStore>> series_;
  std::unique_ptr<bg::MaintenanceManager> maintenance_;
};

// Whether `name` is a legal series name.
bool IsValidSeriesName(const std::string& name);

}  // namespace tsviz

#endif  // TSVIZ_DB_DATABASE_H_
