#ifndef TSVIZ_DB_DATABASE_H_
#define TSVIZ_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bg/maintenance.h"
#include "common/status.h"
#include "db/catalog.h"
#include "m4/cache.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "repl/applier.h"
#include "repl/log.h"
#include "repl/relay.h"
#include "repl/target.h"
#include "storage/store.h"

namespace tsviz {

// The runtime knobs `SET <name> = <value>` accepts, alphabetically. Single
// source of truth: this X-macro generates both the error-message catalog
// (kValidSetKnobs) and the name table (kSetKnobNames) that ApplySetting
// validates against and the drift test iterates — a new knob added here is
// automatically part of the error message, the membership check, and the
// test; a knob handled in ApplySetting but missing here is rejected before
// its handler can run.
#define TSVIZ_SET_KNOBS(X)      \
  X(autoflush_bytes)            \
  X(catalog_shards)             \
  X(compaction_files)           \
  X(durable_fsync)              \
  X(faultfs_eio_every)          \
  X(faultfs_fsync_fail_every)   \
  X(faultfs_seed)               \
  X(faultfs_short_read_every)   \
  X(faultfs_torn_append_every)  \
  X(idle_timeout_ms)            \
  X(listen_backlog)             \
  X(max_connections)            \
  X(max_staleness_ms)           \
  X(page_cache_bytes)           \
  X(parallelism)                \
  X(partition_interval_ms)      \
  X(read_tolerance)             \
  X(recorder_capacity_bytes)    \
  X(repl_listen_port)           \
  X(replica_of)                 \
  X(result_cache_capacity)      \
  X(slow_query_millis)          \
  X(trace_sample_every)         \
  X(ttl_ms)

inline constexpr const char* kSetKnobNames[] = {
#define TSVIZ_SET_KNOB_NAME(knob) #knob,
    TSVIZ_SET_KNOBS(TSVIZ_SET_KNOB_NAME)
#undef TSVIZ_SET_KNOB_NAME
};

inline constexpr size_t kNumSetKnobs =
    sizeof(kSetKnobNames) / sizeof(kSetKnobNames[0]);

namespace internal {
// ", knob1, knob2, ..." — the comma-first form concatenates at compile time;
// kValidSetKnobs skips the leading separator.
inline constexpr char kValidSetKnobsWithLeadingSep[] =
#define TSVIZ_SET_KNOB_JOIN(knob) ", " #knob
    TSVIZ_SET_KNOBS(TSVIZ_SET_KNOB_JOIN)
#undef TSVIZ_SET_KNOB_JOIN
    ;
}  // namespace internal

// The knob catalog as error messages list it. Shared with the SQL layer so
// parser errors and executor errors agree.
inline constexpr const char* kValidSetKnobs =
    internal::kValidSetKnobsWithLeadingSep + 2;

struct DatabaseConfig {
  // Root directory; each series lives in its own subdirectory.
  std::string root_dir;

  // Defaults applied to newly created series (data_dir is overridden).
  StoreConfig series_defaults;

  // Span-block parallelism for M4 SELECTs: 1 runs the serial operator,
  // larger values submit that many span blocks to the shared executor pool.
  // Runtime override: `SET parallelism = n`.
  int query_parallelism = 1;

  // Capacity (entries) of the per-database M4 result cache; 0 disables
  // result caching. Runtime override: `SET result_cache_capacity = n`.
  size_t m4_result_cache_capacity = 64;

  // When set, overrides the byte budget of the process-wide shared page
  // cache at open. Runtime override: `SET page_cache_bytes = n`.
  std::optional<size_t> page_cache_bytes;

  // Series-catalog shard count; 0 uses the process default
  // (DefaultCatalogShards(), runtime-adjustable via `SET catalog_shards`,
  // which applies at the next Open — a live catalog cannot re-hash under
  // concurrent lookups). Clamped to [1, 1024].
  size_t catalog_shards = 0;

  // Background maintenance policy (auto-flush, triggered compaction, TTL).
  // The manager exists either way — SHOW JOBS and the runtime knobs always
  // work — but the policy loop only runs between StartMaintenance and
  // StopMaintenance, and only when `maintenance.enabled` is true.
  bg::MaintenanceOptions maintenance;
};

// Replication role of a Database. A primary appends every mutation to a
// replication log and serves it to followers through a Relay; a replica is
// read-only for clients — an Applier replays the primary's log into its
// stores. Standalone (the default) has no replication machinery at all.
enum class ReplicationRole { kStandalone, kPrimary, kReplica };

const char* ReplicationRoleName(ReplicationRole role);

// Snapshot for SHOW REPLICATION.
struct ReplicationStatus {
  ReplicationRole role = ReplicationRole::kStandalone;
  std::string state;        // primary: SERVING; replica: the applier state
  int listen_port = 0;      // primary relay port
  std::string primary;      // replica: host:port it follows
  uint64_t last_seq = 0;    // primary: log end; replica: applied watermark
  uint64_t primary_seq = 0; // replica: last observed primary log end
  int64_t lag_ms = 0;       // replica staleness (0 on primary/standalone)
  uint64_t reconnects = 0;
  uint64_t divergences = 0;
};

// Multi-series façade over TsStore: one LSM store per named series under a
// shared root, discovered on open. This is the shape of a real deployment —
// IoTDB manages one chunk stream per (device, measurement) path — while each
// series keeps the single-series semantics the paper defines.
//
// Thread-safe: the series map is a SeriesCatalog (N shards, each with its
// own reader-writer lock), stores are internally synchronized, and
// background maintenance jobs hold shared_ptr references so DropSeries
// cannot pull a store out from under a running job. Runtime settings read
// on hot paths (query_parallelism, partition_interval_ms, durable_fsync)
// are relaxed atomics — no per-query lock.
//
// Replication: `SET repl_listen_port = p` makes this database a primary
// (every Write/WriteBatch/DeleteRange/DropSeries is logged before it is
// applied, and a Relay serves the log); `SET replica_of = 'host:port'`
// makes it a replica (client writes are rejected kUnavailable, an Applier
// replays the primary's log through the ReplicaTarget methods).
class Database : public bg::StoreCatalog, public repl::ReplicaTarget {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseConfig config);

  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // The store for `name`, creating it on first use. Series names are
  // restricted to [A-Za-z0-9_.-] (they become directory names).
  Result<TsStore*> GetOrCreateSeries(const std::string& name);

  // The store for an existing series; kNotFound if absent. Hot path: one
  // shard's shared lock, concurrent with every other shard and with other
  // readers of the same shard.
  Result<TsStore*> GetSeries(const std::string& name);

  // Shared-ownership variant for callers that must outlive a concurrent
  // DropSeries (background jobs, long scans).
  Result<std::shared_ptr<TsStore>> GetSeriesShared(const std::string& name);

  // Sorted list of series names (snapshot-merged across shards).
  std::vector<std::string> ListSeries() const;

  // Removes a series and its on-disk data, after quiescing its background
  // maintenance jobs.
  Status DropSeries(const std::string& name);

  // Flushes every series' memtable.
  Status FlushAll();

  // Compacts every series.
  Status CompactAll();

  // Convenience write/delete/query forwarding to the named series
  // (creating it for writes).
  Status Write(const std::string& series, Timestamp t, Value v);

  // Batched ingest: all `points` land in the named series under one store
  // lock acquisition and one WAL write (TsStore::WriteBatch). All-or-
  // nothing validation; empty batch is a no-op.
  Status WriteBatch(const std::string& series,
                    const std::vector<Point>& points);

  Status DeleteRange(const std::string& series, const TimeRange& range);
  Result<M4Result> QueryM4(const std::string& series, const M4Query& query,
                           QueryStats* stats,
                           const M4LsmOptions& options = {});

  // Runtime knobs (`SET <name> = <value>`). Valid names: kValidSetKnobs.
  // Values must be non-negative integers (most knobs require > 0;
  // durable_fsync, the faultfs_* knobs, trace_sample_every and
  // slow_query_millis accept 0, which means off);
  // negative and non-integer values — and unknown names — are rejected
  // with kInvalidArgument listing the valid knobs, without mutating any
  // state. `partition_interval_ms` applies to series created after the
  // SET; existing series keep the interval pinned in their partition.meta.
  // `catalog_shards` updates the process default, consumed at next Open.
  Status ApplySetting(const std::string& name, double value);

  // Bare-word knobs: `SET read_tolerance = degrade|strict`. Numeric knobs
  // reject a word value and vice versa, each naming the valid knobs.
  Status ApplySetting(const std::string& name, const std::string& value);

  // The partition interval newly created series will use.
  int64_t partition_interval_ms() const {
    return partition_interval_ms_.load(std::memory_order_relaxed);
  }

  // Background maintenance lifecycle; the server binds these to its own
  // start/stop. Both idempotent.
  void StartMaintenance() { maintenance_->Start(); }
  void StopMaintenance() { maintenance_->Stop(); }
  bg::MaintenanceManager& maintenance() { return *maintenance_; }

  // bg::StoreCatalog: every live series, as shared_ptrs that keep the
  // stores alive for the duration of a maintenance job. The per-shard
  // variants let the policy tick walk shard by shard, holding at most one
  // shard's lock at a time.
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListStoresForMaintenance() override;
  size_t NumMaintenanceShards() const override;
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListShardStoresForMaintenance(size_t shard) override;

  // The sharded series catalog (exposed for tests and SHOW-style tooling).
  const SeriesCatalog& catalog() const { return catalog_; }
  size_t catalog_shards() const { return catalog_.num_shards(); }

  // The M4 result cache shared by every SELECT against this database.
  M4QueryCache& result_cache() { return result_cache_; }
  int query_parallelism() const {
    return query_parallelism_.load(std::memory_order_relaxed);
  }

  // Network admission cap (`SET max_connections`): the server evaluates it
  // at every accept, so a runtime change applies to the next connection.
  int max_connections() const {
    return max_connections_.load(std::memory_order_relaxed);
  }

  // Pending-connection queue length passed to listen(2)
  // (`SET listen_backlog`): read at server Start, so a runtime change
  // applies to the next Start.
  int listen_backlog() const {
    return listen_backlog_.load(std::memory_order_relaxed);
  }

  // Per-connection idle timeout (`SET idle_timeout_ms`, 0 = off): the
  // server's event loop evaluates it on every sweep, so a runtime change
  // applies to live connections.
  int64_t idle_timeout_ms() const {
    return idle_timeout_ms_.load(std::memory_order_relaxed);
  }

  // Staleness bound for follower reads (`SET max_staleness_ms`, 0 = no
  // bound).
  int64_t max_staleness_ms() const {
    return max_staleness_ms_.load(std::memory_order_relaxed);
  }

  // --- Replication -------------------------------------------------------

  ReplicationRole replication_role() const {
    return static_cast<ReplicationRole>(
        role_cached_.load(std::memory_order_relaxed));
  }
  bool IsReplica() const {
    return replication_role() == ReplicationRole::kReplica;
  }

  // Becomes a primary serving the replication log on `port` (0 picks an
  // ephemeral port — tests). On a restarted primary this replays the log
  // tail past the durable applied watermark, so a record logged but not
  // yet applied when the process died is not lost. Knob handler for
  // `SET repl_listen_port`.
  Status EnablePrimary(int port);
  Status DisablePrimary();

  // Becomes a replica of `host:port`. Knob handler for `SET replica_of`;
  // "off" maps to DisableReplica.
  Status EnableReplica(const std::string& host, int port);
  Status DisableReplica();

  // Current replica staleness in ms (0 unless this is a replica).
  int64_t replication_lag_ms() const;

  // OK unless this is a replica that must not serve reads right now:
  // quarantined (SYNCING after divergence) or lagging past
  // max_staleness_ms. Both rejections are retryable.
  Status CheckReplicaRead() const;

  ReplicationStatus replication_status() const;

  // The relay's bound port (primary only; 0 otherwise). Tests use this
  // with `repl_listen_port = 0` ephemeral binds.
  int repl_port() const;

  // repl::ReplicaTarget — the applier's write path into this database.
  // Effect-idempotent by construction: re-putting the same points,
  // re-deleting the same range and re-dropping an absent series are all
  // no-ops on the final state.
  Status ApplyPutBatch(const std::string& series,
                       const std::vector<Point>& points) override;
  Status ApplyDeleteRange(const std::string& series,
                          const TimeRange& range) override;
  Status ApplyDropSeries(const std::string& series) override;
  Status WipeForResync() override;

 private:
  explicit Database(DatabaseConfig config)
      : config_(std::move(config)),
        query_parallelism_(config_.query_parallelism),
        partition_interval_ms_(config_.series_defaults.partition_interval_ms),
        durable_fsync_(config_.series_defaults.durable_fsync),
        result_cache_(config_.m4_result_cache_capacity),
        catalog_(config_.catalog_shards) {}

  Status Discover();

  // config_.series_defaults with the runtime-adjustable fields
  // (partition_interval_ms, durable_fsync) read from their atomics.
  StoreConfig CurrentSeriesDefaults() const;

  // Raw mutators that skip both the replica write rejection and the
  // primary's replication hook — used by the standalone path, the
  // ReplicaTarget methods, and primary-side apply/replay.
  Status WriteBatchLocal(const std::string& series,
                         const std::vector<Point>& points);
  Status DeleteRangeLocal(const std::string& series, const TimeRange& range);
  Status DropSeriesLocal(const std::string& name);

  // Primary write path: append to the replication log, then apply locally.
  // Serialized on repl_mutex_ so log order is apply order.
  Status PrimaryMutate(repl::ReplOp op, const std::string& series,
                       std::string payload,
                       const std::function<Status()>& apply);
  // Applies one logged record locally (log replay on a restarted primary).
  Status ApplyLoggedRecord(const repl::ReplRecord& record);
  // Lazily persists the primary's applied watermark (repl/applied).
  void NotePrimaryAppliedLocked(uint64_t seq, bool force);
  std::string ReplDir() const { return config_.root_dir + "/repl"; }
  void SubmitReplHeartbeatLocked();

  DatabaseConfig config_;
  // Hot-path settings: SELECT reads query_parallelism_ and series creation
  // reads partition_interval_ms_/durable_fsync_ without any lock.
  std::atomic<int> query_parallelism_;
  std::atomic<int64_t> partition_interval_ms_;
  std::atomic<bool> durable_fsync_;
  std::atomic<int> max_connections_{1024};
  std::atomic<int> listen_backlog_{64};
  std::atomic<int64_t> idle_timeout_ms_{0};
  std::atomic<int64_t> max_staleness_ms_{0};
  M4QueryCache result_cache_;
  SeriesCatalog catalog_;
  std::unique_ptr<bg::MaintenanceManager> maintenance_;

  // Replication state. repl_mutex_ guards the role and the machinery AND
  // serializes the primary's {log append; store apply} pairs so the log
  // order is the apply order. role_cached_ mirrors role_ for the lock-free
  // hot-path check on every client write.
  mutable std::mutex repl_mutex_;
  ReplicationRole role_ = ReplicationRole::kStandalone;
  std::atomic<int> role_cached_{0};
  std::unique_ptr<repl::ReplLog> repl_log_;
  std::unique_ptr<repl::Relay> relay_;
  std::unique_ptr<repl::Applier> applier_;
  uint64_t primary_applied_seq_ = 0;   // guarded by repl_mutex_
  uint64_t primary_persisted_seq_ = 0; // last value written to repl/applied
  bool heartbeat_submitted_ = false;
};

// Whether `name` is a legal series name.
bool IsValidSeriesName(const std::string& name);

}  // namespace tsviz

#endif  // TSVIZ_DB_DATABASE_H_
