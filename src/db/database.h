#ifndef TSVIZ_DB_DATABASE_H_
#define TSVIZ_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bg/maintenance.h"
#include "common/status.h"
#include "db/catalog.h"
#include "m4/cache.h"
#include "m4/m4_lsm.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"

namespace tsviz {

// The runtime knobs `SET <name> = <value>` accepts, alphabetically. Single
// source of truth: this X-macro generates both the error-message catalog
// (kValidSetKnobs) and the name table (kSetKnobNames) that ApplySetting
// validates against and the drift test iterates — a new knob added here is
// automatically part of the error message, the membership check, and the
// test; a knob handled in ApplySetting but missing here is rejected before
// its handler can run.
#define TSVIZ_SET_KNOBS(X)      \
  X(autoflush_bytes)            \
  X(catalog_shards)             \
  X(compaction_files)           \
  X(durable_fsync)              \
  X(faultfs_eio_every)          \
  X(faultfs_fsync_fail_every)   \
  X(faultfs_seed)               \
  X(faultfs_short_read_every)   \
  X(faultfs_torn_append_every)  \
  X(listen_backlog)             \
  X(max_connections)            \
  X(page_cache_bytes)           \
  X(parallelism)                \
  X(partition_interval_ms)      \
  X(read_tolerance)             \
  X(recorder_capacity_bytes)    \
  X(result_cache_capacity)      \
  X(slow_query_millis)          \
  X(trace_sample_every)         \
  X(ttl_ms)

inline constexpr const char* kSetKnobNames[] = {
#define TSVIZ_SET_KNOB_NAME(knob) #knob,
    TSVIZ_SET_KNOBS(TSVIZ_SET_KNOB_NAME)
#undef TSVIZ_SET_KNOB_NAME
};

inline constexpr size_t kNumSetKnobs =
    sizeof(kSetKnobNames) / sizeof(kSetKnobNames[0]);

namespace internal {
// ", knob1, knob2, ..." — the comma-first form concatenates at compile time;
// kValidSetKnobs skips the leading separator.
inline constexpr char kValidSetKnobsWithLeadingSep[] =
#define TSVIZ_SET_KNOB_JOIN(knob) ", " #knob
    TSVIZ_SET_KNOBS(TSVIZ_SET_KNOB_JOIN)
#undef TSVIZ_SET_KNOB_JOIN
    ;
}  // namespace internal

// The knob catalog as error messages list it. Shared with the SQL layer so
// parser errors and executor errors agree.
inline constexpr const char* kValidSetKnobs =
    internal::kValidSetKnobsWithLeadingSep + 2;

struct DatabaseConfig {
  // Root directory; each series lives in its own subdirectory.
  std::string root_dir;

  // Defaults applied to newly created series (data_dir is overridden).
  StoreConfig series_defaults;

  // Span-block parallelism for M4 SELECTs: 1 runs the serial operator,
  // larger values submit that many span blocks to the shared executor pool.
  // Runtime override: `SET parallelism = n`.
  int query_parallelism = 1;

  // Capacity (entries) of the per-database M4 result cache; 0 disables
  // result caching. Runtime override: `SET result_cache_capacity = n`.
  size_t m4_result_cache_capacity = 64;

  // When set, overrides the byte budget of the process-wide shared page
  // cache at open. Runtime override: `SET page_cache_bytes = n`.
  std::optional<size_t> page_cache_bytes;

  // Series-catalog shard count; 0 uses the process default
  // (DefaultCatalogShards(), runtime-adjustable via `SET catalog_shards`,
  // which applies at the next Open — a live catalog cannot re-hash under
  // concurrent lookups). Clamped to [1, 1024].
  size_t catalog_shards = 0;

  // Background maintenance policy (auto-flush, triggered compaction, TTL).
  // The manager exists either way — SHOW JOBS and the runtime knobs always
  // work — but the policy loop only runs between StartMaintenance and
  // StopMaintenance, and only when `maintenance.enabled` is true.
  bg::MaintenanceOptions maintenance;
};

// Multi-series façade over TsStore: one LSM store per named series under a
// shared root, discovered on open. This is the shape of a real deployment —
// IoTDB manages one chunk stream per (device, measurement) path — while each
// series keeps the single-series semantics the paper defines.
//
// Thread-safe: the series map is a SeriesCatalog (N shards, each with its
// own reader-writer lock), stores are internally synchronized, and
// background maintenance jobs hold shared_ptr references so DropSeries
// cannot pull a store out from under a running job. Runtime settings read
// on hot paths (query_parallelism, partition_interval_ms, durable_fsync)
// are relaxed atomics — no per-query lock.
class Database : public bg::StoreCatalog {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseConfig config);

  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // The store for `name`, creating it on first use. Series names are
  // restricted to [A-Za-z0-9_.-] (they become directory names).
  Result<TsStore*> GetOrCreateSeries(const std::string& name);

  // The store for an existing series; kNotFound if absent. Hot path: one
  // shard's shared lock, concurrent with every other shard and with other
  // readers of the same shard.
  Result<TsStore*> GetSeries(const std::string& name);

  // Shared-ownership variant for callers that must outlive a concurrent
  // DropSeries (background jobs, long scans).
  Result<std::shared_ptr<TsStore>> GetSeriesShared(const std::string& name);

  // Sorted list of series names (snapshot-merged across shards).
  std::vector<std::string> ListSeries() const;

  // Removes a series and its on-disk data, after quiescing its background
  // maintenance jobs.
  Status DropSeries(const std::string& name);

  // Flushes every series' memtable.
  Status FlushAll();

  // Compacts every series.
  Status CompactAll();

  // Convenience write/delete/query forwarding to the named series
  // (creating it for writes).
  Status Write(const std::string& series, Timestamp t, Value v);

  // Batched ingest: all `points` land in the named series under one store
  // lock acquisition and one WAL write (TsStore::WriteBatch). All-or-
  // nothing validation; empty batch is a no-op.
  Status WriteBatch(const std::string& series,
                    const std::vector<Point>& points);

  Status DeleteRange(const std::string& series, const TimeRange& range);
  Result<M4Result> QueryM4(const std::string& series, const M4Query& query,
                           QueryStats* stats,
                           const M4LsmOptions& options = {});

  // Runtime knobs (`SET <name> = <value>`). Valid names: kValidSetKnobs.
  // Values must be non-negative integers (most knobs require > 0;
  // durable_fsync, the faultfs_* knobs, trace_sample_every and
  // slow_query_millis accept 0, which means off);
  // negative and non-integer values — and unknown names — are rejected
  // with kInvalidArgument listing the valid knobs, without mutating any
  // state. `partition_interval_ms` applies to series created after the
  // SET; existing series keep the interval pinned in their partition.meta.
  // `catalog_shards` updates the process default, consumed at next Open.
  Status ApplySetting(const std::string& name, double value);

  // Bare-word knobs: `SET read_tolerance = degrade|strict`. Numeric knobs
  // reject a word value and vice versa, each naming the valid knobs.
  Status ApplySetting(const std::string& name, const std::string& value);

  // The partition interval newly created series will use.
  int64_t partition_interval_ms() const {
    return partition_interval_ms_.load(std::memory_order_relaxed);
  }

  // Background maintenance lifecycle; the server binds these to its own
  // start/stop. Both idempotent.
  void StartMaintenance() { maintenance_->Start(); }
  void StopMaintenance() { maintenance_->Stop(); }
  bg::MaintenanceManager& maintenance() { return *maintenance_; }

  // bg::StoreCatalog: every live series, as shared_ptrs that keep the
  // stores alive for the duration of a maintenance job. The per-shard
  // variants let the policy tick walk shard by shard, holding at most one
  // shard's lock at a time.
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListStoresForMaintenance() override;
  size_t NumMaintenanceShards() const override;
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
  ListShardStoresForMaintenance(size_t shard) override;

  // The sharded series catalog (exposed for tests and SHOW-style tooling).
  const SeriesCatalog& catalog() const { return catalog_; }
  size_t catalog_shards() const { return catalog_.num_shards(); }

  // The M4 result cache shared by every SELECT against this database.
  M4QueryCache& result_cache() { return result_cache_; }
  int query_parallelism() const {
    return query_parallelism_.load(std::memory_order_relaxed);
  }

  // Network admission cap (`SET max_connections`): the server evaluates it
  // at every accept, so a runtime change applies to the next connection.
  int max_connections() const {
    return max_connections_.load(std::memory_order_relaxed);
  }

  // Pending-connection queue length passed to listen(2)
  // (`SET listen_backlog`): read at server Start, so a runtime change
  // applies to the next Start.
  int listen_backlog() const {
    return listen_backlog_.load(std::memory_order_relaxed);
  }

 private:
  explicit Database(DatabaseConfig config)
      : config_(std::move(config)),
        query_parallelism_(config_.query_parallelism),
        partition_interval_ms_(config_.series_defaults.partition_interval_ms),
        durable_fsync_(config_.series_defaults.durable_fsync),
        result_cache_(config_.m4_result_cache_capacity),
        catalog_(config_.catalog_shards) {}

  Status Discover();

  // config_.series_defaults with the runtime-adjustable fields
  // (partition_interval_ms, durable_fsync) read from their atomics.
  StoreConfig CurrentSeriesDefaults() const;

  DatabaseConfig config_;
  // Hot-path settings: SELECT reads query_parallelism_ and series creation
  // reads partition_interval_ms_/durable_fsync_ without any lock.
  std::atomic<int> query_parallelism_;
  std::atomic<int64_t> partition_interval_ms_;
  std::atomic<bool> durable_fsync_;
  std::atomic<int> max_connections_{1024};
  std::atomic<int> listen_backlog_{64};
  M4QueryCache result_cache_;
  SeriesCatalog catalog_;
  std::unique_ptr<bg::MaintenanceManager> maintenance_;
};

// Whether `name` is a legal series name.
bool IsValidSeriesName(const std::string& name);

}  // namespace tsviz

#endif  // TSVIZ_DB_DATABASE_H_
