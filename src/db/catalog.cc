#include "db/catalog.h"

#include <algorithm>
#include <atomic>

#include "common/stats.h"
#include "obs/metrics.h"

namespace tsviz {

namespace {

// Process default for DatabaseConfig::catalog_shards == 0; adjustable via
// `SET catalog_shards` (applies at the next Database::Open).
std::atomic<size_t> g_default_catalog_shards{16};

constexpr size_t kMaxCatalogShards = 1024;

// FNV-1a over the series name: deterministic across platforms (unlike
// std::hash), so a test can pick series names that collide or spread.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

obs::Histogram& LockWaitMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "catalog_lock_wait_millis",
      "Time spent waiting for a contended catalog shard lock (uncontended "
      "acquisitions record 0)");
  return h;
}
obs::Counter& LookupsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "catalog_lookups_total", "Series lookups against the sharded catalog");
  return c;
}
obs::Counter& CreatesTotal() {
  static obs::Counter& c = obs::GetCounter(
      "catalog_creates_total", "Series inserted into the catalog");
  return c;
}
obs::Counter& DropsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "catalog_drops_total", "Series removed from the catalog");
  return c;
}
obs::Gauge& SeriesOpen() {
  static obs::Gauge& g = obs::GetGauge(
      "catalog_series_open", "Series currently open across all catalogs");
  return g;
}
obs::Gauge& ShardsGauge() {
  static obs::Gauge& g = obs::GetGauge(
      "catalog_shards",
      "Shard count of the most recently opened catalog");
  return g;
}

// Timed acquisitions: the uncontended try-lock path records a zero sample
// without reading the clock, so the histogram's count is the acquisition
// count and its sum is pure contention wait.
void LockSharedTimed(std::shared_mutex& mutex) {
  if (mutex.try_lock_shared()) {
    LockWaitMillis().Observe(0.0);
    return;
  }
  Timer timer;
  mutex.lock_shared();
  LockWaitMillis().Observe(timer.ElapsedMillis());
}

void LockExclusiveTimed(std::shared_mutex& mutex) {
  if (mutex.try_lock()) {
    LockWaitMillis().Observe(0.0);
    return;
  }
  Timer timer;
  mutex.lock();
  LockWaitMillis().Observe(timer.ElapsedMillis());
}

}  // namespace

size_t DefaultCatalogShards() {
  return g_default_catalog_shards.load(std::memory_order_relaxed);
}

void SetDefaultCatalogShards(size_t shards) {
  g_default_catalog_shards.store(
      std::clamp<size_t>(shards, 1, kMaxCatalogShards),
      std::memory_order_relaxed);
}

SeriesCatalog::SeriesCatalog(size_t shards) {
  if (shards == 0) shards = DefaultCatalogShards();
  shards = std::clamp<size_t>(shards, 1, kMaxCatalogShards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  ShardsGauge().Set(static_cast<double>(shards));
}

size_t SeriesCatalog::ShardOf(const std::string& name) const {
  return static_cast<size_t>(HashName(name) % shards_.size());
}

std::shared_ptr<TsStore> SeriesCatalog::Find(const std::string& name) const {
  LookupsTotal().Inc();
  const Shard& shard = shard_for(name);
  LockSharedTimed(shard.mutex);
  std::shared_lock<std::shared_mutex> lock(shard.mutex, std::adopt_lock);
  auto it = shard.series.find(name);
  return it == shard.series.end() ? nullptr : it->second;
}

Result<std::shared_ptr<TsStore>> SeriesCatalog::FindOrCreate(
    const std::string& name,
    const std::function<Result<std::unique_ptr<TsStore>>()>& factory,
    bool* created) {
  if (created != nullptr) *created = false;
  if (std::shared_ptr<TsStore> existing = Find(name)) return existing;

  // Build outside any lock: TsStore::Open reads the directory, replays the
  // WAL, and may write a manifest — none of which should stall lookups of
  // unrelated series on this shard. Two racing creators both build; the
  // insert below picks one winner and the loser's store (opened on the same
  // directory, read-only so far) is discarded.
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> built, factory());
  std::shared_ptr<TsStore> store = std::move(built);

  Shard& shard = shard_for(name);
  LockExclusiveTimed(shard.mutex);
  std::unique_lock<std::shared_mutex> lock(shard.mutex, std::adopt_lock);
  auto [it, inserted] = shard.series.emplace(name, store);
  if (!inserted) return it->second;  // lost the race; winner's store stands
  CreatesTotal().Inc();
  SeriesOpen().Add(1);
  if (created != nullptr) *created = true;
  return store;
}

void SeriesCatalog::Insert(const std::string& name,
                           std::shared_ptr<TsStore> store) {
  Shard& shard = shard_for(name);
  LockExclusiveTimed(shard.mutex);
  std::unique_lock<std::shared_mutex> lock(shard.mutex, std::adopt_lock);
  auto [it, inserted] = shard.series.insert_or_assign(name, std::move(store));
  (void)it;
  if (inserted) {
    CreatesTotal().Inc();
    SeriesOpen().Add(1);
  }
}

std::shared_ptr<TsStore> SeriesCatalog::Remove(const std::string& name) {
  Shard& shard = shard_for(name);
  LockExclusiveTimed(shard.mutex);
  std::unique_lock<std::shared_mutex> lock(shard.mutex, std::adopt_lock);
  auto it = shard.series.find(name);
  if (it == shard.series.end()) return nullptr;
  std::shared_ptr<TsStore> store = std::move(it->second);
  shard.series.erase(it);
  DropsTotal().Inc();
  SeriesOpen().Add(-1);
  return store;
}

std::vector<std::string> SeriesCatalog::ListNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    LockSharedTimed(shard->mutex);
    std::shared_lock<std::shared_mutex> lock(shard->mutex, std::adopt_lock);
    for (const auto& [name, store] : shard->series) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
SeriesCatalog::ListAll() const {
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>> out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto shard = ListShard(i);
    out.insert(out.end(), std::make_move_iterator(shard.begin()),
               std::make_move_iterator(shard.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, std::shared_ptr<TsStore>>>
SeriesCatalog::ListShard(size_t index) const {
  std::vector<std::pair<std::string, std::shared_ptr<TsStore>>> out;
  const Shard& shard = *shards_[index];
  LockSharedTimed(shard.mutex);
  std::shared_lock<std::shared_mutex> lock(shard.mutex, std::adopt_lock);
  out.reserve(shard.series.size());
  for (const auto& [name, store] : shard.series) out.emplace_back(name, store);
  return out;
}

size_t SeriesCatalog::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    LockSharedTimed(shard->mutex);
    std::shared_lock<std::shared_mutex> lock(shard->mutex, std::adopt_lock);
    total += shard->series.size();
  }
  return total;
}

}  // namespace tsviz
