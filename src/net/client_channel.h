#ifndef TSVIZ_NET_CLIENT_CHANNEL_H_
#define TSVIZ_NET_CLIENT_CHANNEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tsviz::net {

// Blocking client side of the newline-delimited protocol NetServer speaks:
// one request line out, one blank-line-terminated reply back. Every
// operation carries an explicit timeout — the replication applier (and any
// other embedded client) must never hang on a dead peer; a timed-out or
// failed operation poisons the channel (kUnavailable, retryable), and the
// caller reconnects.
class ClientChannel {
 public:
  // Connects to host:port with a bounded wait (non-blocking connect +
  // poll). kUnavailable on refusal or timeout.
  static Result<std::unique_ptr<ClientChannel>> Connect(
      const std::string& host, int port, int connect_timeout_ms);

  ~ClientChannel();
  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  // Writes `line` plus the newline framing.
  Status SendLine(std::string_view line);

  // Reads one reply: every line up to (excluding) the blank terminator
  // line. The timeout bounds the whole reply, not each read(2).
  Result<std::vector<std::string>> ReadReply(int read_timeout_ms);

  // One request-reply round trip.
  Result<std::vector<std::string>> Call(std::string_view line,
                                        int read_timeout_ms);

  void Close();

 private:
  explicit ClientChannel(int fd);

  int fd_ = -1;
  std::string inbuf_;  // bytes read past the previous reply's terminator
};

}  // namespace tsviz::net

#endif  // TSVIZ_NET_CLIENT_CHANNEL_H_
