#ifndef TSVIZ_NET_BOUNDED_QUEUE_H_
#define TSVIZ_NET_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace tsviz::net {

// Bounded multi-producer/multi-consumer queue feeding the request-execution
// workers. The event loop produces with the non-blocking TryPush — a full
// queue is the load-shedding signal, never a stall — and workers consume
// with the blocking Pop. Stop() wakes every waiter; a stopped queue drops
// its remaining items (the connections they belong to are being torn down).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues without blocking. Returns false (leaving `item` untouched)
  // when the queue is at capacity or stopped.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is stopped. Returns
  // false only on stop, so workers use it as their run condition.
  bool Pop(T* item) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return stopped_ || !items_.empty(); });
    if (stopped_) return false;
    *item = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Wakes every blocked Pop and rejects further pushes. Items still queued
  // stay until Drain; Pop never hands them out after a stop.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    ready_.notify_all();
  }

  // Re-arms a stopped queue (empty, accepting pushes) so the owning server
  // can Start again after a Stop.
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = false;
    items_.clear();
  }

  // Removes and returns the count of undelivered items (post-Stop cleanup,
  // so depth accounting can settle).
  size_t Drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = items_.size();
    items_.clear();
    return n;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool stopped_ = false;
};

}  // namespace tsviz::net

#endif  // TSVIZ_NET_BOUNDED_QUEUE_H_
