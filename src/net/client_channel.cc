#include "net/client_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace tsviz::net {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClientChannel::ClientChannel(int fd) : fd_(fd) {}

ClientChannel::~ClientChannel() { Close(); }

void ClientChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<ClientChannel>> ClientChannel::Connect(
    const std::string& host, int port, int connect_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = Status::Unavailable("connect " + host + ":" +
                                        std::to_string(port) + ": " +
                                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ClientChannel>(new ClientChannel(fd));
}

Status ClientChannel::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::Unavailable("channel is closed");
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The socket stayed non-blocking from connect; a full send buffer
        // on a one-line request means the peer stopped reading.
        pollfd pfd{fd_, POLLOUT, 0};
        if (::poll(&pfd, 1, 1000) > 0) continue;
      }
      Status status =
          Status::Unavailable(std::string("send: ") + std::strerror(errno));
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ClientChannel::ReadReply(
    int read_timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("channel is closed");
  const int64_t deadline = NowMillis() + read_timeout_ms;
  // A reply ends at the first blank line ("\n\n" overall, or a reply that
  // is nothing but "\n").
  for (;;) {
    size_t scan_from = 0;
    size_t pos;
    std::vector<std::string> lines;
    bool complete = false;
    while ((pos = inbuf_.find('\n', scan_from)) != std::string::npos) {
      std::string line = inbuf_.substr(scan_from, pos - scan_from);
      scan_from = pos + 1;
      if (line.empty()) {
        complete = true;
        break;
      }
      lines.push_back(std::move(line));
    }
    if (complete) {
      inbuf_.erase(0, scan_from);
      return lines;
    }
    const int64_t remaining = deadline - NowMillis();
    if (remaining <= 0) {
      Close();
      return Status::Unavailable("read timed out");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready <= 0) {
      Close();
      return Status::Unavailable(ready == 0 ? "read timed out"
                                            : std::string("poll: ") +
                                                  std::strerror(errno));
    }
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::Unavailable("peer closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      Close();
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

Result<std::vector<std::string>> ClientChannel::Call(std::string_view line,
                                                     int read_timeout_ms) {
  TSVIZ_RETURN_IF_ERROR(SendLine(line));
  return ReadReply(read_timeout_ms);
}

}  // namespace tsviz::net
