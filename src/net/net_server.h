#ifndef TSVIZ_NET_NET_SERVER_H_
#define TSVIZ_NET_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/bounded_queue.h"

namespace tsviz::net {

// Async network subsystem: one epoll event-loop thread owns every socket
// (listener, eventfd wakeup, client connections) and never executes a
// request itself; a fixed pool of workers consumes a bounded MPMC queue and
// runs the protocol-agnostic Handler. The protocol is newline-delimited
// request framing with pipelining: any number of statements may arrive in a
// single read, each is answered by one Response payload, and responses go
// back strictly in arrival order per connection (requests of one connection
// execute one at a time, so session semantics — SET then SELECT — hold;
// different connections execute concurrently across the pool).
//
// Overload never stalls the loop:
//   - admission control: past `max_connections` live connections, a new
//     accept is answered with `busy_reply` and closed immediately;
//   - request shedding: when the bounded queue is full, the request is
//     answered with `shed_reply` instead of queueing unboundedly;
//   - backpressure: a connection whose outbound buffer exceeds
//     `outbuf_suspend_bytes` (slow reader), or that has more than
//     `max_pipelined` parsed-but-unexecuted statements, has its EPOLLIN
//     interest suspended until the buffer drains below
//     `outbuf_resume_bytes` — per-connection memory stays bounded and fast
//     clients keep their latency.
//
// Metrics (`net_*`, see docs/OBSERVABILITY.md): open/suspended connection
// gauges, queue depth, epoll wake-ups, admission rejections, shed requests,
// pipelined requests, and a queue-wait histogram.
struct Request {
  std::string line;               // one statement, framing stripped
  double queue_wait_millis = 0;   // time spent in the bounded queue
};

struct Response {
  std::string payload;  // written back verbatim (include any terminator)
  bool close = false;   // close the connection once the payload drains
};

// Executed on a worker thread, never on the event loop.
using Handler = std::function<Response(const Request&)>;

// Batch variant: a burst of consecutive requests from one connection,
// dispatched to a worker as one unit. Must return exactly one Response per
// request, in order; responses after the first `close == true` are ignored
// (the connection is closing). Executed on a worker thread.
using BatchHandler =
    std::function<std::vector<Response>(const std::vector<Request>&)>;

struct NetServerOptions {
  int listen_backlog = 64;

  // 0 picks max(2, hardware_concurrency).
  int workers = 0;

  // Bounded MPMC request queue; TryPush failure sheds with `shed_reply`.
  size_t queue_capacity = 1024;

  // Outbound-buffer watermarks driving EPOLLIN suspension.
  size_t outbuf_suspend_bytes = 256 * 1024;
  size_t outbuf_resume_bytes = 32 * 1024;

  // Parsed-but-unexecuted statements one connection may hold before its
  // reads are paused (bounds per-connection memory under deep pipelining).
  size_t max_pipelined = 1024;

  // Evaluated at every accept so `SET max_connections` applies to new
  // connections immediately. Null means unlimited.
  std::function<int()> max_connections;

  // Per-connection idle timeout in milliseconds, evaluated each sweep so
  // `SET idle_timeout_ms` applies to connections already open. A connection
  // that has sent no bytes for this long — and has nothing queued, in
  // flight, or unwritten — is closed (`net_idle_closed_total`). Null or a
  // non-positive value disables the sweep (the default: dashboards hold
  // connections open for hours legitimately).
  std::function<int64_t()> idle_timeout_ms;

  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  // shrink it to make slow-reader backpressure deterministic.
  int sndbuf_bytes = 0;

  // Worker-side batch accumulation. When both hooks are set, a run of
  // consecutive pending statements for which `batchable` returns true
  // (evaluated on the event loop — keep it a cheap prefix check) is
  // dispatched to a worker as ONE work item and executed via
  // `batch_handler`, which owns cross-statement coalescing (e.g. many
  // single-point INSERTs into one store write). In-order replies and the
  // one-item-in-flight-per-connection invariant are unchanged; a shed
  // batch sheds every statement it carried, each with its own shed_reply.
  // Unset (the default), dispatch is strictly one statement per item.
  std::function<bool(const std::string& line)> batchable;
  BatchHandler batch_handler;

  // Statements one batched work item may carry.
  size_t max_batch = 128;

  std::string busy_reply = "ERROR: server busy\n\n";
  std::string shed_reply = "ERROR: server overloaded, request queue full\n\n";

  // Connection lifecycle hooks, called on the event-loop thread. on_close
  // reports the number of requests the handler executed and the connection
  // wall-clock milliseconds.
  std::function<void()> on_open;
  std::function<void(uint64_t requests, double millis)> on_close;
};

class NetServer {
 public:
  NetServer(NetServerOptions options, Handler handler);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the event
  // loop and the worker pool.
  Status Start(int port);

  // Closes the listener and every connection, joins the loop and the
  // workers (in-flight handlers run to completion). Idempotent.
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

 private:
  struct Connection;

  struct WorkItem {
    uint64_t conn_id = 0;
    // One statement per entry; more than one only when the batch hooks
    // accumulated a run. All entries execute on one worker invocation.
    std::vector<std::string> lines;
    double enqueued_at_millis = 0;  // loop-relative steady clock
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string payload;    // per-statement payloads concatenated in order
    uint64_t requests = 0;  // statements this completion answers
    bool close = false;     // a statement asked to close the connection
  };

  void LoopThread();
  void WorkerThread();

  void HandleAccept();
  // Closes connections idle past the configured timeout; no-op when off.
  void SweepIdle();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void ParseInbuf(Connection* conn);
  void MaybeDispatch(Connection* conn);
  void DrainCompletions();
  void AppendOutput(Connection* conn, std::string_view payload);
  // Writes as much of outbuf as the socket accepts; closes on write error.
  // Returns false when the connection was closed.
  bool FlushOutbuf(Connection* conn);
  // Recomputes EPOLLIN/EPOLLOUT interest and the suspended state.
  void UpdateInterest(Connection* conn);
  void CloseConnection(Connection* conn);
  // Close once everything owed has been written and nothing is in flight.
  void MaybeFinish(Connection* conn);

  NetServerOptions options_;
  Handler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions and Stop wake the loop
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  BoundedQueue<WorkItem> queue_;

  // Loop-thread state: connections keyed by monotonically increasing id, so
  // a completion for an already-closed connection misses cleanly instead of
  // hitting a recycled fd.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd in epoll data

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
};

}  // namespace tsviz::net

#endif  // TSVIZ_NET_NET_SERVER_H_
