#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tsviz::net {

namespace {

// epoll user-data ids for the two non-connection fds.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

// Per epoll event, reads are capped so one firehose client cannot starve
// the loop; level-triggered epoll re-arms for the remainder.
constexpr size_t kMaxReadPerEvent = 256 * 1024;

double NowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// --- net_* metrics (registered once, cached references) ---

obs::Counter& WakeupsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_epoll_wakeups_total", "epoll_wait returns on the event loop");
  return c;
}
obs::Counter& AdmissionRejectionsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_admission_rejections_total",
      "Connections refused with the busy error past max_connections");
  return c;
}
obs::Counter& RequestsShedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_requests_shed_total",
      "Requests answered with the overload error because the bounded "
      "request queue was full");
  return c;
}
obs::Counter& ReadsSuspendedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_reads_suspended_total",
      "Times a connection's EPOLLIN interest was suspended (slow reader "
      "backpressure or pipeline depth)");
  return c;
}
obs::Counter& RequestsPipelinedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_requests_pipelined_total",
      "Statements that arrived in the same read as an earlier statement");
  return c;
}
obs::Gauge& ConnectionsOpen() {
  static obs::Gauge& g = obs::GetGauge(
      "net_connections_open", "Connections currently registered on the loop");
  return g;
}
obs::Gauge& SuspendedConnections() {
  static obs::Gauge& g = obs::GetGauge(
      "net_suspended_connections",
      "Connections whose reads are currently suspended for backpressure");
  return g;
}
obs::Gauge& QueueDepth() {
  static obs::Gauge& g = obs::GetGauge(
      "net_queue_depth", "Requests waiting in the bounded worker queue");
  return g;
}
obs::Histogram& QueueWaitMillis() {
  static obs::Histogram& h = obs::GetHistogram(
      "net_queue_wait_millis",
      "Time a request waited in the bounded queue before a worker ran it");
  return h;
}
obs::Counter& IdleClosedTotal() {
  static obs::Counter& c = obs::GetCounter(
      "net_idle_closed_total",
      "Connections closed by the idle-timeout sweep (no bytes received and "
      "nothing in flight for idle_timeout_ms)");
  return c;
}
obs::Counter& BatchedStatementsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "batch_net_accumulated_total",
      "Statements appended to a batched net work item beyond its first "
      "(worker-side batch accumulation)");
  return c;
}

}  // namespace

// Per-connection state; touched only on the event-loop thread (workers see
// a connection id plus copied bytes, never this struct).
struct NetServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  std::string inbuf;                // unparsed bytes
  std::deque<std::string> pending;  // parsed statements not yet dispatched
  std::string outbuf;               // response bytes not yet written
  size_t outbuf_offset = 0;         // already-written prefix of outbuf
  uint32_t interest = 0;            // currently registered epoll mask
  bool executing = false;           // one request in flight at the workers
  bool suspended = false;           // EPOLLIN off for backpressure
  bool read_eof = false;            // peer half-closed; finish then close
  bool want_close = false;          // handler asked to close (quit)
  bool broken = false;              // socket errored; close at MaybeFinish
  uint64_t requests = 0;            // handler invocations served
  double opened_at_millis = 0;
  double last_activity_millis = 0;  // last inbound bytes (or open/completion)

  size_t outbuf_pending() const { return outbuf.size() - outbuf_offset; }
};

NetServer::NetServer(NetServerOptions options, Handler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      queue_(options_.queue_capacity) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start(int port) {
  if (started_) return Status::InvalidArgument("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (!SetNonBlocking(listen_fd_)) {
    Status s = Errno("fcntl");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    Status s = Errno("epoll_create1");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status s = Errno("eventfd");
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    return s;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_ = false;
  queue_.Reset();  // a previous Stop left it rejecting pushes
  int workers =
      options_.workers > 0
          ? options_.workers
          : static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  started_ = true;
  TSVIZ_INFO << "net server listening on 127.0.0.1:" << port_
             << Field("workers", workers)
             << Field("queue_capacity",
                      static_cast<int64_t>(options_.queue_capacity));
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stopping_ = true;
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
  if (loop_thread_.joinable()) loop_thread_.join();

  queue_.Stop();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  QueueDepth().Add(-static_cast<double>(queue_.Drain()));
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.clear();
  }

  // Everything is single-threaded from here: tear the connections down on
  // the caller, firing the close hooks the loop never got to.
  for (auto& [id, conn] : conns_) {
    if (conn->suspended) SuspendedConnections().Add(-1);
    ConnectionsOpen().Add(-1);
    if (options_.on_close) {
      options_.on_close(conn->requests, NowMillis() - conn->opened_at_millis);
    }
    ::close(conn->fd);
  }
  conns_.clear();

  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_ = false;
}

void NetServer::WorkerThread() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    QueueDepth().Add(-1);
    const double queue_wait_millis = NowMillis() - item.enqueued_at_millis;
    QueueWaitMillis().Observe(queue_wait_millis);

    Completion completion;
    completion.conn_id = item.conn_id;
    if (item.lines.size() > 1 && options_.batch_handler) {
      // Batched item: one handler invocation answers the whole run. The
      // handler returns one Response per request; a close stops delivery
      // of anything after it (the connection is going away).
      std::vector<Request> requests;
      requests.reserve(item.lines.size());
      for (std::string& line : item.lines) {
        Request request;
        request.line = std::move(line);
        request.queue_wait_millis = queue_wait_millis;
        requests.push_back(std::move(request));
      }
      std::vector<Response> responses = options_.batch_handler(requests);
      for (Response& response : responses) {
        completion.payload += response.payload;
        ++completion.requests;
        if (response.close) {
          completion.close = true;
          break;
        }
      }
    } else {
      for (std::string& line : item.lines) {
        Request request;
        request.line = std::move(line);
        request.queue_wait_millis = queue_wait_millis;
        Response response = handler_(request);
        completion.payload += response.payload;
        ++completion.requests;
        if (response.close) {
          completion.close = true;
          break;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void NetServer::LoopThread() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    // With an idle timeout configured the loop must wake on its own to run
    // the sweep; a quarter of the timeout bounds the detection latency
    // without spinning. -1 (block forever) otherwise — idle sessions cost
    // nothing.
    const int64_t idle_ms =
        options_.idle_timeout_ms ? options_.idle_timeout_ms() : 0;
    const int wait_ms =
        idle_ms > 0
            ? static_cast<int>(std::clamp<int64_t>(idle_ms / 4, 10, 1000))
            : -1;
    int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      TSVIZ_ERROR << "epoll_wait" << Field("errno", std::strerror(errno));
      break;
    }
    WakeupsTotal().Inc();
    if (idle_ms > 0) SweepIdle();
    for (int i = 0; i < n && !stopping_.load(std::memory_order_relaxed);
         ++i) {
      uint64_t id = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (id == kListenerId) {
        HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second.get();
      if (ev & (EPOLLHUP | EPOLLERR)) {
        // Full close or socket error: nothing can be delivered anymore.
        CloseConnection(conn);
        continue;
      }
      if (ev & EPOLLIN) {
        HandleReadable(conn);
        if (conns_.find(id) == conns_.end()) continue;
      }
      if (ev & EPOLLOUT) HandleWritable(conn);
    }
  }
}

void NetServer::HandleAccept() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      TSVIZ_WARN << "accept failed" << Field("errno", std::strerror(errno));
      return;
    }
    const int cap =
        options_.max_connections ? options_.max_connections() : 0;
    if (cap > 0 && conns_.size() >= static_cast<size_t>(cap)) {
      // Admission control: a fast in-band error beats a silent hang. The
      // reply is small enough for the empty socket buffer, so one
      // best-effort non-blocking send is all it gets. Count before sending:
      // a client that reads the busy reply must already see the counter
      // incremented.
      AdmissionRejectionsTotal().Inc();
      SetNonBlocking(fd);
      ssize_t ignored = ::send(fd, options_.busy_reply.data(),
                               options_.busy_reply.size(), MSG_NOSIGNAL);
      (void)ignored;
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->opened_at_millis = NowMillis();
    conn->last_activity_millis = conn->opened_at_millis;
    conn->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->interest;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    ConnectionsOpen().Add(1);
    if (options_.on_open) options_.on_open();
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::SweepIdle() {
  const int64_t idle_ms =
      options_.idle_timeout_ms ? options_.idle_timeout_ms() : 0;
  if (idle_ms <= 0) return;
  const double now = NowMillis();
  std::vector<Connection*> victims;
  for (auto& [id, conn] : conns_) {
    // Only a truly quiescent connection is eligible: no statement running
    // at the workers, nothing parsed but undispatched, nothing unwritten.
    // Anything else is latency, not idleness.
    if (conn->executing || !conn->pending.empty() ||
        conn->outbuf_pending() > 0 || !conn->inbuf.empty()) {
      continue;
    }
    if (now - conn->last_activity_millis > static_cast<double>(idle_ms)) {
      victims.push_back(conn.get());
    }
  }
  for (Connection* conn : victims) {
    IdleClosedTotal().Inc();
    CloseConnection(conn);
  }
}

void NetServer::HandleReadable(Connection* conn) {
  char chunk[16384];
  size_t read_this_event = 0;
  while (read_this_event < kMaxReadPerEvent) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->inbuf.append(chunk, static_cast<size_t>(n));
      read_this_event += static_cast<size_t>(n);
      conn->last_activity_millis = NowMillis();
      continue;
    }
    if (n == 0) {
      // Half-close: the client is done sending. Anything already pipelined
      // still gets executed and written back before the socket closes.
      conn->read_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->broken = true;
    MaybeFinish(conn);
    return;
  }
  ParseInbuf(conn);
  MaybeDispatch(conn);
  UpdateInterest(conn);
  MaybeFinish(conn);
}

void NetServer::ParseInbuf(Connection* conn) {
  size_t parsed = 0;
  size_t start = 0;
  while (true) {
    size_t newline = conn->inbuf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = conn->inbuf.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank lines are protocol no-ops
    conn->pending.push_back(std::move(line));
    ++parsed;
  }
  if (start > 0) conn->inbuf.erase(0, start);
  if (parsed > 1) RequestsPipelinedTotal().Inc(parsed - 1);
}

void NetServer::MaybeDispatch(Connection* conn) {
  while (!conn->executing && !conn->want_close && !conn->broken &&
         !conn->pending.empty()) {
    if (conn->outbuf_pending() > options_.outbuf_suspend_bytes) {
      // The reader is behind; executing more requests would only grow the
      // buffer past its bound. The drain path re-dispatches.
      return;
    }
    WorkItem item;
    item.conn_id = conn->id;
    item.lines.push_back(std::move(conn->pending.front()));
    conn->pending.pop_front();
    // Batch accumulation: extend the item with the run of consecutive
    // batchable statements already parsed for this connection. The batch
    // handler preserves per-statement replies, so observable behavior
    // matches one-at-a-time dispatch minus the per-statement round trips.
    if (options_.batchable && options_.batch_handler &&
        options_.batchable(item.lines.front())) {
      while (item.lines.size() < options_.max_batch &&
             !conn->pending.empty() &&
             options_.batchable(conn->pending.front())) {
        item.lines.push_back(std::move(conn->pending.front()));
        conn->pending.pop_front();
        BatchedStatementsTotal().Inc();
      }
    }
    item.enqueued_at_millis = NowMillis();
    const size_t item_statements = item.lines.size();
    if (queue_.TryPush(std::move(item))) {
      QueueDepth().Add(1);
      conn->executing = true;  // one in flight keeps responses in order
      return;
    }
    // Queue full: shed with a fast in-band error instead of stalling the
    // loop or queueing unboundedly. In-order because it answers exactly
    // the requests that would have been next (every statement of a shed
    // batch gets its own reply).
    RequestsShedTotal().Inc(item_statements);
    for (size_t i = 0; i < item_statements; ++i) {
      AppendOutput(conn, options_.shed_reply);
    }
  }
}

void NetServer::DrainCompletions() {
  std::vector<Completion> completed;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completed.swap(completions_);
  }
  for (Completion& completion : completed) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection closed mid-flight
    Connection* conn = it->second.get();
    conn->executing = false;
    conn->requests += completion.requests;
    conn->last_activity_millis = NowMillis();
    if (!completion.payload.empty()) {
      AppendOutput(conn, completion.payload);
    }
    if (completion.close) {
      conn->want_close = true;
      conn->pending.clear();
    }
    MaybeDispatch(conn);
    UpdateInterest(conn);
    MaybeFinish(conn);
  }
}

void NetServer::AppendOutput(Connection* conn, std::string_view payload) {
  conn->outbuf.append(payload);
  FlushOutbuf(conn);
}

bool NetServer::FlushOutbuf(Connection* conn) {
  while (conn->outbuf_pending() > 0) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outbuf_offset,
                       conn->outbuf_pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Write error (EPIPE after a vanished client, usually): mark the
    // connection broken; MaybeFinish — the single close point — tears it
    // down once the current event-handling path unwinds.
    conn->broken = true;
    return false;
  }
  if (conn->outbuf_pending() == 0) {
    conn->outbuf.clear();
    conn->outbuf_offset = 0;
  } else if (conn->outbuf_offset > (64u << 10)) {
    conn->outbuf.erase(0, conn->outbuf_offset);
    conn->outbuf_offset = 0;
  }
  return true;
}

void NetServer::UpdateInterest(Connection* conn) {
  const size_t buffered = conn->outbuf_pending();
  if (!conn->suspended &&
      (buffered > options_.outbuf_suspend_bytes ||
       conn->pending.size() > options_.max_pipelined)) {
    conn->suspended = true;
    ReadsSuspendedTotal().Inc();
    SuspendedConnections().Add(1);
  } else if (conn->suspended && buffered <= options_.outbuf_resume_bytes &&
             conn->pending.size() <= options_.max_pipelined) {
    conn->suspended = false;
    SuspendedConnections().Add(-1);
  }

  if (conn->broken) return;  // about to close; interest is moot
  uint32_t want = 0;
  if (!conn->read_eof && !conn->want_close && !conn->suspended) {
    want |= EPOLLIN;
  }
  if (buffered > 0) want |= EPOLLOUT;
  if (want == conn->interest) return;
  conn->interest = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::HandleWritable(Connection* conn) {
  if (FlushOutbuf(conn)) {
    // Draining may unblock dispatch (backpressure) and reads (suspension).
    MaybeDispatch(conn);
    UpdateInterest(conn);
  }
  MaybeFinish(conn);
}

void NetServer::MaybeFinish(Connection* conn) {
  if (conn->broken) {
    // The peer can't receive anything anymore; don't wait for in-flight
    // work (its completion will miss the id lookup and be dropped).
    CloseConnection(conn);
    return;
  }
  const bool done_reading = conn->read_eof || conn->want_close;
  const bool drained = !conn->executing && conn->outbuf_pending() == 0 &&
                       (conn->want_close || conn->pending.empty());
  if (done_reading && drained) CloseConnection(conn);
}

void NetServer::CloseConnection(Connection* conn) {
  if (conn->suspended) SuspendedConnections().Add(-1);
  ConnectionsOpen().Add(-1);
  if (options_.on_close) {
    options_.on_close(conn->requests, NowMillis() - conn->opened_at_millis);
  }
  ::close(conn->fd);  // also removes the fd from the epoll set
  conns_.erase(conn->id);  // invalidates conn
}

}  // namespace tsviz::net
