#include "workload/deletes.h"

#include <algorithm>
#include <cmath>

namespace tsviz {

std::vector<TimeRange> PlanDeleteRanges(const TsStore& store,
                                        const DeleteWorkloadSpec& spec) {
  std::vector<TimeRange> ranges;
  const auto& chunks = store.chunks();
  if (chunks.empty() || spec.delete_fraction <= 0.0) return ranges;

  Rng rng(spec.seed);
  size_t n_deletes = static_cast<size_t>(std::llround(
      spec.delete_fraction * static_cast<double>(chunks.size())));
  ranges.reserve(n_deletes);
  for (size_t i = 0; i < n_deletes; ++i) {
    const ChunkHandle& chunk =
        chunks[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(chunks.size()) - 1))];
    TimeRange interval = chunk.meta->Interval();
    // Interval length 0 (single-point chunk) still yields a 1-tick delete.
    int64_t span = interval.end - interval.start;
    int64_t length = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               spec.range_scale * static_cast<double>(span))));
    Timestamp start =
        interval.start +
        (span > 0 ? rng.Uniform(0, span) : 0);
    ranges.push_back(TimeRange(start, start + length - 1));
  }
  return ranges;
}

Status ApplyDeleteWorkload(TsStore* store, const DeleteWorkloadSpec& spec) {
  for (const TimeRange& range : PlanDeleteRanges(*store, spec)) {
    TSVIZ_RETURN_IF_ERROR(store->DeleteRange(range));
  }
  return Status::OK();
}

}  // namespace tsviz
