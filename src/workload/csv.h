#ifndef TSVIZ_WORKLOAD_CSV_H_
#define TSVIZ_WORKLOAD_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tsviz {

// Minimal CSV import/export ("timestamp,value" per line, optional header)
// so users can run the operators over their own series.

Status SavePointsCsv(const std::vector<Point>& points,
                     const std::string& path);

Result<std::vector<Point>> LoadPointsCsv(const std::string& path);

}  // namespace tsviz

#endif  // TSVIZ_WORKLOAD_CSV_H_
