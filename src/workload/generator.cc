#include "workload/generator.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace tsviz {

namespace {

// Timestamps are microseconds throughout the generators.
constexpr int64_t kMillisecond = 1000;
constexpr int64_t kSecond = 1000 * kMillisecond;

// Appends `n` timestamps at a fixed cadence with occasional transmission
// gaps (probability `gap_prob` per point, gap length `gap_lo..gap_hi`
// multiples of the cadence) — producing exactly the tilt/level step shape of
// Figure 8.
void RegularWithGaps(size_t n, Timestamp start, int64_t delta,
                     double gap_prob, int64_t gap_lo, int64_t gap_hi,
                     Rng* rng, std::vector<Timestamp>* out) {
  Timestamp t = start;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(t);
    t += delta;
    if (gap_prob > 0.0 && rng->Bernoulli(gap_prob)) {
      t += delta * rng->Uniform(gap_lo, gap_hi);
    }
  }
}

// Two-state (dense/sparse) Markov arrival process: long dense runs at
// `dense_delta` alternate with sparse stretches at `sparse_delta`, yielding
// the skewed time distribution of KOB/RcvTime where consecutive chunks cover
// wildly different time-interval lengths.
void SkewedArrivals(size_t n, Timestamp start, int64_t dense_delta,
                    int64_t sparse_delta, double switch_to_sparse,
                    double switch_to_dense, Rng* rng,
                    std::vector<Timestamp>* out) {
  Timestamp t = start;
  bool dense = true;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(t);
    int64_t base = dense ? dense_delta : sparse_delta;
    // Small jitter keeps deltas non-degenerate without breaking the regime.
    t += base + rng->Uniform(0, base / 8);
    if (dense ? rng->Bernoulli(switch_to_sparse)
              : rng->Bernoulli(switch_to_dense)) {
      dense = !dense;
    }
  }
}

std::vector<Point> BallSpeedLike(const DatasetSpec& spec, size_t n) {
  Rng rng(spec.seed);
  std::vector<Timestamp> ts;
  ts.reserve(n);
  // 2000 Hz -> 500us cadence; rare short interruptions.
  RegularWithGaps(n, spec.start_time, 500, 2e-4, 50, 2000, &rng, &ts);
  std::vector<Point> points;
  points.reserve(n);
  // Ball speed: near-zero idling with exponentially decaying kick spikes.
  double speed = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(5e-5)) {
      speed = rng.UniformReal(20.0, 120.0);  // a kick
    }
    speed *= 0.9995;
    double v = speed + std::abs(rng.Gaussian(0.0, 0.3));
    points.push_back(Point{ts[i], v});
  }
  return points;
}

std::vector<Point> Mf03Like(const DatasetSpec& spec, size_t n) {
  Rng rng(spec.seed + 1);
  std::vector<Timestamp> ts;
  ts.reserve(n);
  // ~100 Hz -> 10ms cadence; occasional equipment stalls.
  RegularWithGaps(n, spec.start_time, 10 * kMillisecond, 1e-4, 100, 5000,
                  &rng, &ts);
  std::vector<Point> points;
  points.reserve(n);
  // Electrical power main phase: mains hum + slow drift + noise.
  double drift = 60.0;
  for (size_t i = 0; i < n; ++i) {
    drift += rng.Gaussian(0.0, 0.002);
    double hum =
        8.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 1024.0);
    points.push_back(Point{ts[i], drift + hum + rng.Gaussian(0.0, 0.5)});
  }
  return points;
}

std::vector<Point> KobLike(const DatasetSpec& spec, size_t n) {
  Rng rng(spec.seed + 2);
  std::vector<Timestamp> ts;
  ts.reserve(n);
  // 4 months / ~1.9M points: dense bursts at 1s, sparse stretches ~2min.
  SkewedArrivals(n, spec.start_time, kSecond, 120 * kSecond, 0.002, 0.02,
                 &rng, &ts);
  std::vector<Point> points;
  points.reserve(n);
  double level = 500.0;
  for (size_t i = 0; i < n; ++i) {
    level += rng.Gaussian(0.0, 1.5);  // random walk
    points.push_back(Point{ts[i], level});
  }
  return points;
}

std::vector<Point> RcvTimeLike(const DatasetSpec& spec, size_t n) {
  Rng rng(spec.seed + 3);
  std::vector<Timestamp> ts;
  ts.reserve(n);
  // 1 year / ~1.3M points: strong skew, long silent periods.
  SkewedArrivals(n, spec.start_time, 2 * kSecond, 900 * kSecond, 0.001, 0.05,
                 &rng, &ts);
  std::vector<Point> points;
  points.reserve(n);
  // Mostly flat with occasional level shifts and outliers.
  double level = 100.0;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(2e-5)) level = rng.UniformReal(50.0, 300.0);
    double v = level + rng.Gaussian(0.0, 0.8);
    if (rng.Bernoulli(1e-4)) v += rng.UniformReal(200.0, 800.0);  // outlier
    points.push_back(Point{ts[i], v});
  }
  return points;
}

}  // namespace

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBallSpeed:
      return "BallSpeed";
    case DatasetKind::kMf03:
      return "MF03";
    case DatasetKind::kKob:
      return "KOB";
    case DatasetKind::kRcvTime:
      return "RcvTime";
  }
  return "unknown";
}

size_t PaperPointCount(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBallSpeed:
      return 7193200;
    case DatasetKind::kMf03:
      return 10000000;
    case DatasetKind::kKob:
      return 1943180;
    case DatasetKind::kRcvTime:
      return 1330764;
  }
  return 0;
}

const std::vector<DatasetKind>& AllDatasetKinds() {
  static const std::vector<DatasetKind> kKinds = {
      DatasetKind::kBallSpeed, DatasetKind::kMf03, DatasetKind::kKob,
      DatasetKind::kRcvTime};
  return kKinds;
}

std::vector<Point> GenerateDataset(const DatasetSpec& spec) {
  size_t n = spec.num_points == 0 ? PaperPointCount(spec.kind)
                                  : spec.num_points;
  TSVIZ_CHECK(n > 0);
  switch (spec.kind) {
    case DatasetKind::kBallSpeed:
      return BallSpeedLike(spec, n);
    case DatasetKind::kMf03:
      return Mf03Like(spec, n);
    case DatasetKind::kKob:
      return KobLike(spec, n);
    case DatasetKind::kRcvTime:
      return RcvTimeLike(spec, n);
  }
  return {};
}

}  // namespace tsviz
