#include "workload/ooo.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/time_range.h"

namespace tsviz {

std::vector<Point> MakeOverlappingOrder(const std::vector<Point>& sorted,
                                        size_t chunk_size,
                                        double overlap_fraction, Rng* rng) {
  TSVIZ_CHECK(chunk_size > 1);
  std::vector<Point> arrivals = sorted;
  const size_t n_batches = arrivals.size() / chunk_size;
  if (n_batches < 2 || overlap_fraction <= 0.0) return arrivals;

  // Each selected boundary makes 2 chunks overlapping.
  size_t target_overlapping = static_cast<size_t>(
      std::llround(overlap_fraction * static_cast<double>(n_batches)));
  size_t n_boundaries =
      std::min(target_overlapping / 2, (n_batches - 1) / 2 + 1);
  if (n_boundaries == 0 && target_overlapping > 0) n_boundaries = 1;
  if (n_boundaries == 0) return arrivals;

  // Evenly spaced boundaries, never adjacent, so overlaps do not chain.
  const double step =
      static_cast<double>(n_batches - 1) / static_cast<double>(n_boundaries);
  size_t swap = std::max<size_t>(1, chunk_size / 4);
  size_t prev_boundary = static_cast<size_t>(-2);
  for (size_t b = 0; b < n_boundaries; ++b) {
    size_t boundary = static_cast<size_t>(
        std::llround(static_cast<double>(b) * step)) ;
    if (boundary >= n_batches - 1) boundary = n_batches - 2;
    if (prev_boundary != static_cast<size_t>(-2) &&
        boundary <= prev_boundary + 1) {
      boundary = prev_boundary + 2;
      if (boundary >= n_batches - 1) break;
    }
    prev_boundary = boundary;
    // Swap the tail of batch `boundary` with the head of the next batch in
    // the arrival stream: the late tail lands in the next chunk and the
    // early head in this one, making both chunks overlap in time.
    Point* tail = arrivals.data() + (boundary + 1) * chunk_size - swap;
    Point* head = arrivals.data() + (boundary + 1) * chunk_size;
    for (size_t i = 0; i < swap; ++i) {
      std::swap(tail[i], head[i]);
    }
  }
  return arrivals;
}

double MeasureBatchOverlap(const std::vector<Point>& arrivals,
                           size_t chunk_size) {
  const size_t n_batches = arrivals.size() / chunk_size;
  if (n_batches < 2) return 0.0;
  std::vector<TimeRange> intervals;
  intervals.reserve(n_batches + 1);
  for (size_t b = 0; b * chunk_size < arrivals.size(); ++b) {
    size_t begin = b * chunk_size;
    size_t end = std::min(arrivals.size(), begin + chunk_size);
    Timestamp lo = kMaxTimestamp;
    Timestamp hi = kMinTimestamp;
    for (size_t i = begin; i < end; ++i) {
      lo = std::min(lo, arrivals[i].t);
      hi = std::max(hi, arrivals[i].t);
    }
    intervals.push_back(TimeRange(lo, hi));
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeRange& a, const TimeRange& b) {
              return a.start < b.start;
            });
  size_t overlapping = 0;
  Timestamp max_end_before = kMinTimestamp;
  for (size_t i = 0; i < intervals.size(); ++i) {
    bool with_earlier = i > 0 && intervals[i].start <= max_end_before;
    bool with_later =
        i + 1 < intervals.size() && intervals[i + 1].start <= intervals[i].end;
    if (with_earlier || with_later) ++overlapping;
    max_end_before = std::max(max_end_before, intervals[i].end);
  }
  return static_cast<double>(overlapping) /
         static_cast<double>(intervals.size());
}

}  // namespace tsviz
