#ifndef TSVIZ_WORKLOAD_GENERATOR_H_
#define TSVIZ_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace tsviz {

// Synthetic stand-ins for the paper's four real-world datasets (Table 2).
// The raw data (Fraunhofer BallSpeed, DEBS'12 MF03, and the proprietary
// KOB/RcvTime customer series) is not available offline; these generators
// reproduce the properties the experiments actually exercise — cardinality,
// collection frequency, transmission-gap structure (the step pattern of
// Figure 8) and time-distribution skew (which drives the KOB/RcvTime
// behaviour in Figures 10/14) — as documented in DESIGN.md.
enum class DatasetKind { kBallSpeed, kMf03, kKob, kRcvTime };

struct DatasetSpec {
  DatasetKind kind = DatasetKind::kMf03;
  size_t num_points = 0;        // 0 = the paper's full size (Table 2)
  Timestamp start_time = 1600000000000000;  // microseconds
  uint64_t seed = 42;
};

// Name as used in the paper's figures.
std::string DatasetName(DatasetKind kind);

// The paper's full point count for a dataset (Table 2).
size_t PaperPointCount(DatasetKind kind);

// All four kinds, in the paper's order.
const std::vector<DatasetKind>& AllDatasetKinds();

// Generates the series: strictly increasing timestamps, values per the
// dataset's characteristic model. Deterministic in spec.seed.
std::vector<Point> GenerateDataset(const DatasetSpec& spec);

}  // namespace tsviz

#endif  // TSVIZ_WORKLOAD_GENERATOR_H_
