#ifndef TSVIZ_WORKLOAD_OOO_H_
#define TSVIZ_WORKLOAD_OOO_H_

#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace tsviz {

// Out-of-order arrival synthesis for the chunk-overlap experiment
// (Section 4.3): "write the points in different orders, leading to various
// chunk overlap rates".
//
// Points are partitioned into consecutive batches of `chunk_size`, the unit
// the memtable flushes at (one batch = one chunk on disk). At a selected
// batch boundary the tail of the earlier batch arrives late — swapped with
// the head of the next batch — so both resulting chunks cover overlapping
// time intervals. Boundaries are spaced out so each selection turns exactly
// two chunks into overlapping ones, letting `overlap_fraction` (0.0 - ~0.9)
// hit its target.
std::vector<Point> MakeOverlappingOrder(const std::vector<Point>& sorted,
                                        size_t chunk_size,
                                        double overlap_fraction, Rng* rng);

// Measures the fraction of batches whose time interval overlaps another
// batch's under the given arrival order — the ground truth for what the
// store will exhibit.
double MeasureBatchOverlap(const std::vector<Point>& arrivals,
                           size_t chunk_size);

}  // namespace tsviz

#endif  // TSVIZ_WORKLOAD_OOO_H_
