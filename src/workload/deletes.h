#ifndef TSVIZ_WORKLOAD_DELETES_H_
#define TSVIZ_WORKLOAD_DELETES_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/time_range.h"
#include "storage/store.h"

namespace tsviz {

// Delete workload for the experiments of Sections 4.4 and 4.5.
struct DeleteWorkloadSpec {
  // Number of deletes as a fraction of the number of chunks ("delete
  // percentage", Figure 13's x-axis).
  double delete_fraction = 0.0;

  // Length of each delete range as a fraction of the targeted chunk's time
  // interval. Small by default ("the delete time range of each delete is
  // small compared to the chunk time interval length"); Figure 14 scales it.
  double range_scale = 0.1;

  uint64_t seed = 7;
};

// Plans the delete ranges against the store's current chunks: each delete
// lands at a random position inside a randomly picked chunk, sized relative
// to that chunk's interval.
std::vector<TimeRange> PlanDeleteRanges(const TsStore& store,
                                        const DeleteWorkloadSpec& spec);

// Plans and applies the deletes.
Status ApplyDeleteWorkload(TsStore* store, const DeleteWorkloadSpec& spec);

}  // namespace tsviz

#endif  // TSVIZ_WORKLOAD_DELETES_H_
