#include "workload/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsviz {

Status SavePointsCsv(const std::vector<Point>& points,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::IoError("cannot create " + path);
  }
  out << "timestamp,value\n";
  out.precision(17);
  for (const Point& p : points) {
    out << p.t << "," << p.v << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::vector<Point>> LoadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<Point> points;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Skip a header line.
    if (line_no == 1 && line.find_first_not_of("0123456789-") == 0 &&
        !std::isdigit(static_cast<unsigned char>(line[0])) &&
        line[0] != '-') {
      continue;
    }
    size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": missing comma");
    }
    errno = 0;
    char* end = nullptr;
    long long t = std::strtoll(line.c_str(), &end, 10);
    if (errno != 0 || end != line.c_str() + comma) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": bad timestamp");
    }
    errno = 0;
    double v = std::strtod(line.c_str() + comma + 1, &end);
    if (errno != 0 || end == line.c_str() + comma + 1) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": bad value");
    }
    points.push_back(Point{static_cast<Timestamp>(t), v});
  }
  return points;
}

}  // namespace tsviz
