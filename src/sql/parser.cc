#include "sql/parser.h"

#include <cmath>

#include "db/database.h"  // kValidSetKnobs
#include "sql/lexer.h"

namespace tsviz::sql {

bool IsM4Family(FuncKind kind) {
  switch (kind) {
    case FuncKind::kM4:
    case FuncKind::kFirstTime:
    case FuncKind::kFirstValue:
    case FuncKind::kLastTime:
    case FuncKind::kLastValue:
    case FuncKind::kBottomTime:
    case FuncKind::kBottomValue:
    case FuncKind::kTopTime:
    case FuncKind::kTopValue:
      return true;
    default:
      return false;
  }
}

std::string FuncName(FuncKind kind) {
  switch (kind) {
    case FuncKind::kM4:
      return "M4";
    case FuncKind::kFirstTime:
      return "FIRST_TIME";
    case FuncKind::kFirstValue:
      return "FIRST_VALUE";
    case FuncKind::kLastTime:
      return "LAST_TIME";
    case FuncKind::kLastValue:
      return "LAST_VALUE";
    case FuncKind::kBottomTime:
      return "BOTTOM_TIME";
    case FuncKind::kBottomValue:
      return "BOTTOM_VALUE";
    case FuncKind::kTopTime:
      return "TOP_TIME";
    case FuncKind::kTopValue:
      return "TOP_VALUE";
    case FuncKind::kCount:
      return "COUNT";
    case FuncKind::kSum:
      return "SUM";
    case FuncKind::kAvg:
      return "AVG";
    case FuncKind::kRawColumn:
      return "RAW";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Run() {
    SelectStatement stmt;
    if (AtKeyword("EXPLAIN")) {
      stmt.explain = true;
      Advance();
      if (AtKeyword("ANALYZE")) {
        stmt.explain = false;
        stmt.analyze = true;
        Advance();
      }
    }
    TSVIZ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    TSVIZ_RETURN_IF_ERROR(ParseSelectList(&stmt));
    TSVIZ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TSVIZ_ASSIGN_OR_RETURN(stmt.series, ExpectIdentifier("series name"));
    if (AtKeyword("WHERE")) {
      Advance();
      TSVIZ_RETURN_IF_ERROR(ParseWhere(&stmt));
    }
    if (AtKeyword("GROUP")) {
      Advance();
      TSVIZ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      TSVIZ_RETURN_IF_ERROR(ParseGroupBy(&stmt));
    }
    if (AtKeyword("LIMIT")) {
      Advance();
      if (Current().type != TokenType::kNumber || Current().number < 0 ||
          Current().number != std::floor(Current().number)) {
        return Error("expected non-negative integer after LIMIT");
      }
      stmt.limit = static_cast<int64_t>(Current().number);
      Advance();
    }
    if (Current().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AtKeyword(const char* keyword) const {
    return Current().type == TokenType::kIdentifier &&
           IdentEquals(Current().text, keyword);
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Current().offset));
  }

  Status ExpectKeyword(const char* keyword) {
    if (!AtKeyword(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Current().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    std::string text = Current().text;
    Advance();
    return text;
  }

  Status Expect(TokenType type, const char* what) {
    if (Current().type != type) {
      return Error(std::string("expected ") + what);
    }
    Advance();
    return Status::OK();
  }

  Result<FuncKind> ResolveFunc(const std::string& name) {
    struct Mapping {
      const char* name;
      FuncKind kind;
    };
    static constexpr Mapping kMappings[] = {
        {"M4", FuncKind::kM4},
        {"FIRST_TIME", FuncKind::kFirstTime},
        {"FIRSTTIME", FuncKind::kFirstTime},
        {"FIRST_VALUE", FuncKind::kFirstValue},
        {"FIRSTVALUE", FuncKind::kFirstValue},
        {"LAST_TIME", FuncKind::kLastTime},
        {"LASTTIME", FuncKind::kLastTime},
        {"LAST_VALUE", FuncKind::kLastValue},
        {"LASTVALUE", FuncKind::kLastValue},
        {"BOTTOM_TIME", FuncKind::kBottomTime},
        {"BOTTOMTIME", FuncKind::kBottomTime},
        {"BOTTOM_VALUE", FuncKind::kBottomValue},
        {"BOTTOMVALUE", FuncKind::kBottomValue},
        {"MIN_VALUE", FuncKind::kBottomValue},
        {"MIN", FuncKind::kBottomValue},
        {"TOP_TIME", FuncKind::kTopTime},
        {"TOPTIME", FuncKind::kTopTime},
        {"TOP_VALUE", FuncKind::kTopValue},
        {"TOPVALUE", FuncKind::kTopValue},
        {"MAX_VALUE", FuncKind::kTopValue},
        {"MAX", FuncKind::kTopValue},
        {"COUNT", FuncKind::kCount},
        {"SUM", FuncKind::kSum},
        {"AVG", FuncKind::kAvg},
    };
    for (const Mapping& mapping : kMappings) {
      if (IdentEquals(name, mapping.name)) return mapping.kind;
    }
    return Status::InvalidArgument("unknown function '" + name + "'");
  }

  Status ParseSelectList(SelectStatement* stmt) {
    while (true) {
      TSVIZ_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("select item"));
      SelectItem item;
      if (Current().type == TokenType::kLParen) {
        Advance();
        TSVIZ_ASSIGN_OR_RETURN(item.kind, ResolveFunc(name));
        if (Current().type == TokenType::kIdentifier) {
          item.argument = Current().text;
          Advance();
        } else if (Current().type == TokenType::kStar) {
          item.argument = "*";
          Advance();
        }
        TSVIZ_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      } else {
        item.kind = FuncKind::kRawColumn;
        item.argument = name;
      }
      stmt->items.push_back(std::move(item));
      if (Current().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  static TokenType MirrorOp(TokenType op) {
    switch (op) {
      case TokenType::kLess:
        return TokenType::kGreater;
      case TokenType::kLessEq:
        return TokenType::kGreaterEq;
      case TokenType::kGreater:
        return TokenType::kLess;
      case TokenType::kGreaterEq:
        return TokenType::kLessEq;
      default:
        return op;
    }
  }

  static bool IsComparison(TokenType op) {
    return op == TokenType::kLess || op == TokenType::kLessEq ||
           op == TokenType::kGreater || op == TokenType::kGreaterEq ||
           op == TokenType::kEq;
  }

  Status ParseWhere(SelectStatement* stmt) {
    while (true) {
      TimeCondition cond;
      // `value op number` / `number op value` filter conditions.
      if (AtKeyword("VALUE")) {
        Advance();
        ValueCondition vcond;
        vcond.op = Current().type;
        if (!IsComparison(vcond.op)) {
          return Error("expected comparison operator");
        }
        Advance();
        if (Current().type != TokenType::kNumber) {
          return Error("expected value literal");
        }
        vcond.value = Current().number;
        Advance();
        stmt->value_where.push_back(vcond);
        if (!AtKeyword("AND")) break;
        Advance();
        continue;
      }
      // Either `time op number` or `number op time`.
      if (AtKeyword("TIME")) {
        Advance();
        cond.op = Current().type;
        if (cond.op != TokenType::kLess && cond.op != TokenType::kLessEq &&
            cond.op != TokenType::kGreater &&
            cond.op != TokenType::kGreaterEq && cond.op != TokenType::kEq) {
          return Error("expected comparison operator");
        }
        Advance();
        if (Current().type != TokenType::kNumber) {
          return Error("expected timestamp literal");
        }
        cond.value = static_cast<Timestamp>(std::llround(Current().number));
        Advance();
      } else if (Current().type == TokenType::kNumber) {
        double literal = Current().number;
        Advance();
        TokenType op = Current().type;
        if (!IsComparison(op)) {
          return Error("expected comparison operator");
        }
        Advance();
        if (AtKeyword("VALUE")) {
          Advance();
          ValueCondition vcond;
          vcond.op = MirrorOp(op);
          vcond.value = literal;
          stmt->value_where.push_back(vcond);
          if (!AtKeyword("AND")) break;
          Advance();
          continue;
        }
        TSVIZ_RETURN_IF_ERROR(ExpectKeyword("TIME"));
        cond.value = static_cast<Timestamp>(std::llround(literal));
        // Mirror `literal op time` into `time op' literal`.
        cond.op = MirrorOp(op);
      } else {
        return Error("expected time condition");
      }
      stmt->where.push_back(cond);
      if (!AtKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseGroupBy(SelectStatement* stmt) {
    if (!AtKeyword("SPANS") && !AtKeyword("COLUMNS")) {
      return Error("expected SPANS(w) or COLUMNS(w)");
    }
    Advance();
    TSVIZ_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    if (Current().type != TokenType::kNumber) {
      return Error("expected span count");
    }
    double w = Current().number;
    if (w < 1 || w != std::floor(w)) {
      return Error("span count must be a positive integer");
    }
    stmt->spans = static_cast<int64_t>(w);
    Advance();
    TSVIZ_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& statement) {
  TSVIZ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens));
  return parser.Run();
}

Result<Statement> ParseStatement(const std::string& statement) {
  TSVIZ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  // The non-SELECT statements (SHOW METRICS/JOBS, SET, FLUSH, COMPACT) are
  // recognized up front; everything else goes to the SELECT parser.
  if (!tokens.empty() && tokens[0].type == TokenType::kIdentifier &&
      IdentEquals(tokens[0].text, "SHOW")) {
    if (tokens.size() == 3 && tokens[1].type == TokenType::kIdentifier &&
        IdentEquals(tokens[1].text, "JOBS") &&
        tokens[2].type == TokenType::kEnd) {
      return Statement(ShowJobsStatement{});
    }
    if (tokens.size() == 3 && tokens[1].type == TokenType::kIdentifier &&
        IdentEquals(tokens[1].text, "SERIES") &&
        tokens[2].type == TokenType::kEnd) {
      return Statement(ShowSeriesStatement{});
    }
    if (tokens.size() == 3 && tokens[1].type == TokenType::kIdentifier &&
        IdentEquals(tokens[1].text, "QUERIES") &&
        tokens[2].type == TokenType::kEnd) {
      return Statement(ShowQueriesStatement{});
    }
    if (tokens.size() == 3 && tokens[1].type == TokenType::kIdentifier &&
        IdentEquals(tokens[1].text, "REPLICATION") &&
        tokens[2].type == TokenType::kEnd) {
      return Statement(ShowReplicationStatement{});
    }
    if (tokens.size() >= 3 && tokens[1].type == TokenType::kIdentifier &&
        IdentEquals(tokens[1].text, "PROFILE")) {
      if (tokens.size() == 3 && tokens[2].type == TokenType::kEnd) {
        return Statement(ShowProfileStatement{false});
      }
      if (tokens.size() == 4 && tokens[2].type == TokenType::kIdentifier &&
          IdentEquals(tokens[2].text, "RESET") &&
          tokens[3].type == TokenType::kEnd) {
        return Statement(ShowProfileStatement{true});
      }
      return Status::InvalidArgument("expected SHOW PROFILE [RESET]");
    }
    if (tokens.size() != 3 || tokens[1].type != TokenType::kIdentifier ||
        !IdentEquals(tokens[1].text, "METRICS") ||
        tokens[2].type != TokenType::kEnd) {
      return Status::InvalidArgument(
          "expected SHOW METRICS, SHOW JOBS, SHOW SERIES, SHOW QUERIES, "
          "SHOW REPLICATION or SHOW PROFILE [RESET]");
    }
    return Statement(ShowMetricsStatement{});
  }
  if (!tokens.empty() && tokens[0].type == TokenType::kIdentifier &&
      IdentEquals(tokens[0].text, "DUMP")) {
    if (tokens.size() != 4 || tokens[1].type != TokenType::kIdentifier ||
        !IdentEquals(tokens[1].text, "TRACE") ||
        tokens[2].type != TokenType::kString || tokens[2].text.empty() ||
        tokens[3].type != TokenType::kEnd) {
      return Status::InvalidArgument("expected DUMP TRACE '<path>'");
    }
    return Statement(DumpTraceStatement{tokens[2].text});
  }
  if (!tokens.empty() && tokens[0].type == TokenType::kIdentifier &&
      (IdentEquals(tokens[0].text, "FLUSH") ||
       IdentEquals(tokens[0].text, "COMPACT"))) {
    const bool flush = IdentEquals(tokens[0].text, "FLUSH");
    const char* verb = flush ? "FLUSH" : "COMPACT";
    std::optional<std::string> series;
    if (tokens.size() == 3 && tokens[1].type == TokenType::kIdentifier &&
        tokens[2].type == TokenType::kEnd) {
      series = tokens[1].text;
    } else if (!(tokens.size() == 2 && tokens[1].type == TokenType::kEnd)) {
      return Status::InvalidArgument(std::string("expected ") + verb +
                                     " [series]");
    }
    if (flush) return Statement(FlushStatement{std::move(series)});
    return Statement(CompactStatement{std::move(series)});
  }
  if (!tokens.empty() && tokens[0].type == TokenType::kIdentifier &&
      IdentEquals(tokens[0].text, "INSERT")) {
    // INSERT INTO <series> VALUES (t, v)[, (t, v)]...
    size_t pos = 1;
    auto error = [](const std::string& message) {
      return Status::InvalidArgument(
          message + "; expected INSERT INTO <series> VALUES (t, v)[, ...]");
    };
    if (pos >= tokens.size() || tokens[pos].type != TokenType::kIdentifier ||
        !IdentEquals(tokens[pos].text, "INTO")) {
      return error("expected INTO after INSERT");
    }
    ++pos;
    if (pos >= tokens.size() || tokens[pos].type != TokenType::kIdentifier) {
      return error("expected series name");
    }
    InsertStatement insert;
    insert.series = tokens[pos].text;
    ++pos;
    if (pos >= tokens.size() || tokens[pos].type != TokenType::kIdentifier ||
        !IdentEquals(tokens[pos].text, "VALUES")) {
      return error("expected VALUES");
    }
    ++pos;
    while (true) {
      if (pos >= tokens.size() || tokens[pos].type != TokenType::kLParen) {
        return error("expected (");
      }
      ++pos;
      if (pos >= tokens.size() || tokens[pos].type != TokenType::kNumber ||
          tokens[pos].number != std::floor(tokens[pos].number)) {
        return error("expected integer timestamp");
      }
      Timestamp t = static_cast<Timestamp>(std::llround(tokens[pos].number));
      ++pos;
      if (pos >= tokens.size() || tokens[pos].type != TokenType::kComma) {
        return error("expected , between timestamp and value");
      }
      ++pos;
      if (pos >= tokens.size() || tokens[pos].type != TokenType::kNumber) {
        return error("expected value literal");
      }
      insert.points.emplace_back(t, tokens[pos].number);
      ++pos;
      if (pos >= tokens.size() || tokens[pos].type != TokenType::kRParen) {
        return error("expected )");
      }
      ++pos;
      if (pos < tokens.size() && tokens[pos].type == TokenType::kComma) {
        ++pos;
        continue;
      }
      break;
    }
    if (pos + 1 != tokens.size() || tokens[pos].type != TokenType::kEnd) {
      return error("unexpected trailing input");
    }
    return Statement(std::move(insert));
  }
  if (!tokens.empty() && tokens[0].type == TokenType::kIdentifier &&
      IdentEquals(tokens[0].text, "SET")) {
    // The value is a number, a bare word (enum knobs), or a quoted string
    // (SET replica_of = '127.0.0.1:7001' — host:port does not lex as one
    // identifier).
    if (tokens.size() != 5 || tokens[1].type != TokenType::kIdentifier ||
        tokens[2].type != TokenType::kEq ||
        (tokens[3].type != TokenType::kNumber &&
         tokens[3].type != TokenType::kIdentifier &&
         tokens[3].type != TokenType::kString) ||
        tokens[4].type != TokenType::kEnd) {
      return Status::InvalidArgument(
          std::string("expected SET <name> = <value>; valid knobs: ") +
          kValidSetKnobs);
    }
    SetStatement set;
    set.name = tokens[1].text;
    if (tokens[3].type == TokenType::kNumber) {
      set.value = tokens[3].number;
    } else {
      set.text = tokens[3].text;
    }
    return Statement(std::move(set));
  }
  Parser parser(std::move(tokens));
  TSVIZ_ASSIGN_OR_RETURN(SelectStatement stmt, parser.Run());
  return Statement(std::move(stmt));
}

}  // namespace tsviz::sql
