#ifndef TSVIZ_SQL_LEXER_H_
#define TSVIZ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace tsviz::sql {

// Tokenizes one SQL statement. Identifiers are [A-Za-z_][A-Za-z0-9_.]* (the
// dots admit IoTDB-style series paths like root.sg1.d1.s1); numbers are
// integer or decimal with an optional leading '-'. Fails with
// kInvalidArgument on any unrecognized character, reporting its offset.
Result<std::vector<Token>> Tokenize(const std::string& statement);

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_LEXER_H_
