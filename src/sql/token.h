#ifndef TSVIZ_SQL_TOKEN_H_
#define TSVIZ_SQL_TOKEN_H_

#include <string>

namespace tsviz::sql {

enum class TokenType {
  kIdentifier,  // series names, function names, column names
  kNumber,      // integer or decimal literal (optionally signed)
  kString,      // single-quoted literal; text holds the unquoted value
  kComma,
  kLParen,
  kRParen,
  kStar,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEq,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // original spelling
  double number = 0;  // valid for kNumber
  size_t offset = 0;  // byte offset in the statement, for error messages

  friend bool operator==(const Token&, const Token&) = default;
};

// Case-insensitive keyword/identifier comparison helper.
bool IdentEquals(const std::string& a, const char* b);

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_TOKEN_H_
