#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace tsviz::sql {

bool IdentEquals(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& statement) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = statement.size();
  while (i < n) {
    char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t begin = i;
      while (i < n && IsIdentBody(statement[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = statement.substr(begin, i - begin);
    } else if (c == '\'') {
      // Single-quoted string literal; '' escapes a literal quote, matching
      // standard SQL.
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (statement[i] == '\'') {
          if (i + 1 < n && statement[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += statement[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(token.offset));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(statement[i + 1])))) {
      size_t begin = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(statement[i])) ||
                       statement[i] == '.' || statement[i] == 'e' ||
                       statement[i] == 'E' ||
                       ((statement[i] == '+' || statement[i] == '-') && i > begin &&
                        (statement[i - 1] == 'e' || statement[i - 1] == 'E')))) {
        ++i;
      }
      token.type = TokenType::kNumber;
      token.text = statement.substr(begin, i - begin);
      char* end = nullptr;
      token.number = std::strtod(token.text.c_str(), &end);
      if (end != token.text.c_str() + token.text.size()) {
        return Status::InvalidArgument("bad number '" + token.text +
                                       "' at offset " +
                                       std::to_string(token.offset));
      }
    } else {
      switch (c) {
        case ',':
          token.type = TokenType::kComma;
          ++i;
          break;
        case '(':
          token.type = TokenType::kLParen;
          ++i;
          break;
        case ')':
          token.type = TokenType::kRParen;
          ++i;
          break;
        case '*':
          token.type = TokenType::kStar;
          ++i;
          break;
        case '=':
          token.type = TokenType::kEq;
          ++i;
          break;
        case '<':
          if (i + 1 < n && statement[i + 1] == '=') {
            token.type = TokenType::kLessEq;
            i += 2;
          } else {
            token.type = TokenType::kLess;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && statement[i + 1] == '=') {
            token.type = TokenType::kGreaterEq;
            i += 2;
          } else {
            token.type = TokenType::kGreater;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(i));
      }
      token.text = statement.substr(token.offset, i - token.offset);
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.offset = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace tsviz::sql
