#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>

#include "common/logging.h"
#include "m4/m4_lsm.h"
#include "m4/parallel.h"
#include "m4/span.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "read/data_reader.h"
#include "read/merge_reader.h"
#include "read/metadata_reader.h"
#include "read/series_reader.h"
#include "sql/parser.h"
#include "storage/quarantine.h"

namespace tsviz::sql {

namespace {

// Resolves the WHERE conjunction into the half-open query range [tqs, tqe),
// defaulting to the series' full data interval.
Result<std::pair<Timestamp, Timestamp>> ResolveTimeRange(
    const StoreView& view, const SelectStatement& stmt) {
  Timestamp tqs = kMinTimestamp;
  Timestamp tqe = kMaxTimestamp;
  bool has_lower = false;
  bool has_upper = false;
  for (const TimeCondition& cond : stmt.where) {
    switch (cond.op) {
      case TokenType::kGreaterEq:
        tqs = has_lower ? std::max(tqs, cond.value) : cond.value;
        has_lower = true;
        break;
      case TokenType::kGreater:
        if (cond.value == kMaxTimestamp) {
          return Status::InvalidArgument("time > MAX is empty");
        }
        tqs = has_lower ? std::max(tqs, cond.value + 1) : cond.value + 1;
        has_lower = true;
        break;
      case TokenType::kLess:
        tqe = has_upper ? std::min(tqe, cond.value) : cond.value;
        has_upper = true;
        break;
      case TokenType::kLessEq:
        if (cond.value == kMaxTimestamp) {
          return Status::InvalidArgument("time <= MAX overflows");
        }
        tqe = has_upper ? std::min(tqe, cond.value + 1) : cond.value + 1;
        has_upper = true;
        break;
      case TokenType::kEq:
        tqs = has_lower ? std::max(tqs, cond.value) : cond.value;
        tqe = has_upper ? std::min(tqe, cond.value + 1) : cond.value + 1;
        has_lower = has_upper = true;
        break;
      default:
        return Status::Internal("unexpected operator in time condition");
    }
  }
  if (!has_lower || !has_upper) {
    TimeRange data = view.DataInterval();
    if (data.Empty()) {
      return Status::NotFound("series is empty and WHERE gives no range");
    }
    if (!has_lower) tqs = data.start;
    if (!has_upper) tqe = data.end + 1;
  }
  if (tqe <= tqs) {
    return Status::InvalidArgument("WHERE clause selects an empty range");
  }
  return std::make_pair(tqs, tqe);
}

Result<ResultSet> ExecuteRawSelect(const StoreView& view,
                                   const SelectStatement& stmt,
                                   Timestamp tqs, Timestamp tqe,
                                   QueryStats* stats) {
  if (stmt.spans.has_value()) {
    return Status::InvalidArgument(
        "GROUP BY requires aggregation functions");
  }
  for (const SelectItem& item : stmt.items) {
    if (item.kind != FuncKind::kRawColumn) {
      return Status::InvalidArgument(
          "cannot mix raw columns with aggregations");
    }
  }
  std::vector<Point> merged;
  {
    obs::TraceSpan span(stats != nullptr ? stats->trace.get() : nullptr,
                        "merge_scan");
    TSVIZ_ASSIGN_OR_RETURN(
        merged, ReadMergedSeries(view, TimeRange(tqs, tqe - 1), stats));
  }
  ResultSet result({"time", "value"});
  for (const Point& p : merged) {
    bool keep = true;
    for (const ValueCondition& cond : stmt.value_where) {
      if (!cond.Matches(p.v)) {
        keep = false;
        break;
      }
    }
    if (keep) result.AddRow({ResultSet::Cell(p.t), ResultSet::Cell(p.v)});
  }
  return result;
}

// The scan-side accumulators for COUNT/SUM/AVG.
struct ScanAggregates {
  std::vector<uint64_t> counts;
  std::vector<double> sums;
};

Result<ScanAggregates> RunScan(const StoreView& view, const M4Query& query,
                               QueryStats* stats) {
  SpanSet spans(query);
  TimeRange range(query.tqs, query.tqe - 1);
  std::vector<ChunkHandle> handles =
      SelectOverlappingChunks(view, range, stats);
  DataReader data_reader(stats);
  std::vector<LazyChunk*> chunks;
  chunks.reserve(handles.size());
  for (const ChunkHandle& handle : handles) {
    chunks.push_back(data_reader.GetChunk(handle));
  }
  MergeReader merger(std::move(chunks),
                     SelectOverlappingDeletes(view, range), range);
  merger.PreloadFullChunks();  // the scan drains every overlapping chunk
  ScanAggregates agg;
  agg.counts.assign(static_cast<size_t>(spans.num_spans()), 0);
  agg.sums.assign(static_cast<size_t>(spans.num_spans()), 0.0);
  Point p;
  while (true) {
    TSVIZ_ASSIGN_OR_RETURN(bool more, merger.Next(&p));
    if (!more) break;
    if (stats != nullptr) ++stats->points_scanned;
    size_t i = static_cast<size_t>(spans.IndexOf(p.t));
    ++agg.counts[i];
    agg.sums[i] += p.v;
  }
  return agg;
}

// Expands kM4 into its eight constituent columns.
std::vector<FuncKind> ExpandItem(const SelectItem& item) {
  if (item.kind != FuncKind::kM4) return {item.kind};
  return {FuncKind::kFirstTime,  FuncKind::kFirstValue,
          FuncKind::kLastTime,   FuncKind::kLastValue,
          FuncKind::kBottomTime, FuncKind::kBottomValue,
          FuncKind::kTopTime,    FuncKind::kTopValue};
}

ResultSet::Cell M4Cell(const M4Row& row, FuncKind kind) {
  if (!row.has_data) return std::monostate{};
  switch (kind) {
    case FuncKind::kFirstTime:
      return row.first.t;
    case FuncKind::kFirstValue:
      return row.first.v;
    case FuncKind::kLastTime:
      return row.last.t;
    case FuncKind::kLastValue:
      return row.last.v;
    case FuncKind::kBottomTime:
      return row.bottom.t;
    case FuncKind::kBottomValue:
      return row.bottom.v;
    case FuncKind::kTopTime:
      return row.top.t;
    case FuncKind::kTopValue:
      return row.top.v;
    default:
      return std::monostate{};
  }
}

// EXPLAIN output: the plan, resolved against store metadata only — no
// chunk data is read.
Result<ResultSet> ExplainSelect(const StoreView& view,
                                const SelectStatement& stmt, Timestamp tqs,
                                Timestamp tqe, bool any_raw, bool any_m4,
                                bool any_scan) {
  ResultSet result({"step", "detail"});
  auto add = [&result](const std::string& step, const std::string& detail) {
    result.AddRow({ResultSet::Cell(step), ResultSet::Cell(detail)});
  };
  add("series", stmt.series);
  add("time_range",
      "[" + std::to_string(tqs) + ", " + std::to_string(tqe) + ")");
  add("spans", std::to_string(stmt.spans.value_or(1)));
  TimeRange range(tqs, tqe - 1);
  size_t partitions_scanned = 0;
  size_t partitions_pruned = 0;
  for (const StorePartition& part : view.partitions()) {
    if (part.interval.Empty() || !part.interval.Overlaps(range)) {
      ++partitions_pruned;
    } else {
      ++partitions_scanned;
    }
  }
  size_t chunks = 0;
  for (const ChunkHandle& chunk : view.chunks()) {
    if (chunk.meta->Interval().Overlaps(range)) ++chunks;
  }
  size_t deletes = 0;
  for (const DeleteRecord& del : view.deletes()) {
    if (del.range.Overlaps(range)) ++deletes;
  }
  add("partitions_total", std::to_string(view.partitions().size()));
  add("partitions_scanned", std::to_string(partitions_scanned));
  add("partitions_pruned", std::to_string(partitions_pruned));
  add("chunks_overlapping", std::to_string(chunks));
  add("deletes_overlapping", std::to_string(deletes));
  if (any_raw) {
    add("path", "raw merged points (loads and merges every chunk)");
  }
  if (any_m4) {
    add("path", "merge-free M4-LSM (metadata candidates, lazy page loads)");
  }
  if (any_scan) {
    add("path", "merged scan for COUNT/SUM/AVG");
  }
  return result;
}

// SHOW METRICS: one exposition line per row. The single column name starts
// with '#', so the CSV header line is itself a valid Prometheus comment and
// the whole CSV reply parses as text exposition format.
ResultSet ShowMetrics() {
  ResultSet result({"# tsviz metrics (Prometheus text exposition)"});
  std::string text = obs::MetricsRegistry::Instance().RenderPrometheus();
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    result.AddRow({ResultSet::Cell(text.substr(begin, end - begin))});
    begin = end + 1;
  }
  return result;
}

void AppendTraceRows(const obs::TraceNode& node, size_t depth,
                     ResultSet* out) {
  out->AddRow({ResultSet::Cell(std::string(2 * depth, ' ') + node.name),
               ResultSet::Cell(node.millis),
               ResultSet::Cell(static_cast<int64_t>(node.calls))});
  for (const auto& child : node.children) {
    AppendTraceRows(*child, depth + 1, out);
  }
}

// EXPLAIN ANALYZE: executes the query with a trace attached and reports the
// phase tree followed by the QueryStats counters. The counter rows reuse
// QueryStats::FieldNames/FieldValues, the same single source of truth behind
// ToCsvRow, so the statement and the CSV serialization cannot drift apart.
Result<ResultSet> ExplainAnalyzeSelect(const StoreView& view,
                                       const SelectStatement& stmt,
                                       QueryStats* caller_stats,
                                       const ExecOptions& options) {
  QueryStats query_stats;
  query_stats.trace = std::make_shared<obs::Trace>("query");
  SelectStatement inner = stmt;
  inner.analyze = false;
  Timer timer;
  TSVIZ_ASSIGN_OR_RETURN(ResultSet inner_result,
                         ExecuteSelect(view, inner, &query_stats, options));
  if (inner.limit.has_value()) {
    inner_result.Truncate(static_cast<size_t>(*inner.limit));
  }
  query_stats.trace->root().millis = timer.ElapsedMillis();

  ResultSet result({"node", "millis", "calls"});
  AppendTraceRows(query_stats.trace->root(), 0, &result);
  result.AddRow({ResultSet::Cell(std::string("rows_returned")),
                 ResultSet::Cell(static_cast<int64_t>(
                     inner_result.num_rows())),
                 ResultSet::Cell(std::monostate{})});
  const std::vector<std::string>& names = QueryStats::FieldNames();
  std::vector<uint64_t> values = query_stats.FieldValues();
  for (size_t i = 0; i < names.size(); ++i) {
    result.AddRow({ResultSet::Cell("stat:" + names[i]),
                   ResultSet::Cell(static_cast<int64_t>(values[i])),
                   ResultSet::Cell(std::monostate{})});
  }
  result.AddRow(
      {ResultSet::Cell(std::string("degraded")),
       ResultSet::Cell(static_cast<int64_t>(query_stats.degraded ? 1 : 0)),
       ResultSet::Cell(std::monostate{})});
  if (caller_stats != nullptr) {
    std::shared_ptr<obs::Trace> trace = query_stats.trace;
    *caller_stats += query_stats;
    caller_stats->trace = std::move(trace);
  }
  return result;
}

// One execution attempt. Pulled out of ExecuteSelect so the public entry
// point can retry under RunWithReadTolerance when a corrupt chunk is
// discovered (and quarantined) mid-read.
Result<ResultSet> ExecuteSelectImpl(const StoreView& view,
                                    const SelectStatement& stmt,
                                    QueryStats* stats,
                                    const ExecOptions& options) {
  TSVIZ_ASSIGN_OR_RETURN(auto range, ResolveTimeRange(view, stmt));
  const auto [tqs, tqe] = range;

  bool any_raw = false;
  bool any_m4 = false;
  bool any_scan = false;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == FuncKind::kRawColumn) {
      any_raw = true;
    } else if (IsM4Family(item.kind)) {
      any_m4 = true;
    } else {
      any_scan = true;
    }
  }
  if (stmt.explain) {
    return ExplainSelect(view, stmt, tqs, tqe, any_raw, any_m4, any_scan);
  }
  if (any_raw) {
    if (any_m4 || any_scan) {
      return Status::InvalidArgument(
          "cannot mix raw columns with aggregations");
    }
    TSVIZ_ASSIGN_OR_RETURN(ResultSet raw,
                           ExecuteRawSelect(view, stmt, tqs, tqe, stats));
    if (stmt.limit.has_value()) {
      raw.Truncate(static_cast<size_t>(*stmt.limit));
    }
    return raw;
  }

  if (!stmt.value_where.empty()) {
    return Status::InvalidArgument(
        "value conditions are only supported for raw point selection");
  }
  M4Query query{tqs, tqe, stmt.spans.value_or(1)};
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  SpanSet spans(query);

  M4Result m4;
  if (any_m4) {
    if (options.result_cache != nullptr) {
      TSVIZ_ASSIGN_OR_RETURN(
          m4, options.result_cache->GetOrCompute(view, query, stats, {},
                                                 options.parallelism));
    } else if (options.parallelism > 1) {
      TSVIZ_ASSIGN_OR_RETURN(
          m4, RunM4LsmParallel(view, query, options.parallelism, stats));
    } else {
      TSVIZ_ASSIGN_OR_RETURN(m4, RunM4Lsm(view, query, stats));
    }
  }
  ScanAggregates scan;
  if (any_scan) {
    TSVIZ_ASSIGN_OR_RETURN(scan, RunScan(view, query, stats));
  }

  // Column headers: implicit span_start, then one column per expanded item.
  std::vector<std::string> columns = {"span_start"};
  std::vector<FuncKind> kinds;
  for (const SelectItem& item : stmt.items) {
    for (FuncKind kind : ExpandItem(item)) {
      kinds.push_back(kind);
      std::string arg = item.argument.empty() ? "v" : item.argument;
      columns.push_back(FuncName(kind) + "(" + arg + ")");
    }
  }

  ResultSet result(std::move(columns));
  for (int64_t i = 0; i < spans.num_spans(); ++i) {
    std::vector<ResultSet::Cell> cells;
    cells.reserve(kinds.size() + 1);
    cells.emplace_back(spans.SpanStart(i));
    size_t si = static_cast<size_t>(i);
    for (FuncKind kind : kinds) {
      switch (kind) {
        case FuncKind::kCount:
          cells.emplace_back(static_cast<int64_t>(scan.counts[si]));
          break;
        case FuncKind::kSum:
          if (scan.counts[si] == 0) {
            cells.emplace_back(std::monostate{});
          } else {
            cells.emplace_back(scan.sums[si]);
          }
          break;
        case FuncKind::kAvg:
          if (scan.counts[si] == 0) {
            cells.emplace_back(std::monostate{});
          } else {
            cells.emplace_back(scan.sums[si] /
                               static_cast<double>(scan.counts[si]));
          }
          break;
        default:
          cells.push_back(M4Cell(m4[si], kind));
          break;
      }
    }
    result.AddRow(std::move(cells));
  }
  return result;
}

}  // namespace

Result<ResultSet> ExecuteSelect(StoreView view,
                                const SelectStatement& stmt,
                                QueryStats* stats,
                                const ExecOptions& options) {
  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  if (stmt.analyze) {
    return ExplainAnalyzeSelect(view, stmt, stats, options);
  }
  // Each attempt charges a private QueryStats that is merged only on
  // success, so a retried attempt does not double-count chunk reads.
  std::optional<Result<ResultSet>> attempt_result;
  Status status = RunWithReadTolerance([&]() {
    QueryStats attempt;
    if (stats != nullptr) attempt.trace = stats->trace;
    attempt_result.emplace(ExecuteSelectImpl(
        view, stmt, stats != nullptr ? &attempt : nullptr, options));
    if (attempt_result->ok() && stats != nullptr) {
      attempt.trace.reset();
      *stats += attempt;
    }
    return attempt_result->ok() ? Status::OK() : attempt_result->status();
  });
  if (!status.ok()) return status;
  return std::move(*attempt_result);
}

namespace {

// FLUSH/COMPACT: the store call itself serializes with background jobs via
// the store's maintenance mutex, so an explicit statement and the policy
// loop can never run the same operation on a store concurrently.
Result<ResultSet> ExecuteMaintenance(Database* db,
                                     const std::optional<std::string>& series,
                                     bool compact) {
  std::vector<std::string> names;
  if (series.has_value()) {
    TSVIZ_RETURN_IF_ERROR(db->GetSeries(*series).status());
    names.push_back(*series);
  } else {
    names = db->ListSeries();
  }
  ResultSet result({"series", "action", "status"});
  for (const std::string& name : names) {
    auto store = db->GetSeriesShared(name);
    if (!store.ok()) continue;  // dropped between listing and here
    Status status = compact ? (*store)->Compact() : (*store)->Flush();
    result.AddRow({ResultSet::Cell(name),
                   ResultSet::Cell(std::string(compact ? "compact" : "flush")),
                   ResultSet::Cell(status.ok() ? std::string("OK")
                                               : status.ToString())});
    TSVIZ_RETURN_IF_ERROR(status);
  }
  return result;
}

// SHOW SERIES: one row per series with its storage shape, read off a
// consistent copy-on-write snapshot per store — no chunk data is loaded.
ResultSet ShowSeries(Database* db) {
  ResultSet result({"series", "partition_interval_ms", "partitions", "files",
                    "chunks", "data_start", "data_end"});
  for (const std::string& name : db->ListSeries()) {
    auto store = db->GetSeriesShared(name);
    if (!store.ok()) continue;  // dropped between listing and here
    StoreView view = (*store)->CurrentView();
    const TimeRange data = view.DataInterval();
    result.AddRow(
        {ResultSet::Cell(name),
         ResultSet::Cell((*store)->partition_interval()),
         ResultSet::Cell(static_cast<int64_t>(view.partitions().size())),
         ResultSet::Cell(static_cast<int64_t>(view.files().size())),
         ResultSet::Cell(static_cast<int64_t>(view.chunks().size())),
         data.Empty() ? ResultSet::Cell(std::monostate{})
                      : ResultSet::Cell(data.start),
         data.Empty() ? ResultSet::Cell(std::monostate{})
                      : ResultSet::Cell(data.end)});
  }
  return result;
}

// SHOW QUERIES: the flight recorder's query history, newest first.
ResultSet ShowQueries() {
  ResultSet result({"id", "statement", "millis", "rows", "degraded",
                    "chunks_loaded", "points_scanned", "sampled", "slow",
                    "status"});
  for (const obs::RecordedEvent& event : obs::FlightRecorder::Instance()
           .Snapshot(SIZE_MAX, obs::EventKind::kQuery)) {
    result.AddRow({ResultSet::Cell(static_cast<int64_t>(event.id)),
                   ResultSet::Cell(event.statement),
                   ResultSet::Cell(event.millis),
                   ResultSet::Cell(static_cast<int64_t>(event.rows)),
                   ResultSet::Cell(static_cast<int64_t>(event.degraded)),
                   ResultSet::Cell(static_cast<int64_t>(event.chunks_loaded)),
                   ResultSet::Cell(static_cast<int64_t>(event.points_scanned)),
                   ResultSet::Cell(static_cast<int64_t>(event.sampled)),
                   ResultSet::Cell(static_cast<int64_t>(event.slow)),
                   ResultSet::Cell(event.status)});
  }
  return result;
}

// SHOW PROFILE [RESET]: every span tree the recorder has captured (sampled
// queries, slow queries, EXPLAIN ANALYZE, background jobs), merged by phase
// name — the "where does time go overall" view, no re-running needed.
ResultSet ShowProfile(bool reset) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  uint64_t traces_merged = 0;
  std::unique_ptr<obs::TraceNode> profile =
      recorder.ProfileSnapshot(&traces_merged);
  if (reset) recorder.ResetProfile();
  ResultSet result({"node", "millis", "calls"});
  result.AddRow({ResultSet::Cell(std::string("traces_merged")),
                 ResultSet::Cell(std::monostate{}),
                 ResultSet::Cell(static_cast<int64_t>(traces_merged))});
  for (const auto& tree : profile->children) {
    AppendTraceRows(*tree, 0, &result);
  }
  return result;
}

// DUMP TRACE '<path>': exports the buffered events as Chrome trace-event
// JSON for Perfetto / chrome://tracing.
Result<ResultSet> DumpTrace(const std::string& path) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  const size_t events = recorder.event_count();
  std::string json = recorder.DumpChromeTrace();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << json;
  out.close();
  if (!out) {
    return Status::IoError("short write to '" + path + "'");
  }
  ResultSet result({"path", "events", "bytes"});
  result.AddRow({ResultSet::Cell(path),
                 ResultSet::Cell(static_cast<int64_t>(events)),
                 ResultSet::Cell(static_cast<int64_t>(json.size()))});
  return result;
}

// SHOW REPLICATION: key,value rows describing the node's replication role
// and progress. On a standalone node it still answers (role STANDALONE) so
// tooling can probe any node with one statement.
ResultSet ShowReplication(Database* db) {
  const ReplicationStatus rs = db->replication_status();
  ResultSet result({"key", "value"});
  auto add = [&result](const std::string& key, const std::string& value) {
    result.AddRow({ResultSet::Cell(key), ResultSet::Cell(value)});
  };
  add("role", ReplicationRoleName(rs.role));
  add("state", rs.state);
  switch (rs.role) {
    case ReplicationRole::kStandalone:
      break;
    case ReplicationRole::kPrimary:
      add("listen_port", std::to_string(rs.listen_port));
      add("last_seq", std::to_string(rs.last_seq));
      add("divergences", std::to_string(rs.divergences));
      break;
    case ReplicationRole::kReplica:
      add("primary", rs.primary);
      add("applied_seq", std::to_string(rs.last_seq));
      add("primary_seq", std::to_string(rs.primary_seq));
      add("lag_ms", std::to_string(rs.lag_ms));
      add("max_staleness_ms", std::to_string(db->max_staleness_ms()));
      add("reconnects", std::to_string(rs.reconnects));
      add("divergences", std::to_string(rs.divergences));
      break;
  }
  return result;
}

ResultSet ShowJobs(Database* db) {
  ResultSet result({"id", "key", "type", "state", "periodic", "runs",
                    "last_millis", "last_status"});
  for (const bg::JobInfo& job : db->maintenance().ListJobs()) {
    result.AddRow({ResultSet::Cell(static_cast<int64_t>(job.id)),
                   ResultSet::Cell(job.key),
                   ResultSet::Cell(job.type),
                   ResultSet::Cell(std::string(bg::JobStateName(job.state))),
                   ResultSet::Cell(static_cast<int64_t>(job.periodic ? 1 : 0)),
                   ResultSet::Cell(static_cast<int64_t>(job.runs)),
                   ResultSet::Cell(job.last_millis),
                   ResultSet::Cell(job.last_status)});
  }
  return result;
}

}  // namespace

Result<ResultSet> ExecuteStatement(Database* db, const Statement& statement,
                                   QueryStats* stats) {
  if (std::holds_alternative<ShowMetricsStatement>(statement)) {
    return ShowMetrics();
  }
  if (std::holds_alternative<ShowJobsStatement>(statement)) {
    return ShowJobs(db);
  }
  if (std::holds_alternative<ShowSeriesStatement>(statement)) {
    return ShowSeries(db);
  }
  if (std::holds_alternative<ShowQueriesStatement>(statement)) {
    return ShowQueries();
  }
  if (std::holds_alternative<ShowReplicationStatement>(statement)) {
    return ShowReplication(db);
  }
  if (const ShowProfileStatement* profile =
          std::get_if<ShowProfileStatement>(&statement)) {
    return ShowProfile(profile->reset);
  }
  if (const DumpTraceStatement* dump =
          std::get_if<DumpTraceStatement>(&statement)) {
    return DumpTrace(dump->path);
  }
  if (const FlushStatement* flush = std::get_if<FlushStatement>(&statement)) {
    return ExecuteMaintenance(db, flush->series, /*compact=*/false);
  }
  if (const CompactStatement* comp =
          std::get_if<CompactStatement>(&statement)) {
    return ExecuteMaintenance(db, comp->series, /*compact=*/true);
  }
  if (const InsertStatement* insert =
          std::get_if<InsertStatement>(&statement)) {
    if (insert->points.size() == 1) {
      TSVIZ_RETURN_IF_ERROR(db->Write(insert->series, insert->points[0].first,
                                      insert->points[0].second));
    } else {
      // Multi-row INSERT: one store append + one WAL write for the whole
      // statement instead of one of each per row.
      std::vector<Point> points;
      points.reserve(insert->points.size());
      for (const auto& [t, v] : insert->points) points.push_back(Point{t, v});
      TSVIZ_RETURN_IF_ERROR(db->WriteBatch(insert->series, points));
    }
    ResultSet result({"series", "points"});
    result.AddRow({ResultSet::Cell(insert->series),
                   ResultSet::Cell(static_cast<int64_t>(
                       insert->points.size()))});
    return result;
  }
  if (const SetStatement* set = std::get_if<SetStatement>(&statement)) {
    std::string name = set->name;
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    ResultSet result({"setting", "value"});
    if (set->text.has_value()) {
      std::string text = *set->text;
      std::transform(text.begin(), text.end(), text.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      TSVIZ_RETURN_IF_ERROR(db->ApplySetting(name, text));
      result.AddRow({ResultSet::Cell(name), ResultSet::Cell(text)});
    } else {
      TSVIZ_RETURN_IF_ERROR(db->ApplySetting(name, set->value));
      result.AddRow({ResultSet::Cell(name), ResultSet::Cell(set->value)});
    }
    return result;
  }
  const SelectStatement& stmt = std::get<SelectStatement>(statement);
  // Bounded-staleness gate: on a replica past its staleness bound (or
  // quarantined mid-resync) the SELECT fails retryably instead of serving
  // arbitrarily old data.
  TSVIZ_RETURN_IF_ERROR(db->CheckReplicaRead());
  TSVIZ_ASSIGN_OR_RETURN(TsStore * store, db->GetSeries(stmt.series));
  ExecOptions options;
  options.result_cache = &db->result_cache();
  options.parallelism = db->query_parallelism();
  TSVIZ_ASSIGN_OR_RETURN(ResultSet result,
                         ExecuteSelect(*store, stmt, stats, options));
  // EXPLAIN ANALYZE applies LIMIT to the traced query itself; truncating
  // here would clip the phase tree instead of the result rows.
  if (stmt.limit.has_value() && !stmt.analyze) {
    result.Truncate(static_cast<size_t>(*stmt.limit));
  }
  return result;
}

Result<ResultSet> ExecuteRecorded(Database* db, const Statement& statement,
                                  const std::string& text,
                                  QueryStats* caller_stats,
                                  const RecordContext& context) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  QueryStats local;
  QueryStats* stats = caller_stats != nullptr ? caller_stats : &local;

  // Decide up front whether this statement carries a trace. Only plain
  // SELECTs are eligible: EXPLAIN does not execute, and EXPLAIN ANALYZE
  // builds its own trace (which lands in stats->trace on return and is
  // recorded all the same).
  const SelectStatement* select = std::get_if<SelectStatement>(&statement);
  const bool plain_select =
      select != nullptr && !select->explain && !select->analyze;
  bool sampled = false;
  if (plain_select && stats->trace == nullptr) {
    if (recorder.ShouldSampleTrace()) {
      stats->trace = std::make_shared<obs::Trace>("query");
      sampled = true;
    } else if (recorder.slow_query_millis() > 0.0) {
      // A slow query cannot be traced after the fact, so an armed slow-query
      // log traces every SELECT — the cost is opt-in via the knob.
      stats->trace = std::make_shared<obs::Trace>("query");
    }
  }

  Timer timer;
  Result<ResultSet> result = ExecuteStatement(db, statement, stats);
  const double millis = timer.ElapsedMillis();
  if (stats->trace != nullptr && stats->trace->root().millis == 0.0) {
    stats->trace->root().millis = millis;
  }

  const double slow_millis = recorder.slow_query_millis();
  const bool slow = slow_millis > 0.0 && millis >= slow_millis;
  if (slow) {
    TSVIZ_WARN << "slow query" << Field("millis", millis)
               << Field("threshold", slow_millis)
               << Field("statement", text);
  }

  // Graft the network-queue wait into the trace before the recorder takes
  // shared ownership — mutating the tree after Record would race readers.
  if (stats->trace != nullptr && context.net_queue_wait_millis >= 0.0) {
    obs::TraceNode* wait = stats->trace->root().Child("net_queue_wait");
    wait->millis += context.net_queue_wait_millis;
    wait->calls += 1;
  }

  obs::RecordedEvent event;
  event.kind = obs::EventKind::kQuery;
  event.millis = millis;
  event.statement = text;
  event.status = result.ok() ? "OK" : result.status().ToString();
  event.rows = result.ok() ? result->num_rows() : 0;
  event.degraded = stats->degraded;
  event.sampled = sampled;
  event.slow = slow;
  event.chunks_total = stats->chunks_total;
  event.chunks_loaded = stats->chunks_loaded;
  event.points_scanned = stats->points_scanned;
  event.bytes_read = stats->bytes_read;
  event.metadata_reads = stats->metadata_reads;
  event.trace = stats->trace;
  recorder.Record(std::move(event));
  return result;
}

Result<ResultSet> ExecuteQuery(Database* db, const std::string& statement,
                               QueryStats* stats) {
  TSVIZ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  return ExecuteRecorded(db, stmt, statement, stats);
}

namespace {

obs::Counter& CoalescedStatementsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "batch_insert_coalesced_total",
      "Single-point INSERT statements coalesced into a batched store "
      "write");
  return c;
}
obs::Counter& CoalescedGroupsTotal() {
  static obs::Counter& c = obs::GetCounter(
      "batch_insert_groups_total",
      "Coalesced INSERT groups written via WriteBatch (each covers >= 2 "
      "statements)");
  return c;
}

}  // namespace

std::vector<Result<ResultSet>> ExecuteInsertBatch(
    Database* db, const std::vector<std::string>& lines,
    const RecordContext& context) {
  const size_t n = lines.size();
  std::vector<Result<ResultSet>> results;
  results.reserve(n);

  // Parse everything up front so run detection can look ahead without
  // re-parsing.
  std::vector<Result<Statement>> parsed;
  parsed.reserve(n);
  for (const std::string& line : lines) parsed.push_back(ParseStatement(line));

  // The coalescible shape: a well-parsed single-point INSERT into a validly
  // named series. Anything else (parse error, multi-row INSERT, invalid
  // name) drops out of the run and executes — and errors — individually.
  auto coalescible = [&parsed](size_t i) -> const InsertStatement* {
    if (!parsed[i].ok()) return nullptr;
    const InsertStatement* insert = std::get_if<InsertStatement>(&*parsed[i]);
    if (insert == nullptr || insert->points.size() != 1) return nullptr;
    if (!IsValidSeriesName(insert->series)) return nullptr;
    return insert;
  };

  size_t i = 0;
  while (i < n) {
    const InsertStatement* first = coalescible(i);
    size_t run = 1;
    if (first != nullptr) {
      while (i + run < n) {
        const InsertStatement* next = coalescible(i + run);
        if (next == nullptr || next->series != first->series) break;
        ++run;
      }
    }
    if (first == nullptr || run == 1) {
      // Exactly the unbatched path: parse errors reply without recording
      // (matching SqlServer::ExecuteLine), everything else goes through the
      // flight recorder.
      if (!parsed[i].ok()) {
        results.push_back(parsed[i].status());
      } else {
        results.push_back(
            ExecuteRecorded(db, *parsed[i], lines[i], nullptr, context));
      }
      ++i;
      continue;
    }

    // A run of >= 2 consecutive single-point INSERTs into one series: one
    // WriteBatch (one store-lock acquisition, one WAL write), per-statement
    // replies and recorder events preserved. A failed batch write reports
    // the same error on every statement of the run.
    std::vector<Point> points;
    points.reserve(run);
    for (size_t k = i; k < i + run; ++k) {
      const InsertStatement* insert = coalescible(k);
      points.push_back(Point{insert->points[0].first,
                             insert->points[0].second});
    }
    Timer timer;
    Status status = db->WriteBatch(first->series, points);
    const double per_statement_millis = timer.ElapsedMillis() / run;
    CoalescedStatementsTotal().Inc(run);
    CoalescedGroupsTotal().Inc();
    for (size_t k = i; k < i + run; ++k) {
      obs::RecordedEvent event;
      event.kind = obs::EventKind::kQuery;
      event.millis = per_statement_millis;
      event.statement = lines[k];
      event.status = status.ok() ? "OK" : status.ToString();
      event.rows = status.ok() ? 1 : 0;
      obs::FlightRecorder::Instance().Record(std::move(event));
      if (status.ok()) {
        ResultSet result({"series", "points"});
        result.AddRow({ResultSet::Cell(first->series),
                       ResultSet::Cell(static_cast<int64_t>(1))});
        results.push_back(std::move(result));
      } else {
        results.push_back(status);
      }
    }
    i += run;
  }
  return results;
}

}  // namespace tsviz::sql
