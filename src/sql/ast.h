#ifndef TSVIZ_SQL_AST_H_
#define TSVIZ_SQL_AST_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.h"
#include "sql/token.h"

namespace tsviz::sql {

// The supported SELECT functions. The first eight are the M4 aggregators of
// Appendix A.1; kM4 is shorthand expanding to all of them. kMin/kMax (and
// the IoTDB spellings MIN_VALUE/MAX_VALUE) alias the bottom/top values.
// kRawColumn selects the merged raw points.
enum class FuncKind {
  kM4,
  kFirstTime,
  kFirstValue,
  kLastTime,
  kLastValue,
  kBottomTime,
  kBottomValue,
  kTopTime,
  kTopValue,
  kCount,
  kSum,
  kAvg,
  kRawColumn,
};

// Whether the function is part of the M4 family (answered merge-free).
bool IsM4Family(FuncKind kind);

// Display name used for result column headers.
std::string FuncName(FuncKind kind);

struct SelectItem {
  FuncKind kind = FuncKind::kRawColumn;
  std::string argument;  // column name inside the call, informational

  friend bool operator==(const SelectItem&, const SelectItem&) = default;
};

// One `time <op> literal` conjunct of the WHERE clause.
struct TimeCondition {
  TokenType op = TokenType::kLess;  // kLess/kLessEq/kGreater/kGreaterEq/kEq
  Timestamp value = 0;

  friend bool operator==(const TimeCondition&, const TimeCondition&) = default;
};

// One `value <op> literal` conjunct — only legal for raw point selection,
// where it filters the merged stream.
struct ValueCondition {
  TokenType op = TokenType::kLess;
  double value = 0.0;

  bool Matches(double v) const {
    switch (op) {
      case TokenType::kLess:
        return v < value;
      case TokenType::kLessEq:
        return v <= value;
      case TokenType::kGreater:
        return v > value;
      case TokenType::kGreaterEq:
        return v >= value;
      case TokenType::kEq:
        return v == value;
      default:
        return false;
    }
  }

  friend bool operator==(const ValueCondition&,
                         const ValueCondition&) = default;
};

struct SelectStatement {
  bool explain = false;  // EXPLAIN SELECT ... : describe the plan instead
  bool analyze = false;  // EXPLAIN ANALYZE SELECT ... : execute and trace
  std::vector<SelectItem> items;
  std::string series;
  std::vector<TimeCondition> where;        // conjunction, on time
  std::vector<ValueCondition> value_where;  // conjunction, on value
  std::optional<int64_t> spans;      // GROUP BY SPANS(w)
  std::optional<int64_t> limit;      // LIMIT n

  friend bool operator==(const SelectStatement&,
                         const SelectStatement&) = default;
};

// SHOW METRICS: dumps the process-wide metrics registry in Prometheus text
// exposition format, one line per row.
struct ShowMetricsStatement {
  friend bool operator==(const ShowMetricsStatement&,
                         const ShowMetricsStatement&) = default;
};

// SET <name> = <value>: adjusts a runtime knob on the database
// (parallelism, page_cache_bytes, read_tolerance, ...). Most knobs take a
// number; enum-valued knobs (read_tolerance = degrade|strict) carry the
// bare-word value in `text` instead.
struct SetStatement {
  std::string name;
  double value = 0.0;
  std::optional<std::string> text;

  friend bool operator==(const SetStatement&, const SetStatement&) = default;
};

// FLUSH [series]: synchronously flushes one series' memtable (or every
// series' when no name is given) to a new data file.
struct FlushStatement {
  std::optional<std::string> series;

  friend bool operator==(const FlushStatement&,
                         const FlushStatement&) = default;
};

// COMPACT [series]: synchronously compacts one series (or every series)
// into disjoint latest-only chunks.
struct CompactStatement {
  std::optional<std::string> series;

  friend bool operator==(const CompactStatement&,
                         const CompactStatement&) = default;
};

// INSERT INTO <series> VALUES (t, v)[, (t, v)]...: appends points to a
// series (creating it on first use). Timestamps must be integers; points in
// one statement are written in the order given.
struct InsertStatement {
  std::string series;
  std::vector<std::pair<Timestamp, double>> points;

  friend bool operator==(const InsertStatement&,
                         const InsertStatement&) = default;
};

// SHOW JOBS: lists the background maintenance scheduler's pending, running
// and recently finished jobs.
struct ShowJobsStatement {
  friend bool operator==(const ShowJobsStatement&,
                         const ShowJobsStatement&) = default;
};

// SHOW SERIES: lists every series with its partition/file/chunk counts and
// data interval, one row per series.
struct ShowSeriesStatement {
  friend bool operator==(const ShowSeriesStatement&,
                         const ShowSeriesStatement&) = default;
};

// SHOW QUERIES: newest-first history of recorded statements from the flight
// recorder (id, statement, millis, rows, degraded, chunks_loaded, ...).
struct ShowQueriesStatement {
  friend bool operator==(const ShowQueriesStatement&,
                         const ShowQueriesStatement&) = default;
};

// SHOW PROFILE [RESET]: the span trees merged across every trace the flight
// recorder has captured (sampled, slow, EXPLAIN ANALYZE, background jobs)
// since process start. RESET clears the accumulator after reporting.
struct ShowProfileStatement {
  bool reset = false;

  friend bool operator==(const ShowProfileStatement&,
                         const ShowProfileStatement&) = default;
};

// DUMP TRACE '<path>': writes the flight recorder's buffered events as
// Chrome trace-event JSON to `path` (loadable in Perfetto/chrome://tracing).
struct DumpTraceStatement {
  std::string path;

  friend bool operator==(const DumpTraceStatement&,
                         const DumpTraceStatement&) = default;
};

// SHOW REPLICATION: the node's replication role and progress (role, state,
// sequence numbers, lag, reconnect/divergence counters), one key,value row
// per field.
struct ShowReplicationStatement {
  friend bool operator==(const ShowReplicationStatement&,
                         const ShowReplicationStatement&) = default;
};

// Any parseable top-level statement.
using Statement =
    std::variant<SelectStatement, ShowMetricsStatement, SetStatement,
                 FlushStatement, CompactStatement, InsertStatement,
                 ShowJobsStatement, ShowSeriesStatement, ShowQueriesStatement,
                 ShowProfileStatement, DumpTraceStatement,
                 ShowReplicationStatement>;

// True when executing the statement mutates database state; the server uses
// this to decide whether a query needs the write lock. SET mutates database
// configuration, INSERT appends points, and FLUSH/COMPACT rewrite store
// state (the stores are internally thread-safe, but the coarse lock keeps
// the server's single-writer contract simple); everything else is read-only.
inline bool IsWriteStatement(const Statement& statement) {
  return std::holds_alternative<SetStatement>(statement) ||
         std::holds_alternative<InsertStatement>(statement) ||
         std::holds_alternative<FlushStatement>(statement) ||
         std::holds_alternative<CompactStatement>(statement);
}

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_AST_H_
