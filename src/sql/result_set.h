#ifndef TSVIZ_SQL_RESULT_SET_H_
#define TSVIZ_SQL_RESULT_SET_H_

#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace tsviz::sql {

// Tabular query output. Cells are null (monostate), integers (timestamps,
// counts), doubles (values/aggregates) or strings (EXPLAIN plans).
class ResultSet {
 public:
  using Cell = std::variant<std::monostate, int64_t, double, std::string>;

  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  // Appends a row; must match the column count.
  void AddRow(std::vector<Cell> cells);

  // Keeps only the first n rows.
  void Truncate(size_t n) {
    if (rows_.size() > n) rows_.resize(n);
  }

  // Aligned, human-readable table.
  std::string ToString(size_t max_rows = 1000) const;

  // RFC-4180-ish CSV (no quoting needed for numeric data).
  std::string ToCsv() const;

  static std::string CellToString(const Cell& cell);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_RESULT_SET_H_
