#include "sql/result_set.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace tsviz::sql {

void ResultSet::AddRow(std::vector<Cell> cells) {
  TSVIZ_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ResultSet::CellToString(const Cell& cell) {
  if (std::holds_alternative<std::monostate>(cell)) return "null";
  if (std::holds_alternative<int64_t>(cell)) {
    return std::to_string(std::get<int64_t>(cell));
  }
  if (std::holds_alternative<std::string>(cell)) {
    return std::get<std::string>(cell);
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", std::get<double>(cell));
  return buf;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> printable;
  printable.reserve(std::min(rows_.size(), max_rows));
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(CellToString(rows_[r][c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    printable.push_back(std::move(cells));
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  append_row(columns_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.append(widths[c], '-');
    out.append(2, ' ');
  }
  out += '\n';
  for (const auto& cells : printable) append_row(cells);
  if (rows_.size() > max_rows) {
    out += "... (" + std::to_string(rows_.size() - max_rows) +
           " more rows)\n";
  }
  return out;
}

std::string ResultSet::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += columns_[c];
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CellToString(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace tsviz::sql
