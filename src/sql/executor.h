#ifndef TSVIZ_SQL_EXECUTOR_H_
#define TSVIZ_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "db/database.h"
#include "m4/cache.h"
#include "sql/ast.h"
#include "sql/result_set.h"

namespace tsviz::sql {

// How a SELECT is executed: whether M4 results go through a result cache,
// and how many span blocks to submit to the executor pool. Statement-level
// entry points fill this in from the Database's runtime knobs.
struct ExecOptions {
  M4QueryCache* result_cache = nullptr;  // null: compute directly
  int parallelism = 1;                   // 1: serial M4-LSM
};

// Parses and executes one SELECT statement against a database.
//
// Execution strategy:
//  - raw column selection (`SELECT v FROM s ...`): the full merge path,
//    returning (time, value) rows;
//  - M4-family aggregations: the merge-free M4-LSM operator, one result row
//    per span with an implicit leading `span_start` column;
//  - COUNT/SUM/AVG: one merged scan, shared across all three;
//  - mixes of M4-family and scan aggregations run both paths and join on
//    the span index.
//
// WHERE defaults to the series' full data interval; GROUP BY SPANS defaults
// to a single span. Raw selection cannot be mixed with aggregations or
// GROUP BY.
Result<ResultSet> ExecuteQuery(Database* db, const std::string& statement,
                               QueryStats* stats = nullptr);

// Out-of-band facts about how a statement reached the executor, recorded
// alongside the execution itself. The network server reports how long the
// statement waited in the bounded request queue; when a trace is attached
// (sampled, slow, EXPLAIN ANALYZE) the wait shows up as a `net_queue_wait`
// span so queueing delay is visible next to execution phases.
struct RecordContext {
  double net_queue_wait_millis = -1.0;  // < 0: not from the network path
};

// Executes an already-parsed statement through the flight recorder: the
// statement text, wall millis, result rows and key QueryStats land in the
// recorder as a query event (visible in SHOW QUERIES / DUMP TRACE), the
// trace_sample_every and slow_query_millis knobs attach span trees to plain
// SELECTs, and over-threshold statements are WARN-logged. ExecuteQuery and
// the server route through here; call ExecuteStatement directly to bypass
// recording (benches, plumbing).
Result<ResultSet> ExecuteRecorded(Database* db, const Statement& statement,
                                  const std::string& text,
                                  QueryStats* stats = nullptr,
                                  const RecordContext& context = {});

// Executes a pipelined burst of statements and returns one result per line,
// in order. Runs of >= 2 consecutive single-point INSERTs into the same
// series are coalesced into one Database::WriteBatch — one store-lock
// acquisition and one physical WAL write for the whole run — while
// per-statement replies and flight-recorder events are preserved (a failed
// coalesced write reports the same error on each statement of its run).
// Every other line (parse errors, multi-row INSERTs, non-INSERTs, invalid
// series names) executes exactly as ExecuteQuery would. The net worker
// calls this for bursts its batch predicate selected; callers must handle
// any line mix.
std::vector<Result<ResultSet>> ExecuteInsertBatch(
    Database* db, const std::vector<std::string>& lines,
    const RecordContext& context = {});

// Executes an already-parsed top-level statement. SHOW METRICS renders the
// process metrics registry as Prometheus text, one exposition line per row;
// SHOW JOBS lists the background maintenance scheduler's jobs; FLUSH and
// COMPACT run the named (or every) series' maintenance synchronously;
// EXPLAIN ANALYZE SELECT executes the query under a trace and returns the
// phase breakdown plus the QueryStats counters instead of the result rows.
Result<ResultSet> ExecuteStatement(Database* db, const Statement& statement,
                                   QueryStats* stats = nullptr);

// Executes an already-parsed statement against one store snapshot (a
// TsStore argument converts implicitly, taking the current snapshot — the
// whole statement then sees one consistent state regardless of concurrent
// background maintenance). The default options run the serial uncached
// operator; the Database-level entry points pass the database's result
// cache and parallelism.
Result<ResultSet> ExecuteSelect(StoreView view,
                                const SelectStatement& statement,
                                QueryStats* stats = nullptr,
                                const ExecOptions& options = {});

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_EXECUTOR_H_
