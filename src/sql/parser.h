#ifndef TSVIZ_SQL_PARSER_H_
#define TSVIZ_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace tsviz::sql {

// Parses one SELECT statement of the dialect:
//
//   [EXPLAIN] SELECT select_item (',' select_item)*
//   FROM series_name
//   [WHERE time_cond (AND time_cond)*]
//   [GROUP BY SPANS '(' integer ')']
//   [LIMIT integer]
//
//   select_item := func '(' [ident | '*'] ')' | ident
//   func        := M4 | FIRST_TIME | FIRST_VALUE | LAST_TIME | LAST_VALUE
//               | BOTTOM_TIME | BOTTOM_VALUE | TOP_TIME | TOP_VALUE
//               | MIN_VALUE | MAX_VALUE | MIN | MAX | COUNT | SUM | AVG
//   time_cond   := TIME op number | number op TIME
//                | VALUE op number | number op VALUE   (raw selects only)
//   op          := '<' | '<=' | '>' | '>=' | '='
//
// Keywords are case-insensitive; `COLUMNS` is accepted as a synonym for
// SPANS (pixel columns). Bare identifiers select raw merged points.
//
// `EXPLAIN ANALYZE SELECT ...` executes the query with tracing enabled and
// returns the phase breakdown instead of the result rows.
Result<SelectStatement> ParseSelect(const std::string& statement);

// Parses any top-level statement: SELECT variants (as above) or
// `SHOW METRICS`.
Result<Statement> ParseStatement(const std::string& statement);

}  // namespace tsviz::sql

#endif  // TSVIZ_SQL_PARSER_H_
