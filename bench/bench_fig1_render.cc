// Figure 1 reproduction: renders each dataset's two-color line chart at
// 1000x500 from the M4-LSM representation points and writes the PGM images
// to bench_results/, plus a 3-pixel-column zoom like Figure 1(b). Prints
// the data-reduction factors alongside.

#include <cstdio>
#include <filesystem>

#include "harness.h"
#include "m4/m4_lsm.h"
#include "read/series_reader.h"
#include "viz/pixel_diff.h"
#include "viz/rasterize.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  const int width = 1000;
  const int height = 500;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);

  ResultTable table({"dataset", "points", "m4_points", "reduction",
                     "lit_pixels", "pixel_diff", "chart"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const TimeRange range = built->data_range;
    M4Query query{range.start, range.end + 1, width};
    auto rows = RunM4Lsm(*built->store, query, nullptr);
    if (!rows.ok()) return 1;
    auto merged = ReadMergedSeries(*built->store, range, nullptr);
    if (!merged.ok()) return 1;

    std::vector<Point> polyline = M4Polyline(*rows);
    CanvasSpec canvas = FitCanvas(*merged, query, width, height);
    Bitmap chart = RasterizeM4(*rows, canvas);
    Bitmap truth = RasterizeSeries(*merged, canvas);

    std::string path =
        "bench_results/fig1_" + DatasetName(kind) + ".pgm";
    if (Status s = chart.WritePgm(path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // Figure 1(b): a 3-column zoom from the middle of the chart, blown up
    // to 300x500 by rendering those three spans at higher resolution.
    int64_t mid = width / 2;
    M4Query zoom_query{0, 0, 3};
    SpanSet spans(query);
    zoom_query.tqs = spans.SpanStart(mid);
    zoom_query.tqe = spans.SpanStart(mid + 3);
    if (zoom_query.tqe > zoom_query.tqs) {
      auto zoom_rows = RunM4Lsm(*built->store, zoom_query, nullptr);
      if (zoom_rows.ok()) {
        CanvasSpec zoom_canvas =
            FitCanvas(*merged, zoom_query, 3, height);
        Bitmap zoom = RasterizeM4(*zoom_rows, zoom_canvas);
        (void)zoom.WritePgm("bench_results/fig1_" + DatasetName(kind) +
                            "_zoom3.pgm");
      }
    }

    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.0fx",
                  static_cast<double>(merged->size()) /
                      static_cast<double>(polyline.size()));
    table.AddRow({DatasetName(kind), FormatCount(merged->size()),
                  FormatCount(polyline.size()), reduction,
                  FormatCount(chart.CountSet()),
                  FormatCount(PixelDiff(truth, chart)), path});
  }
  std::printf(
      "Figure 1: two-color line charts from M4 representation points "
      "(%dx%d, scale=%.3f)\n\n",
      width, height, scale);
  table.Print();
  if (Status s = table.WriteCsv("fig1_render"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
