// Figure 11: M4 query latency vs query time range length.
//
// Paper shape: M4-UDF grows steeply with the range (more chunks to load and
// merge); M4-LSM grows far more slowly because the longer the range, the
// smaller the fraction of chunks split by span boundaries — most chunks are
// pruned via metadata.

#include <cstdio>
#include <vector>

#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  // Query range as a fraction of the full series range; w fixed at 1000.
  const std::vector<int> divisors = {16, 8, 4, 2, 1};

  ResultTable table({"dataset", "range_frac", "udf_ms", "lsm_ms", "speedup",
                     "udf_chunks", "lsm_chunks", "udf_mb", "lsm_mb"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    spec.overlap_fraction = 0.1;
    spec.delete_fraction = 0.1;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const TimeRange full = built->data_range;
    const int64_t full_len = full.end - full.start + 1;
    for (int divisor : divisors) {
      M4Query query{full.start, full.start + full_len / divisor, 1000};
      auto comparison = CompareOperators(*built->store, query);
      if (!comparison.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     comparison.status().ToString().c_str());
        return 1;
      }
      const Measurement& udf = comparison->udf;
      const Measurement& lsm = comparison->lsm;
      char frac[16];
      std::snprintf(frac, sizeof(frac), "1/%d", divisor);
      char udf_mb[32];
      char lsm_mb[32];
      std::snprintf(udf_mb, sizeof(udf_mb), "%.2f",
                    static_cast<double>(udf.stats.bytes_read) / (1 << 20));
      std::snprintf(lsm_mb, sizeof(lsm_mb), "%.2f",
                    static_cast<double>(lsm.stats.bytes_read) / (1 << 20));
      table.AddRow({DatasetName(kind), frac, FormatMillis(udf.millis),
                    FormatMillis(lsm.millis),
                    FormatMillis(udf.millis / std::max(lsm.millis, 1e-3)),
                    FormatCount(udf.stats.chunks_loaded),
                    FormatCount(lsm.stats.chunks_loaded), udf_mb, lsm_mb});
    }
  }
  std::printf(
      "Figure 11: varying query time range length (w=1000, scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("fig11_vary_range"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
