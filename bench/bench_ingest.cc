// Sustained-write benchmark: foreground vs background flushing.
//
// Foreground mode flushes inline — Write() that fills the memtable pays the
// whole encode+fsync path before returning, so ingest latency is bimodal:
// sub-microsecond appends punctuated by multi-millisecond flush stalls at
// every threshold crossing. Background mode gives the store an effectively
// unbounded inline threshold and lets the maintenance policy flush from the
// scheduler's worker at the same cadence; the writer only ever pays the WAL
// append plus a brief mutex handoff, which is exactly the p99 story the
// background subsystem exists to buy.
//
// Load is open-loop: the writer is paced to kTargetPointsPerSec in both
// modes so the comparison is at identical offered throughput, and latency
// is sampled per kBatchPoints-write batch rather than per point —
// individual appends are ~0.3us and a flush happens once per kFlushPoints
// writes, so a per-point p99 would sit entirely below the stall frequency
// and measure clock jitter. At kBatchPoints per sample, one in
// kFlushPoints/kBatchPoints foreground batches contains an inline flush,
// which puts the stall squarely inside the p99; the paced background
// writer instead leaves idle gaps the scheduler's flush can absorb.
//
// Emits BENCH_ingest.json with batch p50/p99 and throughput per mode.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "harness.h"

namespace tsviz::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Flush cadence shared by both modes, in points: foreground crosses the
// memtable threshold at this count; background triggers the policy at the
// equivalent approximate byte footprint.
constexpr size_t kFlushPoints = 4096;

// Writes per latency sample; 1/16th of the flush cadence.
constexpr size_t kBatchPoints = 256;

// Offered load, identical in both modes (one batch every ~512us).
constexpr double kTargetPointsPerSec = 500000.0;

struct IngestRun {
  std::string mode;
  size_t points = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double throughput_mpts = 0;  // million points per second
  size_t files = 0;
  size_t flushed_points = 0;
};

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_us.size()));
  idx = std::min(idx, sorted_us.size() - 1);
  return sorted_us[idx];
}

Result<IngestRun> RunMode(bool background, size_t n) {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "tsviz_bench_ingest_XXXXXX")
          .string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("mkdtemp failed");
  }
  std::string dir = buf.data();

  IngestRun run;
  run.mode = background ? "background" : "foreground";
  run.points = (n / kBatchPoints) * kBatchPoints;
  {
    DatabaseConfig config;
    config.root_dir = dir;
    config.series_defaults.points_per_chunk = 1024;
    config.series_defaults.memtable_flush_threshold =
        background ? (1u << 30) : kFlushPoints;
    config.maintenance.enabled = background;
    config.maintenance.tick_interval = std::chrono::milliseconds(1);
    config.maintenance.memtable_flush_bytes = kFlushPoints * 48;
    config.maintenance.compaction_files = 0;  // isolate the flush path
    TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           Database::Open(config));
    if (background) db->StartMaintenance();

    std::vector<double> micros(n / kBatchPoints);
    const auto batch_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(static_cast<double>(kBatchPoints) /
                                      kTargetPointsPerSec));
    const auto begin = Clock::now();
    for (size_t b = 0; b < micros.size(); ++b) {
      // Open-loop pacing: each batch has a fixed deadline, so a slow batch
      // does not slow down the offered load behind it.
      std::this_thread::sleep_until(begin + batch_period * b);
      const auto t0 = Clock::now();
      for (size_t i = b * kBatchPoints; i < (b + 1) * kBatchPoints; ++i) {
        Status s = db->Write("ingest", static_cast<Timestamp>(i),
                             static_cast<Value>(i % 997));
        if (!s.ok()) return s;
      }
      micros[b] = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                      .count();
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (background) db->StopMaintenance();

    std::sort(micros.begin(), micros.end());
    run.p50_us = Percentile(micros, 0.50);
    run.p99_us = Percentile(micros, 0.99);
    run.max_us = micros.back();
    run.throughput_mpts = static_cast<double>(run.points) / seconds / 1e6;
    TSVIZ_ASSIGN_OR_RETURN(TsStore * store, db->GetSeries("ingest"));
    run.files = store->NumFiles();
    run.flushed_points = store->TotalStoredPoints();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return run;
}

std::string Fmt(double v) {
  char out[32];
  std::snprintf(out, sizeof(out), "%.2f", v);
  return out;
}

int Run() {
  const double scale = ScaleFromEnv();
  const size_t n = std::max<size_t>(
      50000, static_cast<size_t>(2e6 * scale));

  ResultTable table({"mode", "points", "batch_p50_us", "batch_p99_us",
                     "batch_max_us", "mpts_per_sec", "files"});
  std::vector<IngestRun> runs;
  for (bool background : {false, true}) {
    auto run = RunMode(background, n);
    if (!run.ok()) {
      std::fprintf(stderr, "ingest %s failed: %s\n",
                   background ? "background" : "foreground",
                   run.status().ToString().c_str());
      return 1;
    }
    table.AddRow({run->mode, FormatCount(run->points), Fmt(run->p50_us),
                  Fmt(run->p99_us), Fmt(run->max_us),
                  Fmt(run->throughput_mpts), FormatCount(run->files)});
    runs.push_back(*std::move(run));
  }

  std::printf(
      "Sustained ingest: foreground vs background flush "
      "(flush every %zu points, latency per %zu-point batch, scale=%.3f)\n\n",
      kFlushPoints, kBatchPoints, scale);
  table.Print();
  if (Status s = table.WriteCsv("ingest"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }

  const IngestRun& fg = runs[0];
  const IngestRun& bg = runs[1];
  std::printf("\nbackground p99 %.2fus vs foreground p99 %.2fus (%.1fx)\n",
              bg.p99_us, fg.p99_us, fg.p99_us / std::max(bg.p99_us, 1e-3));

  std::ofstream json("BENCH_ingest.json");
  if (!json.good()) {
    std::fprintf(stderr, "cannot open BENCH_ingest.json\n");
    return 1;
  }
  json << "{\n"
       << "  \"name\": \"ingest\",\n"
       << "  \"flush_every_points\": " << kFlushPoints << ",\n"
       << "  \"latency_sample_points\": " << kBatchPoints << ",\n"
       << "  \"modes\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const IngestRun& run = runs[i];
    if (i > 0) json << ",";
    json << "\n    {\"mode\": \"" << run.mode << "\""
         << ", \"points\": " << run.points
         << ", \"write_batch_p50_us\": " << Fmt(run.p50_us)
         << ", \"write_batch_p99_us\": " << Fmt(run.p99_us)
         << ", \"write_batch_max_us\": " << Fmt(run.max_us)
         << ", \"throughput_mpts_per_sec\": " << Fmt(run.throughput_mpts)
         << ", \"data_files\": " << run.files
         << ", \"flushed_points\": " << run.flushed_points << "}";
  }
  json << "\n  ],\n"
       << "  \"background_p99_speedup\": "
       << Fmt(fg.p99_us / std::max(bg.p99_us, 1e-3)) << ",\n"
       << "  \"background_p99_lower\": "
       << (bg.p99_us < fg.p99_us ? "true" : "false") << ",\n"
       << "  \"background_throughput_at_least_foreground\": "
       << (bg.throughput_mpts >= fg.throughput_mpts ? "true" : "false")
       << "\n}\n";
  if (!json.good()) {
    std::fprintf(stderr, "short write to BENCH_ingest.json\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
