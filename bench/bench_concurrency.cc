// Concurrency: SQL-over-TCP latency/throughput vs client count, comparing
// the epoll event-loop server against the thread-per-connection baseline.
//
// Each cell spawns N blocking line-protocol clients that hammer one shared
// server for a fixed wall budget. Three workloads: pure M4 reads (hit the
// immutable chunk snapshot concurrently), pure INSERT ingest (serialized on
// the server's single-writer lock), and an alternating mix. Per-statement
// latencies are kept exactly and sorted for p50/p99; throughput is total
// completed statements over the cell's wall time.
//
// Besides bench_results/concurrency.{csv,json} this writes a
// BENCH_concurrency.json summary into the working directory with the
// headline ratio: event-loop over thread-per-connection throughput on the
// mixed workload at the highest client count.
//
// A second axis (`--series N`, default 64) measures the sharded series
// catalog: a mixed ingest+M4 workload spread round-robin over N series,
// run against a 1-shard and a 16-shard database. Each cell records
// throughput plus the `catalog_lock_wait_millis` delta (count = catalog
// acquisitions, sum = pure contention wait) into the JSON's
// "multi_series" section — on a single-core host the throughput gap
// collapses, but the lock-wait column still shows what sharding removes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "db/database.h"
#include "harness.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace tsviz::bench {
namespace {

constexpr int kClientCounts[] = {1, 4, 16, 64, 256};
constexpr double kCellMillis = 250.0;  // wall budget per (mode, load, N)

// Blocking line-protocol client. Replies end with a blank line; pipelined
// replies may share one recv, so leftover bytes stay buffered.
class Client {
 public:
  explicit Client(int port) {
    // The server is up before any client starts, but with hundreds of
    // simultaneous connects the accept queue can transiently refuse; retry.
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) break;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(port));
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& line) {
    std::string data = line + "\n";
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Returns the reply payload without the blank-line terminator, or an
  // empty string on EOF/error.
  std::string ReadReply() {
    char chunk[4096];
    size_t end;
    while ((end = buffer_.find("\n\n")) == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string reply = buffer_.substr(0, end + 1);
    buffer_.erase(0, end + 2);
    return reply;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

enum class Workload { kM4, kIngest, kMixed };

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kM4: return "m4";
    case Workload::kIngest: return "ingest";
    case Workload::kMixed: return "mixed";
  }
  return "?";
}

const char* ModeName(ServerMode m) {
  return m == ServerMode::kEventLoop ? "event_loop" : "thread_per_conn";
}

struct CellResult {
  std::string mode;
  std::string workload;
  int clients = 0;
  uint64_t statements = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double stmts_per_sec = 0.0;
};

// One client thread's tally.
struct ClientTally {
  std::vector<double> latencies_ms;
  uint64_t errors = 0;
  bool connect_failed = false;
};

// Timestamps for INSERT statements: globally unique and increasing so the
// shared ingest series never sees duplicate keys. Starts past the seeded
// read data so ingest never perturbs the M4 ranges.
std::atomic<int64_t> g_ingest_ts{10'000'000};

void RunClient(int port, Workload load, double deadline_budget_ms,
               const std::string& m4_query, ClientTally* tally) {
  Client client(port);
  if (!client.connected()) {
    tally->connect_failed = true;
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(deadline_budget_ms * 1000));
  uint64_t iter = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    bool do_insert = load == Workload::kIngest ||
                     (load == Workload::kMixed && (iter & 1) == 1);
    std::string stmt;
    if (do_insert) {
      int64_t ts = g_ingest_ts.fetch_add(1, std::memory_order_relaxed);
      stmt = "INSERT INTO ingest VALUES (" + std::to_string(ts) + ", 1.0)";
    } else {
      stmt = m4_query;
    }
    const auto start = std::chrono::steady_clock::now();
    if (!client.Send(stmt)) break;
    std::string reply = client.ReadReply();
    const auto stop = std::chrono::steady_clock::now();
    if (reply.empty()) break;  // connection dropped
    if (reply.rfind("ERROR:", 0) == 0) ++tally->errors;
    tally->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    ++iter;
  }
}

// One multi-series catalog cell: N clients spraying mixed ingest+M4 over
// `num_series` series against a database with `shards` catalog shards.
struct MultiSeriesCell {
  size_t shards = 0;
  int clients = 0;
  uint64_t statements = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double stmts_per_sec = 0.0;
  uint64_t lock_wait_count = 0;  // catalog lock acquisitions in the cell
  double lock_wait_sum_ms = 0.0;  // contention wait accumulated in the cell
};

void RunMultiSeriesClient(int port, int client_id, int num_series,
                          int64_t span_end, double deadline_budget_ms,
                          ClientTally* tally) {
  Client client(port);
  if (!client.connected()) {
    tally->connect_failed = true;
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(deadline_budget_ms * 1000));
  uint64_t iter = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const int series =
        static_cast<int>((iter + static_cast<uint64_t>(client_id)) %
                         static_cast<uint64_t>(num_series));
    std::string stmt;
    if ((iter & 1) == 1) {
      int64_t ts = g_ingest_ts.fetch_add(1, std::memory_order_relaxed);
      stmt = "INSERT INTO m" + std::to_string(series) + " VALUES (" +
             std::to_string(ts) + ", 1.0)";
    } else {
      stmt = "SELECT M4(v) FROM m" + std::to_string(series) +
             " WHERE time >= 0 AND time < " + std::to_string(span_end) +
             " GROUP BY SPANS(20)";
    }
    const auto start = std::chrono::steady_clock::now();
    if (!client.Send(stmt)) break;
    std::string reply = client.ReadReply();
    const auto stop = std::chrono::steady_clock::now();
    if (reply.empty()) break;
    if (reply.rfind("ERROR:", 0) == 0) ++tally->errors;
    tally->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    ++iter;
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

std::string FormatRate(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", r);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", r);
  return buf;
}

int Run(int num_series) {
  const double scale = ScaleFromEnv();
  // 20k seeded points at the default 0.05 scale; TSVIZ_SCALE=1 reproduces a
  // 400k-point read target.
  const size_t points = static_cast<size_t>(
      20000.0 * std::max(scale / 0.05, 1.0));

  namespace fs = std::filesystem;
  std::string dir_template =
      (fs::temp_directory_path() / "tsviz_bench_conc_XXXXXX").string();
  std::vector<char> buf(dir_template.begin(), dir_template.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string root(buf.data());

  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 200;
  config.series_defaults.memtable_flush_threshold = 4096;
  auto opened = Database::Open(config);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();
  for (size_t i = 0; i < points; ++i) {
    TSVIZ_CHECK(db->Write("s1", static_cast<int64_t>(i) * 10,
                          static_cast<double>(i % 997))
                    .ok());
  }
  TSVIZ_CHECK(db->FlushAll().ok());

  // ~100 points per span keeps each query decode-bound but short enough
  // that a 250 ms cell completes many of them.
  const int64_t range_end = static_cast<int64_t>(points) * 10;
  const int64_t w = std::clamp<int64_t>(static_cast<int64_t>(points) / 100,
                                        50, 2000);
  const std::string m4_query =
      "SELECT M4(v) FROM s1 WHERE time >= 0 AND time < " +
      std::to_string(range_end) + " GROUP BY SPANS(" + std::to_string(w) +
      ")";

  ResultTable table({"mode", "workload", "clients", "stmts", "errors",
                     "p50_ms", "p99_ms", "stmts_per_sec"});
  std::vector<CellResult> cells;

  for (ServerMode mode : {ServerMode::kEventLoop,
                          ServerMode::kThreadPerConn}) {
    SqlServer server(db.get(), mode);
    if (Status s = server.Start(0); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (Workload load : {Workload::kM4, Workload::kIngest,
                          Workload::kMixed}) {
      for (int clients : kClientCounts) {
        std::vector<ClientTally> tallies(static_cast<size_t>(clients));
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(clients));
        const auto wall_start = std::chrono::steady_clock::now();
        for (int c = 0; c < clients; ++c) {
          threads.emplace_back(RunClient, server.port(), load, kCellMillis,
                               std::cref(m4_query),
                               &tallies[static_cast<size_t>(c)]);
        }
        for (std::thread& t : threads) t.join();
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count();

        CellResult cell;
        cell.mode = ModeName(mode);
        cell.workload = WorkloadName(load);
        cell.clients = clients;
        std::vector<double> all;
        for (const ClientTally& t : tallies) {
          if (t.connect_failed) ++cell.errors;
          cell.errors += t.errors;
          all.insert(all.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
        }
        std::sort(all.begin(), all.end());
        cell.statements = all.size();
        cell.p50_ms = Percentile(all, 0.50);
        cell.p99_ms = Percentile(all, 0.99);
        cell.stmts_per_sec =
            wall_ms > 0.0 ? static_cast<double>(all.size()) * 1000.0 /
                                wall_ms
                          : 0.0;
        table.AddRow({cell.mode, cell.workload, std::to_string(clients),
                      std::to_string(cell.statements),
                      std::to_string(cell.errors),
                      FormatMillis(cell.p50_ms), FormatMillis(cell.p99_ms),
                      FormatRate(cell.stmts_per_sec)});
        cells.push_back(cell);
      }
    }
    server.Stop();
  }

  db.reset();
  std::error_code ec;
  fs::remove_all(root, ec);

  // --- Multi-series catalog axis: 1 shard vs 16 shards -------------------
  constexpr int kMultiSeriesClients = 16;
  constexpr int kSeedPointsPerSeries = 400;
  const int64_t span_end = kSeedPointsPerSeries * 10;
  std::vector<MultiSeriesCell> multi_cells;
  obs::Histogram& lock_wait = obs::GetHistogram("catalog_lock_wait_millis");
  for (size_t shards : {size_t{1}, size_t{16}}) {
    std::string multi_template =
        (fs::temp_directory_path() / "tsviz_bench_conc_ms_XXXXXX").string();
    std::vector<char> mbuf(multi_template.begin(), multi_template.end());
    mbuf.push_back('\0');
    if (::mkdtemp(mbuf.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    const std::string multi_root(mbuf.data());
    DatabaseConfig multi_config;
    multi_config.root_dir = multi_root;
    multi_config.series_defaults.points_per_chunk = 200;
    multi_config.series_defaults.memtable_flush_threshold = 4096;
    multi_config.catalog_shards = shards;
    auto multi_opened = Database::Open(multi_config);
    if (!multi_opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   multi_opened.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Database> multi_db = std::move(multi_opened).value();
    for (int s = 0; s < num_series; ++s) {
      const std::string name = "m" + std::to_string(s);
      for (int i = 0; i < kSeedPointsPerSeries; ++i) {
        TSVIZ_CHECK(multi_db->Write(name, static_cast<int64_t>(i) * 10,
                                    static_cast<double>(i % 97))
                        .ok());
      }
    }
    TSVIZ_CHECK(multi_db->FlushAll().ok());

    SqlServer server(multi_db.get(), ServerMode::kEventLoop);
    if (Status s = server.Start(0); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const uint64_t wait_count_before = lock_wait.count();
    const double wait_sum_before = lock_wait.sum();
    std::vector<ClientTally> tallies(kMultiSeriesClients);
    std::vector<std::thread> threads;
    threads.reserve(kMultiSeriesClients);
    const auto wall_start = std::chrono::steady_clock::now();
    for (int c = 0; c < kMultiSeriesClients; ++c) {
      threads.emplace_back(RunMultiSeriesClient, server.port(), c, num_series,
                           span_end, kCellMillis * 2,
                           &tallies[static_cast<size_t>(c)]);
    }
    for (std::thread& t : threads) t.join();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
    server.Stop();

    MultiSeriesCell cell;
    cell.shards = shards;
    cell.clients = kMultiSeriesClients;
    cell.lock_wait_count = lock_wait.count() - wait_count_before;
    cell.lock_wait_sum_ms = lock_wait.sum() - wait_sum_before;
    std::vector<double> all;
    for (const ClientTally& t : tallies) {
      if (t.connect_failed) ++cell.errors;
      cell.errors += t.errors;
      all.insert(all.end(), t.latencies_ms.begin(), t.latencies_ms.end());
    }
    std::sort(all.begin(), all.end());
    cell.statements = all.size();
    cell.p50_ms = Percentile(all, 0.50);
    cell.p99_ms = Percentile(all, 0.99);
    cell.stmts_per_sec =
        wall_ms > 0.0
            ? static_cast<double>(all.size()) * 1000.0 / wall_ms
            : 0.0;
    multi_cells.push_back(cell);

    multi_db.reset();
    std::error_code mec;
    fs::remove_all(multi_root, mec);
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Concurrency: SQL-over-TCP, mode x workload x clients "
      "(points=%zu w=%lld cell=%.0fms cores=%u)\n\n",
      points, static_cast<long long>(w), kCellMillis, cores);
  table.Print();
  if (Status s = table.WriteCsv("concurrency"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }

  // Headline: event-loop over baseline throughput, mixed workload, most
  // clients.
  const int max_clients = kClientCounts[std::size(kClientCounts) - 1];
  double ev_mixed = 0.0, tpc_mixed = 0.0;
  uint64_t total_errors = 0;
  for (const CellResult& c : cells) {
    total_errors += c.errors;
    if (c.workload == "mixed" && c.clients == max_clients) {
      if (c.mode == "event_loop") ev_mixed = c.stmts_per_sec;
      if (c.mode == "thread_per_conn") tpc_mixed = c.stmts_per_sec;
    }
  }
  const double ratio = ev_mixed / std::max(tpc_mixed, 1e-3);
  std::printf("\nevent-loop / thread-per-conn throughput "
              "(mixed, %d clients): %.2fx\n",
              max_clients, ratio);
  std::printf("total in-band errors: %llu\n",
              static_cast<unsigned long long>(total_errors));

  std::printf("\nMulti-series catalog axis (%d series, %d clients, "
              "mixed ingest+M4):\n",
              num_series, multi_cells.empty() ? 0 : multi_cells[0].clients);
  ResultTable multi_table({"shards", "stmts", "errors", "p50_ms", "p99_ms",
                           "stmts_per_sec", "lock_acqs", "lock_wait_ms"});
  for (const MultiSeriesCell& c : multi_cells) {
    multi_table.AddRow({std::to_string(c.shards),
                        std::to_string(c.statements),
                        std::to_string(c.errors), FormatMillis(c.p50_ms),
                        FormatMillis(c.p99_ms), FormatRate(c.stmts_per_sec),
                        std::to_string(c.lock_wait_count),
                        FormatMillis(c.lock_wait_sum_ms)});
  }
  multi_table.Print();

  std::ofstream json("BENCH_concurrency.json");
  if (!json.good()) {
    std::fprintf(stderr, "cannot open BENCH_concurrency.json\n");
    return 1;
  }
  json << "{\n"
       << "  \"name\": \"concurrency\",\n"
       << "  \"cpu_cores\": " << cores << ",\n"
       << "  \"workload\": {\"points\": " << points << ", \"w\": " << w
       << ", \"cell_millis\": " << FormatRatio(kCellMillis) << "},\n"
       << "  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    if (i > 0) json << ",";
    json << "\n    {\"mode\": \"" << c.mode << "\", \"workload\": \""
         << c.workload << "\", \"clients\": " << c.clients
         << ", \"statements\": " << c.statements
         << ", \"errors\": " << c.errors
         << ", \"p50_ms\": " << FormatMillis(c.p50_ms)
         << ", \"p99_ms\": " << FormatMillis(c.p99_ms)
         << ", \"stmts_per_sec\": " << FormatRate(c.stmts_per_sec) << "}";
  }
  json << "\n  ],\n"
       << "  \"multi_series\": {\"series\": " << num_series
       << ", \"cells\": [";
  for (size_t i = 0; i < multi_cells.size(); ++i) {
    const MultiSeriesCell& c = multi_cells[i];
    if (i > 0) json << ",";
    json << "\n    {\"catalog_shards\": " << c.shards
         << ", \"clients\": " << c.clients
         << ", \"statements\": " << c.statements
         << ", \"errors\": " << c.errors
         << ", \"p50_ms\": " << FormatMillis(c.p50_ms)
         << ", \"p99_ms\": " << FormatMillis(c.p99_ms)
         << ", \"stmts_per_sec\": " << FormatRate(c.stmts_per_sec)
         << ", \"catalog_lock_acquisitions\": " << c.lock_wait_count
         << ", \"catalog_lock_wait_ms\": " << FormatMillis(c.lock_wait_sum_ms)
         << "}";
  }
  json << "\n  ]},\n"
       << "  \"event_loop_over_thread_per_conn_mixed_" << max_clients
       << "_clients\": " << FormatRatio(ratio) << ",\n"
       << "  \"total_errors\": " << total_errors << "\n}\n";
  if (!json.good()) {
    std::fprintf(stderr, "short write to BENCH_concurrency.json\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main(int argc, char** argv) {
  int num_series = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      num_series = std::atoi(argv[++i]);
      if (num_series < 1) num_series = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--series N]\n", argv[0]);
      return 2;
    }
  }
  return tsviz::bench::Run(num_series);
}
