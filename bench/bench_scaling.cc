// Scaling: pooled M4-LSM latency vs executor threads, cold vs warm cache.
//
// Workload is Figure 10's messy store (10% out-of-order arrivals, 10%
// deletes) at a span count high enough that most chunks are split by span
// boundaries — the decode-heavy regime where the shared page cache and the
// pooled operator matter. "Cold" clears the process-wide page cache before
// every run; "warm" primes it once and then reuses the decoded pages.
//
// Besides the usual bench_results/scaling.{csv,json} pair this bench writes
// a BENCH_scaling.json summary into the working directory with the headline
// ratios: warm-over-cold and pooled-4-threads-over-1-thread.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <thread>

#include "common/logging.h"
#include "harness.h"
#include "m4/cache.h"
#include "m4/m4_lsm.h"
#include "m4/parallel.h"
#include "storage/page_cache.h"

namespace tsviz::bench {
namespace {

constexpr int kReps = 5;

bool BitIdentical(const M4Result& a, const M4Result& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].has_data != b[i].has_data) return false;
    if (!a[i].has_data) continue;
    if (!(a[i].first == b[i].first && a[i].last == b[i].last &&
          a[i].bottom == b[i].bottom && a[i].top == b[i].top)) {
      return false;
    }
  }
  return true;
}

struct ThreadRun {
  int threads = 0;
  Measurement cold;     // page + result cache cleared before every run
  Measurement warm;     // page cache primed, result cache bypassed
  Measurement repeat;   // identical repeated query via M4QueryCache
  bool identical = false;
};

// Median-latency run of `reps` pooled executions. Unlike TimeQuery this
// leaves the page cache alone between reps; the caller decides cold/warm.
Measurement TimePooled(const TsStore& store, const M4Query& query,
                       int threads, bool clear_each_rep) {
  std::vector<Measurement> runs;
  runs.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    if (clear_each_rep) SharedPageCache::Instance().Clear();
    Measurement m;
    Timer timer;
    Result<M4Result> result =
        RunM4LsmParallel(store, query, threads, &m.stats);
    m.millis = timer.ElapsedMillis();
    TSVIZ_CHECK(result.ok());
    runs.push_back(m);
  }
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.millis < b.millis;
            });
  return runs[runs.size() / 2];
}

// Median latency of `kReps` repeated identical queries served through the
// result cache (primed by the caller), i.e. what a dashboard refresh costs.
Measurement TimeRepeated(M4QueryCache& cache, const TsStore& store,
                         const M4Query& query, int threads) {
  std::vector<Measurement> runs;
  runs.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Measurement m;
    Timer timer;
    Result<M4Result> result =
        cache.GetOrCompute(store, query, &m.stats, {}, threads);
    m.millis = timer.ElapsedMillis();
    TSVIZ_CHECK(result.ok());
    runs.push_back(m);
  }
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.millis < b.millis;
            });
  return runs[runs.size() / 2];
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", r);
  return buf;
}

std::string FormatMicros(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

int Run() {
  const double scale = ScaleFromEnv();
  const DatasetKind kind = DatasetKind::kKob;
  const size_t points = ScaledPoints(kind, scale);

  StorageSpec spec;
  spec.overlap_fraction = 0.1;
  spec.delete_fraction = 0.1;
  auto built = BuildDatasetStore(kind, scale, spec);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const TimeRange range = built->data_range;
  // ~100 points per span: narrower than a 200-point chunk, so every chunk
  // straddles a span boundary and must be touched (and decoded), while the
  // per-span solve work stays small enough that decode dominates cold runs.
  const int64_t w = std::clamp<int64_t>(
      static_cast<int64_t>(points) / 100, 500, 2000);
  const M4Query query{range.start, range.end + 1, w};

  SharedPageCache::Instance().Clear();
  auto serial = RunM4Lsm(*built->store, query, nullptr);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial run failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }

  ResultTable table({"threads", "cold_ms", "warm_ms", "repeat_ms",
                     "cold_pages", "warm_pages", "identical"});
  std::vector<ThreadRun> runs;
  for (int threads : {1, 2, 4, 8}) {
    ThreadRun run;
    run.threads = threads;

    run.cold = TimePooled(*built->store, query, threads,
                          /*clear_each_rep=*/true);

    SharedPageCache::Instance().Clear();
    auto primed = RunM4LsmParallel(*built->store, query, threads, nullptr);
    TSVIZ_CHECK(primed.ok());
    run.identical = BitIdentical(serial.value(), primed.value());
    run.warm = TimePooled(*built->store, query, threads,
                          /*clear_each_rep=*/false);

    M4QueryCache result_cache(8);
    auto cached = result_cache.GetOrCompute(*built->store, query, nullptr,
                                            {}, threads);  // prime
    TSVIZ_CHECK(cached.ok());
    run.repeat = TimeRepeated(result_cache, *built->store, query, threads);

    table.AddRow({std::to_string(threads), FormatMillis(run.cold.millis),
                  FormatMillis(run.warm.millis),
                  FormatMicros(run.repeat.millis),
                  FormatCount(run.cold.stats.pages_decoded),
                  FormatCount(run.warm.stats.pages_decoded),
                  run.identical ? "yes" : "NO"});
    runs.push_back(run);
  }

  std::printf(
      "Scaling: pooled M4-LSM, threads x {cold,warm} "
      "(dataset=KOB points=%zu w=%lld scale=%.3f)\n\n",
      points, static_cast<long long>(w), scale);
  table.Print();
  if (Status s = table.WriteCsv("scaling"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }

  const ThreadRun& t1 = runs[0];
  const ThreadRun& t4 = runs[2];
  // "Warm repeated query" is the wired query path's answer: the M4 result
  // cache (backed by the page cache underneath) serves the repeat.
  const double warm_speedup =
      t1.cold.millis / std::max(t1.repeat.millis, 1e-4);
  const double page_warm_speedup =
      t1.cold.millis / std::max(t1.warm.millis, 1e-3);
  const double pooled_speedup =
      t1.cold.millis / std::max(t4.cold.millis, 1e-3);
  const unsigned cores = std::thread::hardware_concurrency();
  bool all_identical = true;
  for (const ThreadRun& run : runs) all_identical &= run.identical;

  std::printf("warm repeated query speedup (1 thread):  %.2fx\n",
              warm_speedup);
  std::printf("page-cache-only warm speedup (1 thread): %.2fx\n",
              page_warm_speedup);
  std::printf("pooled speedup (4 threads, cold, %u core%s): %.2fx\n", cores,
              cores == 1 ? "" : "s", pooled_speedup);
  std::printf("bit-identical to serial:                 %s\n",
              all_identical ? "yes" : "NO");

  std::ofstream json("BENCH_scaling.json");
  if (!json.good()) {
    std::fprintf(stderr, "cannot open BENCH_scaling.json\n");
    return 1;
  }
  json << "{\n"
       << "  \"name\": \"scaling\",\n"
       << "  \"cpu_cores\": " << cores << ",\n"
       << "  \"workload\": {\"dataset\": \"KOB\", \"points\": " << points
       << ", \"w\": " << w
       << ", \"overlap_fraction\": 0.1, \"delete_fraction\": 0.1},\n"
       << "  \"threads\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ThreadRun& run = runs[i];
    if (i > 0) json << ",";
    json << "\n    {\"threads\": " << run.threads
         << ", \"cold_ms\": " << FormatMillis(run.cold.millis)
         << ", \"warm_ms\": " << FormatMillis(run.warm.millis)
         << ", \"repeat_ms\": " << FormatMicros(run.repeat.millis)
         << ", \"cold_pages_decoded\": " << run.cold.stats.pages_decoded
         << ", \"warm_pages_decoded\": " << run.warm.stats.pages_decoded
         << ", \"bit_identical\": " << (run.identical ? "true" : "false")
         << "}";
  }
  json << "\n  ],\n"
       << "  \"warm_speedup_1thread\": " << FormatRatio(warm_speedup)
       << ",\n"
       << "  \"page_cache_warm_speedup_1thread\": "
       << FormatRatio(page_warm_speedup) << ",\n"
       << "  \"pooled_speedup_4thread_cold\": " << FormatRatio(pooled_speedup)
       << ",\n"
       << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << "\n}\n";
  if (!json.good()) {
    std::fprintf(stderr, "short write to BENCH_scaling.json\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
