// Ablation: the chunk index inside the full M4-LSM operator. Runs the same
// queries with the step-regression locator and the binary-search locator at
// a w where partial scans and boundary probes dominate, reporting latency
// and probe counts. (Section 4.3 credits the chunk index for keeping the
// BP/TP verification CPU cost down.)

#include <cstdio>
#include <vector>

#include "harness.h"
#include "m4/m4_lsm.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  ResultTable table({"dataset", "strategy", "lsm_ms", "index_probes",
                     "pages_decoded"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    spec.overlap_fraction = 0.3;  // overlap forces existence probes
    spec.delete_fraction = 0.1;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    M4Query query{built->data_range.start, built->data_range.end + 1, 1000};

    struct Variant {
      const char* name;
      LocateStrategy strategy;
    };
    const Variant variants[] = {
        {"step-regression", LocateStrategy::kStepRegression},
        {"binary-search", LocateStrategy::kBinarySearch},
    };
    for (const Variant& variant : variants) {
      M4LsmOptions options;
      options.locate_strategy = variant.strategy;
      Measurement m = TimeQuery(3, [&](QueryStats* stats) {
        return RunM4Lsm(*built->store, query, stats, options);
      });
      table.AddRow({DatasetName(kind), variant.name,
                    FormatMillis(m.millis),
                    FormatCount(m.stats.index_lookups),
                    FormatCount(m.stats.pages_decoded)});
    }
  }
  std::printf(
      "M4-LSM chunk-index strategy ablation (w=1000, overlap 30%%, "
      "scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("m4_index_strategies"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
