// Ablation: merge-free reads vs compaction. The paper's configuration
// disables compaction entirely (Table 4) and argues that M4-LSM copes with
// the uncompacted state; this bench quantifies that claim by measuring both
// operators before and after a full compaction of an overlapping, deleted
// store.
//
// Expected: compaction helps M4-UDF a lot (no more overlap/version merging)
// — but M4-LSM on the *uncompacted* store already runs in the same league
// as M4-UDF on the *compacted* one, without paying the compaction rewrite.

#include <cstdio>

#include "common/stats.h"
#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  ResultTable table({"dataset", "state", "udf_ms", "lsm_ms", "chunks",
                     "overlap_pct", "compact_ms"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    spec.overlap_fraction = 0.3;
    spec.delete_fraction = 0.2;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    M4Query query{built->data_range.start, built->data_range.end + 1, 1000};

    auto before = CompareOperators(*built->store, query);
    if (!before.ok()) return 1;
    char overlap_before[16];
    std::snprintf(overlap_before, sizeof(overlap_before), "%.1f%%",
                  built->store->OverlapFraction() * 100);
    size_t chunks_before = built->store->chunks().size();

    Timer compact_timer;
    if (Status s = built->store->Compact(); !s.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
      return 1;
    }
    double compact_ms = compact_timer.ElapsedMillis();

    auto after = CompareOperators(*built->store, query);
    if (!after.ok()) return 1;

    table.AddRow({DatasetName(kind), "uncompacted",
                  FormatMillis(before->udf.millis),
                  FormatMillis(before->lsm.millis),
                  FormatCount(chunks_before), overlap_before, "-"});
    table.AddRow({DatasetName(kind), "compacted",
                  FormatMillis(after->udf.millis),
                  FormatMillis(after->lsm.millis),
                  FormatCount(built->store->chunks().size()), "0.0%",
                  FormatMillis(compact_ms)});
  }
  std::printf(
      "Compaction ablation: merge-free reads vs eager compaction "
      "(w=1000, overlap 30%%, deletes 20%%, scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("compaction_ablation"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
