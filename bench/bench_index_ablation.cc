// Ablation: chunk-index lookups (Section 3.5) — step regression vs binary
// search over the page directory vs decoding the whole chunk. Uses
// google-benchmark; the interesting outputs are the relative lookup costs
// and the pages-decoded counters.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "index/binary_search_index.h"
#include "index/chunk_searcher.h"
#include "index/page_provider.h"
#include "workload/generator.h"

namespace tsviz {
namespace {

// In-memory paged chunk with a decode cost proportional to page size,
// mimicking the real decompression work without file I/O noise.
class CountingProvider : public PageProvider {
 public:
  CountingProvider(std::vector<Point> points, size_t page_size)
      : points_(std::move(points)) {
    for (size_t begin = 0; begin < points_.size(); begin += page_size) {
      size_t end = std::min(points_.size(), begin + page_size);
      PageInfo info;
      info.count = static_cast<uint32_t>(end - begin);
      info.min_t = points_[begin].t;
      info.max_t = points_[end - 1].t;
      info.offset = static_cast<uint32_t>(begin);
      pages_.push_back(info);
      cache_.emplace_back();
    }
  }

  const std::vector<PageInfo>& pages() const override { return pages_; }

  Result<const std::vector<Point>*> GetPage(size_t i) override {
    if (!cache_[i].has_value()) {
      ++decodes_;
      const PageInfo& page = pages_[i];
      // Simulated decode: copy the page (the dominant memory traffic of a
      // real delta+XOR decode).
      cache_[i] = std::vector<Point>(
          points_.begin() + page.offset,
          points_.begin() + page.offset + page.count);
    }
    return &*cache_[i];
  }

  uint64_t num_points() const override { return points_.size(); }

  void ResetCache() {
    for (auto& page : cache_) page.reset();
    decodes_ = 0;
  }
  uint64_t decodes() const { return decodes_; }

 private:
  std::vector<Point> points_;
  std::vector<PageInfo> pages_;
  std::vector<std::optional<std::vector<Point>>> cache_;
  uint64_t decodes_ = 0;
};

std::vector<Point> BenchPoints(size_t n) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kKob;  // gap-heavy: the index's design domain
  spec.num_points = n;
  return GenerateDataset(spec);
}

void BM_LookupStepRegression(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  CountingProvider provider(BenchPoints(n), 200);
  StepRegressionModel model = FitStepRegression(BenchPoints(n));
  ChunkSearcher searcher(&provider, &model, LocateStrategy::kStepRegression,
                         nullptr);
  Rng rng(1);
  Timestamp lo = provider.pages().front().min_t;
  Timestamp hi = provider.pages().back().max_t;
  for (auto _ : state) {
    auto hit = searcher.FirstAtOrAfter(rng.Uniform(lo, hi));
    benchmark::DoNotOptimize(hit);
  }
  state.counters["pages_decoded"] =
      static_cast<double>(provider.decodes());
}
BENCHMARK(BM_LookupStepRegression)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LookupBinarySearch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  CountingProvider provider(BenchPoints(n), 200);
  ChunkSearcher searcher(&provider, nullptr, LocateStrategy::kBinarySearch,
                         nullptr);
  Rng rng(1);
  Timestamp lo = provider.pages().front().min_t;
  Timestamp hi = provider.pages().back().max_t;
  for (auto _ : state) {
    auto hit = searcher.FirstAtOrAfter(rng.Uniform(lo, hi));
    benchmark::DoNotOptimize(hit);
  }
  state.counters["pages_decoded"] =
      static_cast<double>(provider.decodes());
}
BENCHMARK(BM_LookupBinarySearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LookupFullDecode(benchmark::State& state) {
  // The no-index baseline: decode every page, then binary search points.
  size_t n = static_cast<size_t>(state.range(0));
  CountingProvider provider(BenchPoints(n), 200);
  Rng rng(1);
  Timestamp lo = provider.pages().front().min_t;
  Timestamp hi = provider.pages().back().max_t;
  for (auto _ : state) {
    provider.ResetCache();  // each lookup pays the full decode
    Timestamp t = rng.Uniform(lo, hi);
    const Point* found = nullptr;
    for (size_t i = 0; i < provider.pages().size(); ++i) {
      auto page = provider.GetPage(i);
      for (const Point& p : **page) {
        if (p.t >= t) {
          found = &p;
          break;
        }
      }
      if (found != nullptr) break;
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_LookupFullDecode)->Arg(1000)->Arg(10000);

void BM_FitStepRegression(benchmark::State& state) {
  std::vector<Point> points = BenchPoints(
      static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    StepRegressionModel model = FitStepRegression(points);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitStepRegression)->Arg(1000)->Arg(10000);

void BM_ModelEval(benchmark::State& state) {
  StepRegressionModel model = FitStepRegression(BenchPoints(10000));
  Rng rng(2);
  Timestamp lo = model.splits.front();
  Timestamp hi = model.splits.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Eval(rng.Uniform(lo, hi)));
  }
}
BENCHMARK(BM_ModelEval);

void BM_DirectoryBinarySearch(benchmark::State& state) {
  CountingProvider provider(BenchPoints(100000), 200);
  Rng rng(3);
  Timestamp lo = provider.pages().front().min_t;
  Timestamp hi = provider.pages().back().max_t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LocatePageBinary(provider.pages(), rng.Uniform(lo, hi)));
  }
}
BENCHMARK(BM_DirectoryBinarySearch);

}  // namespace
}  // namespace tsviz

BENCHMARK_MAIN();
