// Replication: follower-read throughput vs primary-only under a mixed
// ingest+M4 load over loopback.
//
// One primary database ingests a steady INSERT stream for the whole run.
// Readers issue M4 SELECTs either at the primary itself (baseline: reads
// and writes contend on one node) or at a live follower attached over the
// WAL-shipping relay (reads move off the primary; the follower applies the
// ingest stream concurrently with serving). Each cell spawns N reader
// clients plus the fixed writer pool for a wall budget and reports read
// throughput, read latency percentiles, and write throughput.
//
// Besides bench_results/replication.{csv,json} this writes a
// BENCH_replication.json summary into the working directory with the
// headline ratio: follower-read over primary-only read throughput at the
// highest reader count, plus the follower's applied watermark and lag at
// the end of the run (proof the follower was live, not a stale snapshot).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "db/database.h"
#include "harness.h"
#include "net/client_channel.h"
#include "server/server.h"

namespace tsviz::bench {
namespace {

constexpr int kReaderCounts[] = {1, 2, 4, 8};
constexpr int kWriters = 2;
constexpr double kCellMillis = 300.0;  // wall budget per (mode, N) cell
constexpr int kIoTimeoutMs = 5000;

struct CellResult {
  std::string mode;  // primary_only | follower_reads
  int readers = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  double read_p50_ms = 0.0;
  double read_p99_ms = 0.0;
  double reads_per_sec = 0.0;
  double writes_per_sec = 0.0;
};

struct Tally {
  std::vector<double> latencies_ms;
  uint64_t ok = 0;
  uint64_t errors = 0;
};

// Timestamps for INSERTs: globally unique and increasing so the ingest
// series never sees duplicate keys; starts past the seeded read data.
std::atomic<int64_t> g_ingest_ts{100'000'000};

bool IsError(const std::vector<std::string>& reply) {
  return reply.empty() || reply[0].rfind("ERROR:", 0) == 0;
}

void RunReader(int port, const std::string& m4_query,
               std::chrono::steady_clock::time_point deadline, Tally* tally) {
  auto conn = net::ClientChannel::Connect("127.0.0.1", port, kIoTimeoutMs);
  if (!conn.ok()) {
    ++tally->errors;
    return;
  }
  std::unique_ptr<net::ClientChannel> channel = std::move(conn).value();
  while (std::chrono::steady_clock::now() < deadline) {
    const auto start = std::chrono::steady_clock::now();
    auto reply = channel->Call(m4_query, kIoTimeoutMs);
    const auto stop = std::chrono::steady_clock::now();
    if (!reply.ok()) break;
    if (IsError(reply.value())) {
      ++tally->errors;
      continue;
    }
    ++tally->ok;
    tally->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
}

void RunWriter(int port, std::chrono::steady_clock::time_point deadline,
               Tally* tally) {
  auto conn = net::ClientChannel::Connect("127.0.0.1", port, kIoTimeoutMs);
  if (!conn.ok()) {
    ++tally->errors;
    return;
  }
  std::unique_ptr<net::ClientChannel> channel = std::move(conn).value();
  while (std::chrono::steady_clock::now() < deadline) {
    int64_t ts = g_ingest_ts.fetch_add(1, std::memory_order_relaxed);
    std::string stmt =
        "INSERT INTO ingest VALUES (" + std::to_string(ts) + ", 1.0)";
    auto reply = channel->Call(stmt, kIoTimeoutMs);
    if (!reply.ok()) break;
    if (IsError(reply.value())) {
      ++tally->errors;
    } else {
      ++tally->ok;
    }
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

std::string FormatRate(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", r);
  return buf;
}

std::string FormatRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", r);
  return buf;
}

Result<std::string> MakeTempDir(const char* tag) {
  namespace fs = std::filesystem;
  std::string tmpl =
      (fs::temp_directory_path() / (std::string("tsviz_bench_") + tag +
                                    "_XXXXXX"))
          .string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("mkdtemp failed");
  }
  return std::string(buf.data());
}

Result<std::unique_ptr<Database>> OpenDb(const std::string& root) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 200;
  config.series_defaults.memtable_flush_threshold = 4096;
  return Database::Open(config);
}

// One (mode, readers) cell: reader clients against `read_port`, the fixed
// writer pool against `write_port`.
CellResult RunCell(const std::string& mode, int readers, int read_port,
                   int write_port, const std::string& m4_query) {
  std::vector<Tally> read_tallies(static_cast<size_t>(readers));
  std::vector<Tally> write_tallies(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers) + kWriters);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline =
      wall_start + std::chrono::microseconds(
                       static_cast<int64_t>(kCellMillis * 1000));
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back(RunReader, read_port, std::cref(m4_query), deadline,
                         &read_tallies[static_cast<size_t>(c)]);
  }
  for (int c = 0; c < kWriters; ++c) {
    threads.emplace_back(RunWriter, write_port, deadline,
                         &write_tallies[static_cast<size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  CellResult cell;
  cell.mode = mode;
  cell.readers = readers;
  std::vector<double> all;
  for (const Tally& t : read_tallies) {
    cell.reads += t.ok;
    cell.errors += t.errors;
    all.insert(all.end(), t.latencies_ms.begin(), t.latencies_ms.end());
  }
  for (const Tally& t : write_tallies) {
    cell.writes += t.ok;
    cell.errors += t.errors;
  }
  std::sort(all.begin(), all.end());
  cell.read_p50_ms = Percentile(all, 0.50);
  cell.read_p99_ms = Percentile(all, 0.99);
  if (wall_ms > 0.0) {
    cell.reads_per_sec = static_cast<double>(cell.reads) * 1000.0 / wall_ms;
    cell.writes_per_sec = static_cast<double>(cell.writes) * 1000.0 / wall_ms;
  }
  return cell;
}

int Run() {
  const double scale = ScaleFromEnv();
  const size_t points =
      static_cast<size_t>(20000.0 * std::max(scale / 0.05, 1.0));

  auto primary_dir = MakeTempDir("repl_p");
  auto follower_dir = MakeTempDir("repl_f");
  if (!primary_dir.ok() || !follower_dir.ok()) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  auto opened = OpenDb(primary_dir.value());
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> primary = std::move(opened).value();
  for (size_t i = 0; i < points; ++i) {
    TSVIZ_CHECK(primary
                    ->Write("t", static_cast<int64_t>(i) * 10,
                            static_cast<double>(i % 997))
                    .ok());
  }
  TSVIZ_CHECK(primary->FlushAll().ok());

  // ~100 points per span: decode-bound queries short enough that a 300 ms
  // cell completes many of them.
  const int64_t range_end = static_cast<int64_t>(points) * 10;
  const int64_t w = std::clamp<int64_t>(static_cast<int64_t>(points) / 100,
                                        50, 2000);
  const std::string m4_query =
      "SELECT M4(v) FROM t WHERE time >= 0 AND time < " +
      std::to_string(range_end) + " GROUP BY SPANS(" + std::to_string(w) +
      ")";

  SqlServer primary_server(primary.get());
  if (Status s = primary_server.Start(0); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  ResultTable table({"mode", "readers", "reads", "writes", "errors",
                     "read_p50_ms", "read_p99_ms", "reads_per_sec",
                     "writes_per_sec"});
  std::vector<CellResult> cells;

  // --- Baseline: every client hits the primary ---------------------------
  for (int readers : kReaderCounts) {
    cells.push_back(RunCell("primary_only", readers, primary_server.port(),
                            primary_server.port(), m4_query));
  }

  // --- Follower reads: attach a replica, point the readers at it ---------
  if (Status s = primary->EnablePrimary(0); !s.ok()) {
    std::fprintf(stderr, "EnablePrimary failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto fopened = OpenDb(follower_dir.value());
  if (!fopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 fopened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> follower = std::move(fopened).value();
  if (Status s = follower->EnableReplica("127.0.0.1", primary->repl_port());
      !s.ok()) {
    std::fprintf(stderr, "EnableReplica failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // Wait for the bootstrap to catch up before timing: the cells should
  // measure steady-state streaming, not the initial history transfer.
  const auto catchup_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    ReplicationStatus fs = follower->replication_status();
    ReplicationStatus ps = primary->replication_status();
    if (fs.state == "STREAMING" && fs.last_seq == ps.last_seq) break;
    if (std::chrono::steady_clock::now() > catchup_deadline) {
      std::fprintf(stderr, "follower never caught up (state %s, %llu/%llu)\n",
                   fs.state.c_str(),
                   static_cast<unsigned long long>(fs.last_seq),
                   static_cast<unsigned long long>(ps.last_seq));
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  SqlServer follower_server(follower.get());
  if (Status s = follower_server.Start(0); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int readers : kReaderCounts) {
    cells.push_back(RunCell("follower_reads", readers, follower_server.port(),
                            primary_server.port(), m4_query));
  }

  const ReplicationStatus final_status = follower->replication_status();
  follower_server.Stop();
  primary_server.Stop();

  for (const CellResult& c : cells) {
    table.AddRow({c.mode, std::to_string(c.readers), std::to_string(c.reads),
                  std::to_string(c.writes), std::to_string(c.errors),
                  FormatMillis(c.read_p50_ms), FormatMillis(c.read_p99_ms),
                  FormatRate(c.reads_per_sec),
                  FormatRate(c.writes_per_sec)});
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Replication: follower-read vs primary-only throughput, mixed "
      "ingest+M4 (points=%zu w=%lld writers=%d cell=%.0fms cores=%u)\n\n",
      points, static_cast<long long>(w), kWriters, kCellMillis, cores);
  table.Print();
  if (Status s = table.WriteCsv("replication"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }

  // Headline: follower-read over primary-only read throughput at the
  // highest reader count.
  const int max_readers = kReaderCounts[std::size(kReaderCounts) - 1];
  double primary_reads = 0.0, follower_reads = 0.0;
  double primary_combined = 0.0, follower_combined = 0.0;
  uint64_t total_errors = 0;
  for (const CellResult& c : cells) {
    total_errors += c.errors;
    if (c.readers != max_readers) continue;
    if (c.mode == "primary_only") {
      primary_reads = c.reads_per_sec;
      primary_combined = c.reads_per_sec + c.writes_per_sec;
    }
    if (c.mode == "follower_reads") {
      follower_reads = c.reads_per_sec;
      follower_combined = c.reads_per_sec + c.writes_per_sec;
    }
  }
  const double ratio = follower_reads / std::max(primary_reads, 1e-3);
  // On a single-core host the read-only ratio understates the win: moving
  // readers off the primary mostly shows up as recovered write throughput,
  // so the combined (reads+writes) ratio is the honest headline there.
  const double combined_ratio =
      follower_combined / std::max(primary_combined, 1e-3);
  std::printf("\nfollower-read / primary-only read throughput "
              "(%d readers): %.2fx\n",
              max_readers, ratio);
  std::printf("follower / primary combined reads+writes throughput "
              "(%d readers): %.2fx\n",
              max_readers, combined_ratio);
  std::printf("follower at end of run: state=%s applied_seq=%llu "
              "lag_ms=%lld divergences=%llu\n",
              final_status.state.c_str(),
              static_cast<unsigned long long>(final_status.last_seq),
              static_cast<long long>(final_status.lag_ms),
              static_cast<unsigned long long>(final_status.divergences));

  std::ofstream json("BENCH_replication.json");
  if (!json.good()) {
    std::fprintf(stderr, "cannot open BENCH_replication.json\n");
    return 1;
  }
  json << "{\n"
       << "  \"name\": \"replication\",\n"
       << "  \"cpu_cores\": " << cores << ",\n"
       << "  \"workload\": {\"points\": " << points << ", \"w\": " << w
       << ", \"writers\": " << kWriters
       << ", \"cell_millis\": " << FormatRatio(kCellMillis) << "},\n"
       << "  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    if (i > 0) json << ",";
    json << "\n    {\"mode\": \"" << c.mode
         << "\", \"readers\": " << c.readers << ", \"reads\": " << c.reads
         << ", \"writes\": " << c.writes << ", \"errors\": " << c.errors
         << ", \"read_p50_ms\": " << FormatMillis(c.read_p50_ms)
         << ", \"read_p99_ms\": " << FormatMillis(c.read_p99_ms)
         << ", \"reads_per_sec\": " << FormatRate(c.reads_per_sec)
         << ", \"writes_per_sec\": " << FormatRate(c.writes_per_sec) << "}";
  }
  json << "\n  ],\n"
       << "  \"follower_over_primary_reads_" << max_readers
       << "_readers\": " << FormatRatio(ratio) << ",\n"
       << "  \"follower_over_primary_combined_" << max_readers
       << "_readers\": " << FormatRatio(combined_ratio) << ",\n"
       << "  \"follower_final\": {\"state\": \"" << final_status.state
       << "\", \"applied_seq\": " << final_status.last_seq
       << ", \"lag_ms\": " << final_status.lag_ms
       << ", \"divergences\": " << final_status.divergences << "},\n"
       << "  \"total_errors\": " << total_errors << "\n}\n";
  if (!json.good()) {
    std::fprintf(stderr, "short write to BENCH_replication.json\n");
    return 1;
  }

  follower.reset();
  primary.reset();
  std::error_code ec;
  std::filesystem::remove_all(primary_dir.value(), ec);
  std::filesystem::remove_all(follower_dir.value(), ec);
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
