// Figure 12: M4 query latency vs chunk overlap percentage.
//
// Paper shape: M4-UDF grows with the overlap rate (more CPU to merge
// overlapping chunks); M4-LSM stays almost constant thanks to the merge-free
// strategy — a chunk is only touched when a candidate point actually falls
// inside a later chunk's time interval, and the chunk-index probe for that
// costs one page.

#include <cstdio>
#include <vector>

#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  const std::vector<double> overlaps = {0.0, 0.1, 0.2, 0.3, 0.4};

  ResultTable table({"dataset", "overlap_pct", "measured_pct", "udf_ms",
                     "lsm_ms", "speedup", "lsm_chunks", "lsm_idx_probes"});
  for (DatasetKind kind : AllDatasetKinds()) {
    for (double overlap : overlaps) {
      StorageSpec spec;
      spec.overlap_fraction = overlap;
      auto built = BuildDatasetStore(kind, scale, spec);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      M4Query query{built->data_range.start, built->data_range.end + 1,
                    1000};
      auto comparison = CompareOperators(*built->store, query);
      if (!comparison.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     comparison.status().ToString().c_str());
        return 1;
      }
      const Measurement& udf = comparison->udf;
      const Measurement& lsm = comparison->lsm;
      char target[16];
      std::snprintf(target, sizeof(target), "%.0f%%", overlap * 100);
      char measured[16];
      std::snprintf(measured, sizeof(measured), "%.1f%%",
                    built->store->OverlapFraction() * 100);
      table.AddRow({DatasetName(kind), target, measured,
                    FormatMillis(udf.millis), FormatMillis(lsm.millis),
                    FormatMillis(udf.millis / std::max(lsm.millis, 1e-3)),
                    FormatCount(lsm.stats.chunks_loaded),
                    FormatCount(lsm.stats.index_lookups)});
    }
  }
  std::printf(
      "Figure 12: varying chunk overlap percentage (w=1000, scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("fig12_vary_overlap"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
