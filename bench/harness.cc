#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "m4/m4_lsm.h"
#include "m4/m4_udf.h"
#include "storage/page_cache.h"
#include "workload/ooo.h"

// Build provenance, stamped by bench/CMakeLists.txt via `git describe
// --always --dirty`. Bench numbers are meaningless without knowing which
// tree produced them.
#ifndef TSVIZ_GIT_DESCRIBE
#define TSVIZ_GIT_DESCRIBE "unknown"
#endif

namespace tsviz::bench {

namespace fs = std::filesystem;

double ScaleFromEnv() {
  const char* env = std::getenv("TSVIZ_SCALE");
  if (env != nullptr) {
    double scale = std::atof(env);
    if (scale > 0.0 && scale <= 1.0) return scale;
    std::fprintf(stderr, "ignoring invalid TSVIZ_SCALE=%s\n", env);
  }
  return 0.05;
}

size_t ScaledPoints(DatasetKind kind, double scale) {
  double n = static_cast<double>(PaperPointCount(kind)) * scale;
  return std::max<size_t>(20000, static_cast<size_t>(n));
}

BuiltStore::~BuiltStore() {
  store.reset();  // close files before removing them
  if (!dir.empty()) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

Result<BuiltStore> BuildDatasetStore(DatasetKind kind, double scale,
                                     const StorageSpec& spec) {
  BuiltStore built;
  std::string tmpl =
      (fs::temp_directory_path() / "tsviz_bench_XXXXXX").string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("mkdtemp failed");
  }
  built.dir = buf.data();

  StoreConfig config;
  config.data_dir = built.dir;
  // Benchmarks measure encode/query cost, not disk durability.
  config.durable_fsync = false;
  config.points_per_chunk = spec.points_per_chunk;
  config.memtable_flush_threshold = spec.points_per_chunk;
  config.encoding.page_size_points = spec.page_size_points;
  TSVIZ_ASSIGN_OR_RETURN(built.store, TsStore::Open(std::move(config)));

  DatasetSpec data_spec;
  data_spec.kind = kind;
  data_spec.num_points = ScaledPoints(kind, scale);
  data_spec.seed = spec.seed;
  std::vector<Point> points = GenerateDataset(data_spec);

  Rng rng(spec.seed + 1);
  std::vector<Point> arrivals = MakeOverlappingOrder(
      points, spec.points_per_chunk, spec.overlap_fraction, &rng);
  TSVIZ_RETURN_IF_ERROR(built.store->WriteAll(arrivals));
  TSVIZ_RETURN_IF_ERROR(built.store->Flush());

  if (spec.delete_fraction > 0.0) {
    DeleteWorkloadSpec del_spec;
    del_spec.delete_fraction = spec.delete_fraction;
    del_spec.range_scale = spec.delete_range_scale;
    del_spec.seed = spec.seed + 2;
    TSVIZ_RETURN_IF_ERROR(
        ApplyDeleteWorkload(built.store.get(), del_spec));
  }

  built.data_range = built.store->DataInterval();
  return built;
}

Measurement TimeQuery(
    int reps,
    const std::function<Result<M4Result>(QueryStats*)>& query_fn) {
  std::vector<Measurement> runs;
  runs.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    // Paper figures measure cold-cache latency; without this, rep 2+ would
    // be served from the shared page cache (bench_scaling times that case).
    SharedPageCache::Instance().Clear();
    Measurement m;
    Timer timer;
    Result<M4Result> result = query_fn(&m.stats);
    m.millis = timer.ElapsedMillis();
    TSVIZ_CHECK(result.ok());
    runs.push_back(m);
  }
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.millis < b.millis;
            });
  return runs[runs.size() / 2];
}

Result<Comparison> CompareOperators(const TsStore& store,
                                    const M4Query& query, int reps) {
  // Correctness gate before timing.
  QueryStats scratch;
  TSVIZ_ASSIGN_OR_RETURN(M4Result udf_result,
                         RunM4Udf(store, query, &scratch));
  TSVIZ_ASSIGN_OR_RETURN(M4Result lsm_result,
                         RunM4Lsm(store, query, &scratch));
  if (!ResultsEquivalent(udf_result, lsm_result)) {
    return Status::Internal("operators disagree: " +
                            FirstMismatch(udf_result, lsm_result));
  }

  Comparison comparison;
  comparison.udf = TimeQuery(reps, [&](QueryStats* stats) {
    return RunM4Udf(store, query, stats);
  });
  comparison.lsm = TimeQuery(reps, [&](QueryStats* stats) {
    return RunM4Lsm(store, query, stats);
  });
  return comparison;
}

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  TSVIZ_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void ResultTable::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

Status ResultTable::WriteCsv(const std::string& name) const {
  std::error_code ec;
  fs::create_directories("bench_results", ec);
  if (ec) return Status::IoError("cannot create bench_results");
  std::ofstream out("bench_results/" + name + ".csv");
  if (!out.good()) return Status::IoError("cannot open csv for " + name);
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  if (!out.good()) return Status::IoError("short csv write for " + name);

  // JSON sidecar: the same rows plus a snapshot of every process metric,
  // so a bench run carries its own cost counters for later analysis.
  std::ofstream json(std::string("bench_results/") + name + ".json");
  if (!json.good()) return Status::IoError("cannot open json for " + name);
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  auto write_array = [&](const std::vector<std::string>& cells) {
    json << "[";
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) json << ",";
      json << "\"" << escape(cells[c]) << "\"";
    }
    json << "]";
  };
  json << "{\n  \"name\": \"" << escape(name)
       << "\",\n  \"git_describe\": \"" << escape(TSVIZ_GIT_DESCRIBE)
       << "\",\n  \"hw_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n  \"columns\": ";
  write_array(columns_);
  json << ",\n  \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) json << ",";
    json << "\n    ";
    write_array(rows_[r]);
  }
  json << "\n  ],\n  \"metrics\": "
       << obs::MetricsRegistry::Instance().RenderJson() << "\n}\n";
  return json.good() ? Status::OK()
                     : Status::IoError("short json write for " + name);
}

std::string FormatMillis(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

std::string FormatCount(uint64_t n) { return std::to_string(n); }

}  // namespace tsviz::bench
