#ifndef TSVIZ_BENCH_HARNESS_H_
#define TSVIZ_BENCH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "m4/m4_types.h"
#include "m4/span.h"
#include "storage/store.h"
#include "workload/deletes.h"
#include "workload/generator.h"

namespace tsviz::bench {

// Shared experiment scaffolding for the paper-reproduction benches. Every
// bench binary prints the paper's series (dataset x parameter -> latency of
// M4-UDF and M4-LSM plus cost counters) as an aligned table and writes the
// same rows to bench_results/<name>.csv.

// Scale factor for dataset sizes: points = PaperPointCount * scale (min
// 20k). Default 0.05 keeps each bench to seconds; TSVIZ_SCALE=1 reproduces
// the paper's full sizes (Table 2).
double ScaleFromEnv();

size_t ScaledPoints(DatasetKind kind, double scale);

// Storage knobs. The paper's IoTDB config stores 1000 points per chunk,
// giving 10k chunks on the 10M-point datasets; at bench scale we shrink the
// chunk so the chunks-per-span ratio — which drives every figure's shape —
// stays comparable.
struct StorageSpec {
  size_t points_per_chunk = 200;
  size_t page_size_points = 50;
  double overlap_fraction = 0.0;  // out-of-order arrival (Section 4.3)
  double delete_fraction = 0.0;   // deletes per chunk (Section 4.4)
  double delete_range_scale = 0.1;
  uint64_t seed = 42;
};

// One fully built experiment input: the store on disk plus its data range.
struct BuiltStore {
  std::unique_ptr<TsStore> store;
  std::string dir;  // owned temp dir; removed by the destructor
  TimeRange data_range;

  BuiltStore() = default;
  BuiltStore(BuiltStore&&) = default;
  BuiltStore& operator=(BuiltStore&&) = default;
  ~BuiltStore();
};

// Generates the dataset at scale, applies the out-of-order arrival order and
// delete workload, and flushes everything to a fresh temp directory.
Result<BuiltStore> BuildDatasetStore(DatasetKind kind, double scale,
                                     const StorageSpec& spec);

// Latency + counters of one operator run.
struct Measurement {
  double millis = 0.0;
  QueryStats stats;
};

// Runs `query_fn` `reps` times and keeps the median-latency run.
Measurement TimeQuery(
    int reps,
    const std::function<Result<M4Result>(QueryStats*)>& query_fn);

// Runs both operators on the same query, verifies they agree (aborting the
// bench loudly if not — a benchmark of wrong answers is worthless), and
// returns {udf, lsm}.
struct Comparison {
  Measurement udf;
  Measurement lsm;
};
Result<Comparison> CompareOperators(const TsStore& store,
                                    const M4Query& query, int reps = 3);

// Minimal fixed-width table + CSV writer.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Prints the aligned table to stdout.
  void Print() const;

  // Writes bench_results/<name>.csv plus a bench_results/<name>.json
  // sidecar holding the same rows, the build provenance (`git_describe`,
  // `hw_concurrency`), and a snapshot of the process metrics registry
  // (directory created on demand).
  Status WriteCsv(const std::string& name) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatMillis(double ms);
std::string FormatCount(uint64_t n);

}  // namespace tsviz::bench

#endif  // TSVIZ_BENCH_HARNESS_H_
