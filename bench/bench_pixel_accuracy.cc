// Figure 1 (qualitative claim): M4 is error-free for two-color line charts.
//
// Renders each dataset at 1000x500 (the paper's canvas) from (a) the full
// merged series, (b) the M4-LSM representation, (c) a MinMax reduction and
// (d) systematic sampling with the same point budget, and reports pixel
// error against (a). Expected: M4 has exactly 0 differing pixels; the other
// reductions do not.

#include <cstdio>

#include "harness.h"
#include "m4/m4_lsm.h"
#include "read/series_reader.h"
#include "viz/pixel_diff.h"
#include "viz/lttb.h"
#include "viz/rasterize.h"
#include "viz/ssim.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  const int width = 1000;
  const int height = 500;

  ResultTable table({"dataset", "method", "diff_pixels", "error_pct",
                     "ssim", "points_kept"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    spec.overlap_fraction = 0.1;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const TimeRange range = built->data_range;
    M4Query query{range.start, range.end + 1, width};

    auto merged = ReadMergedSeries(*built->store, range, nullptr);
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed\n");
      return 1;
    }
    CanvasSpec canvas = FitCanvas(*merged, query, width, height);
    Bitmap ground_truth = RasterizeSeries(*merged, canvas);

    auto m4_rows = RunM4Lsm(*built->store, query, nullptr);
    if (!m4_rows.ok()) {
      std::fprintf(stderr, "m4-lsm failed\n");
      return 1;
    }
    // Same point budget for the competing reductions: 4 points per column
    // for sampling, 2 for MinMax (its natural budget).
    size_t m4_points = M4Polyline(*m4_rows).size();
    size_t stride = std::max<size_t>(1, merged->size() / (4 * width));
    struct Candidate {
      const char* name;
      Bitmap bitmap;
      size_t kept;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"M4-LSM", RasterizeM4(*m4_rows, canvas),
                          m4_points});
    candidates.push_back(
        {"MinMax",
         RasterizeM4(MinMaxRepresentation(*merged, query), canvas),
         static_cast<size_t>(2 * width)});
    candidates.push_back(
        {"Sampling",
         RasterizeM4(SampledRepresentation(*merged, query, stride), canvas),
         merged->size() / stride});
    std::vector<Point> lttb = DownsampleLttb(*merged, 4 * width);
    candidates.push_back(
        {"LTTB", RasterizeSeries(lttb, canvas), lttb.size()});

    for (const Candidate& candidate : candidates) {
      PixelAccuracyReport report =
          ComparePixels(ground_truth, candidate.bitmap);
      char pct[32];
      std::snprintf(pct, sizeof(pct), "%.4f%%", report.ErrorRatio() * 100);
      char ssim[32];
      std::snprintf(ssim, sizeof(ssim), "%.4f",
                    Ssim(ground_truth, candidate.bitmap));
      table.AddRow({DatasetName(kind), candidate.name,
                    FormatCount(report.differing_pixels), pct, ssim,
                    FormatCount(candidate.kept)});
    }
  }
  std::printf(
      "Pixel accuracy at %dx%d: M4 must be error-free, reductions are not "
      "(scale=%.3f)\n\n",
      width, height, scale);
  table.Print();
  if (Status s = table.WriteCsv("pixel_accuracy"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
