// Figures 8 & 9: timestamp-position steps and timestamp-delta distribution.
//
// For one chunk of each dataset this prints the learned step-regression
// model (slope K = 1/median-delta, the tilt/level segments and their split
// timestamps) together with the delta statistics that drive the 3-sigma
// changing-point rule — the textual equivalent of the paper's plots. A CSV
// of (timestamp, position) pairs is emitted for external plotting.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "harness.h"
#include "index/step_regression.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  ResultTable table({"dataset", "chunk_points", "median_delta_us",
                     "mean_delta_us", "std_delta_us", "segments",
                     "max_pos_error"});
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);

  for (DatasetKind kind : AllDatasetKinds()) {
    DatasetSpec spec;
    spec.kind = kind;
    spec.num_points = ScaledPoints(kind, scale);
    std::vector<Point> points = GenerateDataset(spec);
    // One chunk of the paper's configured size. Figure 8 plots chunks with
    // visible transmission interruptions, so pick the window whose largest
    // delta stands out most against its median — the most step-shaped chunk.
    const size_t chunk_size = 1000;
    size_t best_begin = 0;
    double best_ratio = 0.0;
    for (size_t begin = 0; begin + chunk_size <= points.size();
         begin += chunk_size) {
      std::vector<int64_t> window;
      for (size_t i = begin + 1; i < begin + chunk_size; ++i) {
        window.push_back(points[i].t - points[i - 1].t);
      }
      std::nth_element(window.begin(), window.begin() + window.size() / 2,
                       window.end());
      int64_t med = std::max<int64_t>(1, window[window.size() / 2]);
      int64_t max_delta = *std::max_element(window.begin(), window.end());
      double ratio = static_cast<double>(max_delta) /
                     static_cast<double>(med);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_begin = begin;
      }
    }
    std::vector<Timestamp> ts;
    for (size_t i = best_begin;
         i < best_begin + chunk_size && i < points.size(); ++i) {
      ts.push_back(points[i].t);
    }

    std::vector<int64_t> deltas;
    for (size_t i = 1; i < ts.size(); ++i) deltas.push_back(ts[i] - ts[i - 1]);
    std::vector<int64_t> sorted = deltas;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    double mean = 0;
    for (int64_t d : deltas) mean += static_cast<double>(d);
    mean /= static_cast<double>(deltas.size());
    double var = 0;
    for (int64_t d : deltas) {
      double diff = static_cast<double>(d) - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(deltas.size());

    StepRegressionModel model = FitStepRegression(ts);
    double max_err = 0;
    for (size_t i = 0; i < ts.size(); ++i) {
      max_err = std::max(
          max_err, std::abs(model.Eval(ts[i]) - static_cast<double>(i + 1)));
    }

    char mean_s[32], std_s[32], err_s[32];
    std::snprintf(mean_s, sizeof(mean_s), "%.1f", mean);
    std::snprintf(std_s, sizeof(std_s), "%.1f", std::sqrt(var));
    std::snprintf(err_s, sizeof(err_s), "%.2f", max_err);
    table.AddRow({DatasetName(kind), FormatCount(ts.size()),
                  FormatCount(static_cast<uint64_t>(
                      sorted[sorted.size() / 2])),
                  mean_s, std_s, FormatCount(model.SegmentCount()), err_s});

    // Timestamp-position map for plotting (Figure 8's raw data).
    std::ofstream csv("bench_results/fig8_steps_" + DatasetName(kind) +
                      ".csv");
    csv << "timestamp,position,model_position\n";
    for (size_t i = 0; i < ts.size(); ++i) {
      csv << ts[i] << "," << i + 1 << "," << model.Eval(ts[i]) << "\n";
    }
  }
  std::printf(
      "Figures 8/9: timestamp-position steps and delta statistics "
      "(scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("fig8_steps"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
