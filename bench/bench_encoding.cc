// Ablation: codec throughput and compression ratios. The decode numbers are
// what make chunk loading expensive and the merge-free design worthwhile
// (Section 2.3): every chunk M4-UDF touches pays this CPU cost.

#include <benchmark/benchmark.h>

#include <vector>

#include "encoding/gorilla.h"
#include "encoding/page.h"
#include "encoding/plain.h"
#include "encoding/ts2diff.h"
#include "workload/generator.h"

namespace tsviz {
namespace {

std::vector<Point> BenchPoints(size_t n) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kMf03;
  spec.num_points = n;
  return GenerateDataset(spec);
}

std::vector<Timestamp> Times(const std::vector<Point>& points) {
  std::vector<Timestamp> ts;
  ts.reserve(points.size());
  for (const Point& p : points) ts.push_back(p.t);
  return ts;
}

std::vector<Value> Values(const std::vector<Point>& points) {
  std::vector<Value> vs;
  vs.reserve(points.size());
  for (const Point& p : points) vs.push_back(p.v);
  return vs;
}

void BM_Ts2DiffEncode(benchmark::State& state) {
  std::vector<Timestamp> ts = Times(BenchPoints(100000));
  size_t encoded_size = 0;
  for (auto _ : state) {
    std::string buf;
    benchmark::DoNotOptimize(EncodeTs2Diff(ts, &buf));
    encoded_size = buf.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ts.size()));
  state.counters["bytes_per_point"] =
      static_cast<double>(encoded_size) / static_cast<double>(ts.size());
}
BENCHMARK(BM_Ts2DiffEncode);

void BM_Ts2DiffDecode(benchmark::State& state) {
  std::vector<Timestamp> ts = Times(BenchPoints(100000));
  std::string buf;
  benchmark::DoNotOptimize(EncodeTs2Diff(ts, &buf));
  for (auto _ : state) {
    std::string_view view = buf;
    std::vector<Timestamp> out;
    benchmark::DoNotOptimize(DecodeTs2Diff(&view, ts.size(), &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ts.size()));
}
BENCHMARK(BM_Ts2DiffDecode);

void BM_GorillaEncode(benchmark::State& state) {
  std::vector<Value> values = Values(BenchPoints(100000));
  size_t encoded_size = 0;
  for (auto _ : state) {
    std::string buf;
    benchmark::DoNotOptimize(EncodeGorilla(values, &buf));
    encoded_size = buf.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
  state.counters["bytes_per_point"] =
      static_cast<double>(encoded_size) / static_cast<double>(values.size());
}
BENCHMARK(BM_GorillaEncode);

void BM_GorillaDecode(benchmark::State& state) {
  std::vector<Value> values = Values(BenchPoints(100000));
  std::string buf;
  benchmark::DoNotOptimize(EncodeGorilla(values, &buf));
  for (auto _ : state) {
    std::vector<Value> out;
    benchmark::DoNotOptimize(DecodeGorilla(buf, values.size(), &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_GorillaDecode);

void BM_PlainDecode(benchmark::State& state) {
  std::vector<Value> values = Values(BenchPoints(100000));
  std::string buf;
  benchmark::DoNotOptimize(EncodePlainValues(values, &buf));
  for (auto _ : state) {
    std::vector<Value> out;
    benchmark::DoNotOptimize(DecodePlainValues(buf, values.size(), &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_PlainDecode);

void BM_PageRoundTrip(benchmark::State& state) {
  std::vector<Point> points = BenchPoints(200);
  for (auto _ : state) {
    std::string blob;
    PageInfo info;
    benchmark::DoNotOptimize(EncodePage(points.data(), points.size(),
                                        TsCodec::kTs2Diff,
                                        ValueCodec::kGorilla, &blob, &info));
    std::vector<Point> out;
    benchmark::DoNotOptimize(DecodePage(blob, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_PageRoundTrip);

}  // namespace
}  // namespace tsviz

BENCHMARK_MAIN();
