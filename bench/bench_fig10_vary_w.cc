// Figure 10: M4 query latency vs the number of time spans w.
//
// Paper shape: M4-UDF is flat in w (it always loads and merges everything);
// M4-LSM grows with w because more chunks are split by span boundaries, but
// stays well below the baseline for typical pixel-column counts; the skewed
// KOB/RcvTime datasets grow more slowly because their many short chunks are
// rarely split.

#include <cstdio>
#include <vector>

#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  const std::vector<int64_t> ws = {10, 100, 1000, 10000};

  ResultTable table({"dataset", "w", "udf_ms", "lsm_ms", "speedup",
                     "udf_chunks", "lsm_chunks", "udf_pages", "lsm_pages"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    spec.overlap_fraction = 0.1;
    spec.delete_fraction = 0.1;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const TimeRange range = built->data_range;
    for (int64_t w : ws) {
      M4Query query{range.start, range.end + 1, w};
      auto comparison = CompareOperators(*built->store, query);
      if (!comparison.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     comparison.status().ToString().c_str());
        return 1;
      }
      const Measurement& udf = comparison->udf;
      const Measurement& lsm = comparison->lsm;
      table.AddRow({DatasetName(kind), std::to_string(w),
                    FormatMillis(udf.millis), FormatMillis(lsm.millis),
                    FormatMillis(udf.millis / std::max(lsm.millis, 1e-3)),
                    FormatCount(udf.stats.chunks_loaded),
                    FormatCount(lsm.stats.chunks_loaded),
                    FormatCount(udf.stats.pages_decoded),
                    FormatCount(lsm.stats.pages_decoded)});
    }
  }
  std::printf("Figure 10: varying the number of time spans w (scale=%.3f)\n\n",
              scale);
  table.Print();
  if (Status s = table.WriteCsv("fig10_vary_w"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
