// Table 2: dataset summary — entire time range and point count per dataset,
// plus the on-disk footprint our LSM store gives them. At TSVIZ_SCALE=1 the
// point counts equal the paper's exactly; the time ranges follow from the
// generators' cadences (BallSpeed ~71 minutes, MF03 ~28 hours, KOB ~4
// months, RcvTime ~1 year).

#include <cstdio>
#include <string>

#include "harness.h"

namespace tsviz::bench {
namespace {

std::string HumanDuration(double seconds) {
  char buf[64];
  if (seconds < 120 * 60) {
    std::snprintf(buf, sizeof(buf), "%.0f minutes", seconds / 60);
  } else if (seconds < 72 * 3600) {
    std::snprintf(buf, sizeof(buf), "%.0f hours", seconds / 3600);
  } else if (seconds < 90 * 86400) {
    std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f months", seconds / (30 * 86400.0));
  }
  return buf;
}

int Run() {
  const double scale = ScaleFromEnv();
  ResultTable table({"dataset", "time_range", "points", "paper_points",
                     "chunks", "disk_mb", "bytes_per_point"});
  for (DatasetKind kind : AllDatasetKinds()) {
    StorageSpec spec;
    auto built = BuildDatasetStore(kind, scale, spec);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    uint64_t disk_bytes = 0;
    for (const ChunkHandle& chunk : built->store->chunks()) {
      disk_bytes += chunk.meta->data_length;
    }
    uint64_t points = built->store->TotalStoredPoints();
    // Timestamps are microseconds.
    double range_seconds =
        static_cast<double>(built->data_range.end -
                            built->data_range.start) /
        1e6;
    char mb[32];
    std::snprintf(mb, sizeof(mb), "%.2f",
                  static_cast<double>(disk_bytes) / (1 << 20));
    char bpp[32];
    std::snprintf(bpp, sizeof(bpp), "%.2f",
                  static_cast<double>(disk_bytes) /
                      static_cast<double>(points));
    table.AddRow({DatasetName(kind), HumanDuration(range_seconds),
                  FormatCount(points), FormatCount(PaperPointCount(kind)),
                  FormatCount(built->store->chunks().size()), mb, bpp});
  }
  std::printf("Table 2: dataset summary (scale=%.3f)\n\n", scale);
  table.Print();
  if (Status s = table.WriteCsv("table2_datasets"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
