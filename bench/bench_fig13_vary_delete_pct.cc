// Figure 13: M4 query latency vs delete percentage.
//
// Paper shape: M4-UDF is almost constant (the sorted delete sweep in the
// merge reader is CPU-cheap); M4-LSM trends slightly upward — deleted
// candidate points force metadata recalculation — but its absolute latency
// stays small because each delete range is tiny relative to a chunk.

#include <cstdio>
#include <vector>

#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4};

  ResultTable table({"dataset", "delete_pct", "udf_ms", "lsm_ms", "speedup",
                     "lsm_chunks", "lsm_rounds"});
  for (DatasetKind kind : AllDatasetKinds()) {
    for (double fraction : fractions) {
      StorageSpec spec;
      spec.overlap_fraction = 0.1;
      spec.delete_fraction = fraction;
      spec.delete_range_scale = 0.1;
      auto built = BuildDatasetStore(kind, scale, spec);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      M4Query query{built->data_range.start, built->data_range.end + 1,
                    1000};
      auto comparison = CompareOperators(*built->store, query);
      if (!comparison.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     comparison.status().ToString().c_str());
        return 1;
      }
      const Measurement& udf = comparison->udf;
      const Measurement& lsm = comparison->lsm;
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.0f%%", fraction * 100);
      table.AddRow({DatasetName(kind), pct, FormatMillis(udf.millis),
                    FormatMillis(lsm.millis),
                    FormatMillis(udf.millis / std::max(lsm.millis, 1e-3)),
                    FormatCount(lsm.stats.chunks_loaded),
                    FormatCount(lsm.stats.candidate_rounds)});
    }
  }
  std::printf(
      "Figure 13: varying delete percentage (w=1000, scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("fig13_vary_delete_pct"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
