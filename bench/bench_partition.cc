// Partition-pruning benchmark: a narrow zoom against stores of growing
// total size, flat vs time-partitioned.
//
// The claim under test is the tentpole property of partitioned storage:
// the metadata cost of a query scales with the partitions it *scans*, not
// with the total data the series has accumulated. Each round doubles the
// number of partitions on disk while the query window stays one partition
// wide; the flat twin holds the same points in a single file group. The
// flat store's metadata reads grow with its lifetime (every file summary
// is consulted), the partitioned store's stay flat because pruning rejects
// cold partitions on the interval alone.
//
// Emits BENCH_partition.json with per-round counters and the two scaling
// verdicts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "m4/m4_lsm.h"

namespace tsviz::bench {
namespace {

constexpr int64_t kPartitionWidth = 1000;
constexpr size_t kPointsPerPartition = 200;
constexpr size_t kFilesPerPartition = 2;

struct Round {
  size_t partitions = 0;
  Measurement flat;
  Measurement part;
};

// Builds one store holding `num_partitions` partitions worth of data
// (interval = 0 builds the flat twin with identical points).
Result<std::unique_ptr<TsStore>> BuildStore(const std::string& dir,
                                            int64_t interval,
                                            size_t num_partitions) {
  StoreConfig config;
  config.data_dir = dir;
  config.partition_interval_ms = interval;
  config.points_per_chunk = kPointsPerPartition / kFilesPerPartition;
  config.memtable_flush_threshold = 1u << 20;
  config.enable_wal = false;  // bulk load
  TSVIZ_ASSIGN_OR_RETURN(std::unique_ptr<TsStore> store,
                         TsStore::Open(std::move(config)));
  const int64_t step = kPartitionWidth / int64_t(kPointsPerPartition);
  for (size_t p = 0; p < num_partitions; ++p) {
    for (size_t slice = 0; slice < kFilesPerPartition; ++slice) {
      for (size_t i = slice; i < kPointsPerPartition;
           i += kFilesPerPartition) {
        const Timestamp t =
            int64_t(p) * kPartitionWidth + int64_t(i) * step;
        TSVIZ_RETURN_IF_ERROR(store->Write(t, double(i)));
      }
      TSVIZ_RETURN_IF_ERROR(store->Flush());
    }
  }
  return store;
}

Measurement ZoomQuery(const TsStore& store, size_t num_partitions) {
  // One-partition window in the middle of the series.
  const int64_t mid = int64_t(num_partitions) / 2;
  const M4Query query{mid * kPartitionWidth, (mid + 1) * kPartitionWidth,
                      100};
  return TimeQuery(5, [&](QueryStats* stats) {
    return RunM4Lsm(store, query, stats);
  });
}

int Run() {
  const double scale = ScaleFromEnv();
  std::vector<size_t> sizes = {8, 32, 128};
  if (scale >= 1.0) sizes.push_back(512);

  ResultTable table({"layout", "partitions", "millis", "metadata_reads",
                     "chunks_total", "parts_scanned", "parts_pruned"});
  std::vector<Round> rounds;
  for (size_t n : sizes) {
    Round round;
    round.partitions = n;
    for (bool partitioned : {false, true}) {
      std::string tmpl = (std::filesystem::temp_directory_path() /
                          "tsviz_bench_partition_XXXXXX")
                             .string();
      std::vector<char> buf(tmpl.begin(), tmpl.end());
      buf.push_back('\0');
      if (::mkdtemp(buf.data()) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 1;
      }
      const std::string dir = buf.data();
      auto store =
          BuildStore(dir, partitioned ? kPartitionWidth : 0, n);
      if (!store.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     store.status().ToString().c_str());
        return 1;
      }
      Measurement m = ZoomQuery(**store, n);
      (partitioned ? round.part : round.flat) = m;
      table.AddRow({partitioned ? "partitioned" : "flat",
                    FormatCount(n), FormatMillis(m.millis),
                    FormatCount(m.stats.metadata_reads),
                    FormatCount(m.stats.chunks_total),
                    FormatCount(m.stats.partitions_scanned),
                    FormatCount(m.stats.partitions_pruned)});
      store->reset();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
    rounds.push_back(round);
  }

  std::printf(
      "Narrow zoom (1 of N partitions) while the series grows; metadata "
      "cost should track partitions scanned, not N (scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("partition"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }

  const Round& small = rounds.front();
  const Round& large = rounds.back();
  // Verdicts: the partitioned zoom's metadata cost is flat in N (within
  // 2x slack for the boundary chunks), the flat layout's grows with N.
  const bool pruned_cost_flat =
      large.part.stats.metadata_reads <=
      2 * std::max<uint64_t>(1, small.part.stats.metadata_reads);
  const bool flat_cost_grows =
      large.flat.stats.metadata_reads > 2 * small.flat.stats.metadata_reads;

  std::printf("\npartitioned zoom metadata reads: %llu (N=%zu) -> %llu "
              "(N=%zu); flat: %llu -> %llu\n",
              (unsigned long long)small.part.stats.metadata_reads,
              small.partitions,
              (unsigned long long)large.part.stats.metadata_reads,
              large.partitions,
              (unsigned long long)small.flat.stats.metadata_reads,
              (unsigned long long)large.flat.stats.metadata_reads);

  std::ofstream json("BENCH_partition.json");
  if (!json.good()) {
    std::fprintf(stderr, "cannot open BENCH_partition.json\n");
    return 1;
  }
  json << "{\n"
       << "  \"name\": \"partition\",\n"
       << "  \"partition_width\": " << kPartitionWidth << ",\n"
       << "  \"points_per_partition\": " << kPointsPerPartition << ",\n"
       << "  \"rounds\": [";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const Round& r = rounds[i];
    if (i > 0) json << ",";
    json << "\n    {\"total_partitions\": " << r.partitions
         << ", \"flat_millis\": " << r.flat.millis
         << ", \"flat_metadata_reads\": " << r.flat.stats.metadata_reads
         << ", \"flat_chunks_total\": " << r.flat.stats.chunks_total
         << ", \"partitioned_millis\": " << r.part.millis
         << ", \"partitioned_metadata_reads\": "
         << r.part.stats.metadata_reads
         << ", \"partitioned_chunks_total\": " << r.part.stats.chunks_total
         << ", \"partitions_scanned\": " << r.part.stats.partitions_scanned
         << ", \"partitions_pruned\": " << r.part.stats.partitions_pruned
         << "}";
  }
  json << "\n  ],\n"
       << "  \"partitioned_metadata_cost_flat_in_total_size\": "
       << (pruned_cost_flat ? "true" : "false") << ",\n"
       << "  \"flat_metadata_cost_grows_with_total_size\": "
       << (flat_cost_grows ? "true" : "false") << "\n}\n";
  if (!json.good()) {
    std::fprintf(stderr, "short write to BENCH_partition.json\n");
    return 1;
  }
  return (pruned_cost_flat && flat_cost_grows) ? 0 : 1;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
