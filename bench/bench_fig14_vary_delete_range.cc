// Figure 14: M4 query latency vs delete time range length.
//
// Paper shape: M4-UDF *decreases* as delete ranges grow — especially on the
// skewed KOB/RcvTime datasets, where wide deletes wipe out entire short
// chunks and there is simply less data to merge. M4-LSM stays small
// throughout: candidate points are robust under deletes, and fully-deleted
// chunks are pruned from metadata alone.

#include <cstdio>
#include <vector>

#include "harness.h"

namespace tsviz::bench {
namespace {

int Run() {
  const double scale = ScaleFromEnv();
  // Delete count fixed at 10% of chunks; range length scales with the
  // targeted chunk's interval.
  const std::vector<double> range_scales = {0.1, 0.2, 0.4, 0.8, 1.6};

  ResultTable table({"dataset", "range_scale", "udf_ms", "lsm_ms", "speedup",
                     "udf_points", "lsm_points"});
  for (DatasetKind kind : AllDatasetKinds()) {
    for (double range_scale : range_scales) {
      StorageSpec spec;
      spec.overlap_fraction = 0.1;
      spec.delete_fraction = 0.1;
      spec.delete_range_scale = range_scale;
      auto built = BuildDatasetStore(kind, scale, spec);
      if (!built.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      M4Query query{built->data_range.start, built->data_range.end + 1,
                    1000};
      auto comparison = CompareOperators(*built->store, query);
      if (!comparison.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     comparison.status().ToString().c_str());
        return 1;
      }
      const Measurement& udf = comparison->udf;
      const Measurement& lsm = comparison->lsm;
      char scale_label[16];
      std::snprintf(scale_label, sizeof(scale_label), "%.1fx", range_scale);
      table.AddRow({DatasetName(kind), scale_label, FormatMillis(udf.millis),
                    FormatMillis(lsm.millis),
                    FormatMillis(udf.millis / std::max(lsm.millis, 1e-3)),
                    FormatCount(udf.stats.points_scanned),
                    FormatCount(lsm.stats.points_scanned)});
    }
  }
  std::printf(
      "Figure 14: varying delete time range length (w=1000, scale=%.3f)\n\n",
      scale);
  table.Print();
  if (Status s = table.WriteCsv("fig14_vary_delete_range"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsviz::bench

int main() { return tsviz::bench::Run(); }
