// Quickstart: open a store, write a series, run an M4 representation query
// with the merge-free M4-LSM operator, and print the rows.
//
//   ./build/examples/quickstart [data_dir]

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "m4/m4_lsm.h"
#include "m4/m4_udf.h"
#include "storage/store.h"

using namespace tsviz;  // examples favor brevity; library code never does

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/tsviz_quickstart";
  std::filesystem::remove_all(dir);

  // 1. Open (create) a single-series LSM store.
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 1000;  // IoTDB's avg_series_point_number_threshold
  auto store_or = TsStore::Open(config);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TsStore> store = std::move(store_or).value();

  // 2. Write a noisy sine wave sampled once a second for a day; the store
  //    flushes chunks to disk automatically every 1000 points.
  const Timestamp start = 1700000000LL * 1000000;  // microseconds
  const int n = 86400;
  for (int i = 0; i < n; ++i) {
    double v = 100.0 * std::sin(i / 600.0) + (i % 17) * 0.3;
    if (auto s = store->Write(start + i * 1000000LL, v); !s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (auto s = store->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("stored %llu points in %zu chunks\n",
              static_cast<unsigned long long>(store->TotalStoredPoints()),
              store->chunks().size());

  // 3. Delete a faulty sensor window; the store records a range tombstone.
  if (auto s = store->DeleteRange(
          TimeRange(start + 3600 * 1000000LL, start + 5400 * 1000000LL));
      !s.ok()) {
    std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. M4 representation query: the whole day in 12 pixel columns.
  M4Query query{start, start + n * 1000000LL, 12};
  QueryStats stats;
  auto rows_or = RunM4Lsm(*store, query, &stats);
  if (!rows_or.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows_or.status().ToString().c_str());
    return 1;
  }

  std::printf("\nM4 rows (first/last/bottom/top per pixel column):\n");
  const M4Result& rows = *rows_or;
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("  column %2zu: %s\n", i, rows[i].ToString().c_str());
  }
  std::printf("\nmerge-free cost: %s\n", stats.ToString().c_str());

  // 5. Sanity: the baseline operator returns an equivalent representation.
  auto udf_or = RunM4Udf(*store, query, nullptr);
  if (!udf_or.ok() || !ResultsEquivalent(rows, *udf_or)) {
    std::fprintf(stderr, "operators disagree!\n");
    return 1;
  }
  std::printf("M4-LSM output verified against the M4-UDF baseline.\n");
  return 0;
}
