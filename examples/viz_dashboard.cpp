// Visualization dashboard: runs the M4 query at screen resolution, renders
// the binary line chart from just the 4w representation points, writes it as
// a PGM image, and verifies it is pixel-identical to rendering every stored
// point (the Figure 1 claim).
//
//   ./build/examples/viz_dashboard [data_dir] [out.pgm]

#include <cstdio>
#include <filesystem>

#include "m4/m4_lsm.h"
#include "read/series_reader.h"
#include "storage/store.h"
#include "viz/pixel_diff.h"
#include "viz/rasterize.h"
#include "workload/generator.h"

using namespace tsviz;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/tsviz_dashboard";
  std::string out = argc > 2 ? argv[2] : "/tmp/tsviz_dashboard.pgm";
  std::filesystem::remove_all(dir);

  StoreConfig config;
  config.data_dir = dir;
  auto store_or = TsStore::Open(config);
  if (!store_or.ok()) return 1;
  std::unique_ptr<TsStore> store = std::move(store_or).value();

  // A BallSpeed-like 1M-point series: idle noise punctuated by kicks.
  DatasetSpec spec;
  spec.kind = DatasetKind::kBallSpeed;
  spec.num_points = 1000000;
  if (!store->WriteAll(GenerateDataset(spec)).ok() || !store->Flush().ok()) {
    return 1;
  }

  const int width = 1000;
  const int height = 500;
  TimeRange range = store->DataInterval();
  M4Query query{range.start, range.end + 1, width};

  Timer timer;
  QueryStats stats;
  auto rows = RunM4Lsm(*store, query, &stats);
  if (!rows.ok()) return 1;
  double query_ms = timer.ElapsedMillis();

  // Render the chart from the representation points only.
  std::vector<Point> polyline = M4Polyline(*rows);
  CanvasSpec canvas = FitCanvas(polyline, query, width, height);
  Bitmap chart = RasterizeM4(*rows, canvas);
  if (auto s = chart.WritePgm(out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("M4-LSM visualized %llu points as %zu representation points "
              "in %.1f ms (%s)\n",
              static_cast<unsigned long long>(store->TotalStoredPoints()),
              polyline.size(), query_ms, stats.ToString().c_str());
  std::printf("chart written to %s (%dx%d, %llu lit pixels)\n", out.c_str(),
              width, height,
              static_cast<unsigned long long>(chart.CountSet()));

  // Ground truth: rasterize the fully merged series and compare.
  auto merged = ReadMergedSeries(*store, range, nullptr);
  if (!merged.ok()) return 1;
  Bitmap truth = RasterizeSeries(*merged, canvas);
  PixelAccuracyReport report = ComparePixels(truth, chart);
  std::printf("pixel check vs full rendering: %s\n",
              report.ToString().c_str());

  // A small ASCII preview of the chart.
  std::printf("\n%s", chart.ToAscii(100).c_str());
  return report.differing_pixels == 0 ? 0 : 1;
}
