// Fleet monitor: a multi-series deployment. Several sensors stream into one
// Database; the dashboard runs merge-free M4 queries per sensor (in
// parallel for the big one), GroupBy aggregations for the summary tiles,
// and renders one chart per sensor.
//
//   ./build/examples/fleet_monitor [db_dir]

#include <cstdio>
#include <filesystem>

#include "db/database.h"
#include "m4/aggregate.h"
#include "m4/parallel.h"
#include "viz/rasterize.h"
#include "workload/generator.h"

using namespace tsviz;

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/tsviz_fleet";
  std::filesystem::remove_all(root);

  DatabaseConfig config;
  config.root_dir = root;
  auto db_or = Database::Open(config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  // Ingest: four sensors with different characteristics.
  struct Sensor {
    const char* name;
    DatasetKind kind;
    size_t points;
  };
  const Sensor sensors[] = {
      {"turbine.speed", DatasetKind::kBallSpeed, 400000},
      {"line3.power", DatasetKind::kMf03, 300000},
      {"boiler.temp", DatasetKind::kKob, 60000},
      {"gateway.rcv", DatasetKind::kRcvTime, 40000},
  };
  for (const Sensor& sensor : sensors) {
    DatasetSpec spec;
    spec.kind = sensor.kind;
    spec.num_points = sensor.points;
    auto store = db->GetOrCreateSeries(sensor.name);
    if (!store.ok() || !(*store)->WriteAll(GenerateDataset(spec)).ok()) {
      return 1;
    }
  }
  if (!db->FlushAll().ok()) return 1;

  std::printf("fleet: %zu series ingested\n\n", db->ListSeries().size());

  // Dashboard: per-sensor M4 at 400 columns + min/max/avg summary tiles.
  for (const Sensor& sensor : sensors) {
    auto store = db->GetSeries(sensor.name);
    if (!store.ok()) return 1;
    TimeRange range = (*store)->DataInterval();
    M4Query query{range.start, range.end + 1, 400};

    Timer timer;
    QueryStats stats;
    auto rows = sensor.points > 100000
                    ? RunM4LsmParallel(**store, query, 4, &stats)
                    : RunM4Lsm(**store, query, &stats);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
      return 1;
    }
    double ms = timer.ElapsedMillis();

    auto mins = RunGroupBy(**store, query, Aggregation::kMin, nullptr);
    auto maxs = RunGroupBy(**store, query, Aggregation::kMax, nullptr);
    auto avgs = RunGroupBy(**store, query, Aggregation::kAvg, nullptr);
    if (!mins.ok() || !maxs.ok() || !avgs.ok()) return 1;
    double global_min = 0;
    double global_max = 0;
    double avg_sum = 0;
    size_t avg_n = 0;
    bool first = true;
    for (size_t i = 0; i < mins->size(); ++i) {
      if (!(*mins)[i].has_data) continue;
      if (first) {
        global_min = (*mins)[i].value;
        global_max = (*maxs)[i].value;
        first = false;
      } else {
        global_min = std::min(global_min, (*mins)[i].value);
        global_max = std::max(global_max, (*maxs)[i].value);
      }
      avg_sum += (*avgs)[i].value;
      ++avg_n;
    }

    std::vector<Point> polyline = M4Polyline(*rows);
    CanvasSpec canvas = FitCanvas(polyline, query, 400, 120);
    Bitmap chart = RasterizeM4(*rows, canvas);
    std::string out = root + "/" + sensor.name + ".pgm";
    if (!chart.WritePgm(out).ok()) return 1;

    std::printf("%-14s %8zu pts  m4 %.1fms (%llu/%llu chunks loaded)  "
                "min %.2f  max %.2f  avg %.2f  -> %s\n",
                sensor.name, sensor.points, ms,
                static_cast<unsigned long long>(stats.chunks_loaded),
                static_cast<unsigned long long>(stats.chunks_total),
                global_min, global_max,
                avg_n > 0 ? avg_sum / static_cast<double>(avg_n) : 0.0,
                out.c_str());
  }
  return 0;
}
