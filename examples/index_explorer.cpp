// Index explorer: fits the step-regression chunk index (Section 3.5) on a
// gap-laden chunk, dumps its tilt/level segments, and exercises the three
// lookup operations of Definition 3.5 while counting decoded pages.
//
//   ./build/examples/index_explorer

#include <cstdio>
#include <filesystem>

#include "index/chunk_searcher.h"
#include "read/lazy_chunk.h"
#include "storage/store.h"

using namespace tsviz;

int main() {
  std::string dir = "/tmp/tsviz_index_explorer";
  std::filesystem::remove_all(dir);

  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 1000;
  config.encoding.page_size_points = 100;
  auto store_or = TsStore::Open(config);
  if (!store_or.ok()) return 1;
  std::unique_ptr<TsStore> store = std::move(store_or).value();

  // One chunk: 9-second cadence with two transmission interruptions —
  // the running example of Section 3.5.
  Timestamp t = 1639966606000000;  // microseconds
  for (int i = 0; i < 1000; ++i) {
    if (!store->Write(t, i * 0.5).ok()) return 1;
    t += 9000000;
    if (i == 241) t += 6800000000;  // ~113 min outage
    if (i == 700) t += 1800000000;  // ~30 min outage
  }
  if (!store->Flush().ok()) return 1;

  const ChunkHandle& handle = store->chunks()[0];
  const StepRegressionModel& model = handle.meta->index;
  std::printf("step regression for a %llu-point chunk:\n",
              static_cast<unsigned long long>(model.count));
  std::printf("  slope K = %.10g positions/us (1/median-delta)\n", model.k);
  std::printf("  %zu segments (odd = tilt, even = level):\n",
              model.SegmentCount());
  for (size_t i = 0; i + 1 < model.splits.size(); ++i) {
    std::printf("    segment %zu [%lld, %lld%c: %s, intercept %.4f\n", i + 1,
                static_cast<long long>(model.splits[i]),
                static_cast<long long>(model.splits[i + 1]),
                i + 2 == model.splits.size() ? ']' : ')',
                i % 2 == 0 ? "tilt " : "level", model.intercepts[i]);
  }
  std::printf("  f(first.t) = %.2f, f(last.t) = %.2f  (Proposition 3.7)\n\n",
              model.Eval(handle.meta->stats.first.t),
              model.Eval(handle.meta->stats.last.t));

  QueryStats stats;
  LazyChunk chunk(handle, &stats);
  ChunkSearcher searcher(&chunk, &model, LocateStrategy::kStepRegression,
                         &stats);

  // (a) existence probe, (b-1) closest after, (b-2) closest before.
  Timestamp probe = handle.meta->stats.first.t + 450 * 9000000LL;
  auto exact = searcher.FindExact(probe);
  auto after = searcher.FirstAtOrAfter(probe + 1);
  auto before = searcher.LastAtOrBefore(probe - 1);
  if (!exact.ok() || !after.ok() || !before.ok()) return 1;

  auto describe = [](const char* tag,
                     const std::optional<PointPos>& hit) {
    if (hit.has_value()) {
      std::printf("  %-18s -> position %zu, t=%lld, v=%.2f\n", tag, hit->pos,
                  static_cast<long long>(hit->point.t), hit->point.v);
    } else {
      std::printf("  %-18s -> (none)\n", tag);
    }
  };
  std::printf("lookups around t=%lld:\n", static_cast<long long>(probe));
  describe("FindExact", *exact);
  describe("FirstAtOrAfter+1", *after);
  describe("LastAtOrBefore-1", *before);
  std::printf("\ncost: %s\n", stats.ToString().c_str());
  std::printf("(three point lookups in a 10-page chunk decoded only %llu "
              "pages)\n",
              static_cast<unsigned long long>(stats.pages_decoded));
  return 0;
}
