// Out-of-order ingestion: demonstrates how late arrivals create overlapping
// chunks (the LSM state of Figure 2(a)), how updates and deletes resolve by
// version number (Figure 5), and that M4-LSM answers correctly on top of all
// of it while loading only a fraction of the chunks.
//
//   ./build/examples/ooo_ingestion [data_dir]

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "m4/m4_lsm.h"
#include "m4/m4_udf.h"
#include "storage/store.h"
#include "workload/generator.h"
#include "workload/ooo.h"

using namespace tsviz;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/tsviz_ooo";
  std::filesystem::remove_all(dir);

  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = 1000;
  auto store_or = TsStore::Open(config);
  if (!store_or.ok()) return 1;
  std::unique_ptr<TsStore> store = std::move(store_or).value();

  // Generate a KOB-like (time-skewed) series and scramble its arrival
  // order so ~30% of the flushed chunks overlap in time.
  DatasetSpec spec;
  spec.kind = DatasetKind::kKob;
  spec.num_points = 100000;
  std::vector<Point> points = GenerateDataset(spec);
  Rng rng(1);
  std::vector<Point> arrivals = MakeOverlappingOrder(
      points, config.points_per_chunk, 0.3, &rng);
  if (!store->WriteAll(arrivals).ok() || !store->Flush().ok()) return 1;
  std::printf("wrote %zu points out of order -> %zu chunks, %.1f%% "
              "overlapping in time\n",
              arrivals.size(), store->chunks().size(),
              store->OverlapFraction() * 100);

  // Re-write a window with corrected values (updates land in new chunks
  // with higher versions)...
  Timestamp fix_start = points[20000].t;
  Timestamp fix_end = points[20500].t;
  for (const Point& p : points) {
    if (p.t >= fix_start && p.t <= fix_end) {
      if (!store->Write(p.t, p.v + 1000.0).ok()) return 1;
    }
  }
  if (!store->Flush().ok()) return 1;
  // ...and delete a decommissioned sensor's window.
  if (!store->DeleteRange(TimeRange(points[50000].t, points[52000].t)).ok()) {
    return 1;
  }
  std::printf("applied 501 overwrites and 1 range delete\n\n");

  TimeRange range = store->DataInterval();
  // 50 pixel columns over ~100 chunks: most chunks sit inside one span.
  M4Query query{range.start, range.end + 1, 50};

  QueryStats lsm_stats;
  auto lsm = RunM4Lsm(*store, query, &lsm_stats);
  QueryStats udf_stats;
  auto udf = RunM4Udf(*store, query, &udf_stats);
  if (!lsm.ok() || !udf.ok()) return 1;

  std::printf("M4-UDF  : loaded %llu/%llu chunks, decoded %llu pages, "
              "scanned %llu points\n",
              static_cast<unsigned long long>(udf_stats.chunks_loaded),
              static_cast<unsigned long long>(udf_stats.chunks_total),
              static_cast<unsigned long long>(udf_stats.pages_decoded),
              static_cast<unsigned long long>(udf_stats.points_scanned));
  std::printf("M4-LSM  : loaded %llu/%llu chunks, decoded %llu pages, "
              "scanned %llu points, %llu index probes\n",
              static_cast<unsigned long long>(lsm_stats.chunks_loaded),
              static_cast<unsigned long long>(lsm_stats.chunks_total),
              static_cast<unsigned long long>(lsm_stats.pages_decoded),
              static_cast<unsigned long long>(lsm_stats.points_scanned),
              static_cast<unsigned long long>(lsm_stats.index_lookups));

  if (!ResultsEquivalent(*lsm, *udf)) {
    std::fprintf(stderr, "MISMATCH: %s\n",
                 FirstMismatch(*lsm, *udf).c_str());
    return 1;
  }
  std::printf("\nidentical M4 representations from both operators, "
              "with the merge-free one reading %.1f%% of the bytes\n",
              100.0 * static_cast<double>(lsm_stats.bytes_read) /
                  static_cast<double>(udf_stats.bytes_read));
  return 0;
}
