// Zoom session: simulates the interactive exploration the paper motivates —
// an analyst looks at the full series, zooms into a quarter of it four
// times, pans, and jumps back out. Each interaction is one M4 query at
// screen resolution; the query cache makes revisited views free.
//
//   ./build/examples/zoom_session [data_dir]

#include <cstdio>
#include <filesystem>

#include "m4/cache.h"
#include "storage/store.h"
#include "workload/generator.h"

using namespace tsviz;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/tsviz_zoom";
  std::filesystem::remove_all(dir);

  StoreConfig config;
  config.data_dir = dir;
  auto store_or = TsStore::Open(config);
  if (!store_or.ok()) return 1;
  std::unique_ptr<TsStore> store = std::move(store_or).value();

  DatasetSpec spec;
  spec.kind = DatasetKind::kMf03;
  spec.num_points = 1000000;
  if (!store->WriteAll(GenerateDataset(spec)).ok() || !store->Flush().ok()) {
    return 1;
  }
  TimeRange data = store->DataInterval();
  std::printf("series: %llu points over %lld us\n\n",
              static_cast<unsigned long long>(store->TotalStoredPoints()),
              static_cast<long long>(data.end - data.start));

  const int width = 1000;
  M4QueryCache cache(32);

  struct Step {
    const char* action;
    double frac_start;  // of the full range
    double frac_len;
  };
  // Zoom in 4x three times, pan right, zoom out to full, revisit.
  const Step session[] = {
      {"full view", 0.0, 1.0},       {"zoom 4x", 0.375, 0.25},
      {"zoom 16x", 0.4375, 0.0625},  {"zoom 64x", 0.453, 0.0156},
      {"pan right", 0.469, 0.0156},  {"zoom out", 0.0, 1.0},
      {"re-zoom 4x", 0.375, 0.25},   {"re-zoom 16x", 0.4375, 0.0625},
  };

  double total_len = static_cast<double>(data.end - data.start + 1);
  for (const Step& step : session) {
    M4Query query;
    query.tqs = data.start +
                static_cast<Timestamp>(total_len * step.frac_start);
    query.tqe = query.tqs +
                std::max<Timestamp>(
                    width, static_cast<Timestamp>(total_len * step.frac_len));
    query.w = width;

    Timer timer;
    QueryStats stats;
    auto rows = cache.GetOrCompute(*store, query, &stats);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
      return 1;
    }
    double ms = timer.ElapsedMillis();
    bool cached = stats.metadata_reads == 0;
    std::printf("%-11s  %7.2f ms  %s (chunks %llu/%llu, pages %llu)\n",
                step.action, ms, cached ? "cache hit " : "cache miss",
                static_cast<unsigned long long>(stats.chunks_loaded),
                static_cast<unsigned long long>(stats.chunks_total),
                static_cast<unsigned long long>(stats.pages_decoded));
  }
  std::printf("\ncache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  return 0;
}
