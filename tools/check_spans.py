#!/usr/bin/env python3
"""Lints the span taxonomy: every trace span name used in src/ must be
documented in docs/OBSERVABILITY.md, so the span table cannot silently
drift from the code. Run from anywhere; wired into ctest as `check_spans`.

Span names enter the tree three ways, all covered here:
  - obs::TraceSpan span(trace, "name")        -- phase spans
  - obs::Trace("name") / make_shared<obs::Trace>("name")  -- trace roots
  - TimedJob("name", ...)                     -- bg job phase spans
  - node.Child("name")                        -- directly grafted nodes

Usage: check_spans.py [repo_root]
"""

import re
import sys
from pathlib import Path

# Each pattern is bounded by the enclosing statement (no ';' inside the lazy
# match), so a literal in the *next* statement is never picked up. Span names
# passed as variables are deliberately invisible: their literal appears at
# the call site feeding the variable, which one of these patterns covers.
PATTERNS = [
    re.compile(r'TraceSpan\b[^;]*?"([a-z0-9_]+)"', re.S),
    re.compile(r'Trace\s+\w+\(\s*"([a-z0-9_]+)"'),
    re.compile(r'Trace>\(\s*"([a-z0-9_]+)"', re.S),
    re.compile(r'TimedJob\(\s*"([a-z0-9_]+)"', re.S),
    re.compile(r'\.Child\(\s*"([a-z0-9_]+)"', re.S),
]


def used_spans(src_root: Path) -> set[str]:
    names: set[str] = set()
    for path in sorted(src_root.rglob("*.cc")):
        text = path.read_text(encoding="utf-8")
        for pattern in PATTERNS:
            names.update(pattern.findall(text))
    return names


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    doc_path = root / "docs" / "OBSERVABILITY.md"
    if not doc_path.is_file():
        print(f"check_spans: missing {doc_path}", file=sys.stderr)
        return 1
    doc = doc_path.read_text(encoding="utf-8")

    names = used_spans(root / "src")
    if not names:
        print("check_spans: found no trace spans under src/ — the regexes "
              "are probably stale", file=sys.stderr)
        return 1

    missing = sorted(n for n in names if f"`{n}`" not in doc)
    if missing:
        print("check_spans: span names used in src/ but absent from "
              "docs/OBSERVABILITY.md:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1

    print(f"check_spans: {len(names)} span names, all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
