// tsviz command-line tool: manage a multi-series database, import/export
// CSV, run M4 representation queries, and render line charts.
//
// Usage:
//   tsviz_cli info    --db DIR [--series NAME]
//   tsviz_cli import  --db DIR --series NAME --csv FILE
//   tsviz_cli export  --db DIR --series NAME --csv FILE
//   tsviz_cli write   --db DIR --series NAME --t TIMESTAMP --v VALUE
//   tsviz_cli delete  --db DIR --series NAME --from T --to T
//   tsviz_cli m4      --db DIR --series NAME --w N [--from T --to T]
//                     [--csv FILE] [--threads N]
//   tsviz_cli render  --db DIR --series NAME --out FILE.pgm
//                     [--width N] [--height N]
//   tsviz_cli sql     --db DIR "SELECT M4(v) FROM s GROUP BY SPANS(100)"
//                     [--csv FILE]
//   tsviz_cli compact --db DIR [--series NAME]
//   tsviz_cli serve   --db DIR [--port N]        (line-protocol SQL server:
//                     epoll event loop, pipelined statements, admission
//                     control -- see docs/NETWORKING.md)
//
// Every subcommand also accepts --partition_interval_ms W: series created
// by the invocation store their files in time-partitioned groups of width
// W (existing series keep the width pinned in their partition.meta).
//
// The sql subcommand accepts every server statement, notably:
//   INSERT INTO s VALUES (t, v)[, (t, v) ...]   ingest points through SQL
//   FLUSH [series]                 persist memtables to data files
//   COMPACT [series]               merge each partition's files into one
//   SHOW METRICS                   Prometheus text exposition of all metrics
//   SHOW JOBS                      background maintenance scheduler state
//   SHOW SERIES                    per-series partition/file/chunk counts
//   SHOW QUERIES                   flight-recorder statement history
//   SHOW PROFILE [RESET]           merged span trees from sampled traces
//   SHOW REPLICATION               role, state, watermark, lag
//   DUMP TRACE '<path>'            export the recorder as Chrome trace JSON
//   SET <knob> = <n>               runtime knobs: autoflush_bytes,
//                                  compaction_files, idle_timeout_ms,
//                                  listen_backlog, max_connections,
//                                  max_staleness_ms, page_cache_bytes,
//                                  parallelism, partition_interval_ms,
//                                  repl_listen_port, result_cache_capacity,
//                                  slow_query_millis, trace_sample_every,
//                                  ttl_ms
//   SET repl_listen_port = <port>  become a replication primary (0 stops)
//   SET replica_of = '<host>:<p>'  follow a primary (read-only; 'off'
//                                  detaches); max_staleness_ms bounds how
//                                  stale a follower SELECT may be
//   EXPLAIN [ANALYZE] SELECT ...   plan / traced execution with stat:
//                                  counters (partitions_pruned, ...)

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "server/server.h"
#include "sql/executor.h"
#include "m4/parallel.h"
#include "read/series_reader.h"
#include "viz/rasterize.h"
#include "workload/csv.h"

namespace tsviz {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
        values_[arg.substr(2)] = argv[i + 1];
        ++i;
      } else {
        extra_.push_back(arg);
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::optional<int64_t> GetInt(const std::string& name) const {
    auto v = Get(name);
    if (!v.has_value()) return std::nullopt;
    return std::stoll(*v);
  }

  const std::vector<std::string>& extra() const { return extra_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> extra_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tsviz_cli "
      "{info|import|export|write|delete|m4|sql|render|compact|serve} "
      "--db DIR [options]\n"
      "\n"
      "sql statements (tsviz_cli sql --db DIR \"<statement>\"):\n"
      "  SELECT M4(v) FROM s WHERE time >= a AND time < b GROUP BY SPANS(w)\n"
      "  INSERT INTO s VALUES (t, v)[, (t, v) ...]\n"
      "  EXPLAIN [ANALYZE] SELECT ...   plan / traced run with stat: rows\n"
      "  FLUSH [series]                 persist memtables to data files\n"
      "  COMPACT [series]               merge partition files\n"
      "  SHOW METRICS | JOBS | SERIES   metrics, scheduler, storage shape\n"
      "  SHOW QUERIES | PROFILE [RESET] flight-recorder history / profile\n"
      "  SHOW REPLICATION               role, state, watermark, lag\n"
      "  DUMP TRACE '<path>'            recorder as Chrome trace JSON\n"
      "  SET replica_of = '<host>:<p>'  follow a primary ('off' detaches)\n"
      "  SET <knob> = <n>               %s\n"
      "\n"
      "(see the header of tools/tsviz_cli.cc for per-subcommand flags)\n",
      kValidSetKnobs);
  return 2;
}

Result<std::unique_ptr<Database>> OpenDb(const Flags& flags) {
  auto db_dir = flags.Get("db");
  if (!db_dir.has_value()) {
    return Status::InvalidArgument("--db DIR is required");
  }
  DatabaseConfig config;
  config.root_dir = *db_dir;
  // Applies to series created by this invocation; existing series keep the
  // interval pinned in their partition.meta manifest.
  config.series_defaults.partition_interval_ms =
      flags.GetInt("partition_interval_ms").value_or(0);
  return Database::Open(std::move(config));
}

// Query range: --from/--to if given, else the series' full data interval.
Result<M4Query> QueryFor(TsStore* store, const Flags& flags, int64_t w) {
  M4Query query;
  query.w = w;
  auto from = flags.GetInt("from");
  auto to = flags.GetInt("to");
  if (from.has_value() && to.has_value()) {
    query.tqs = *from;
    query.tqe = *to;
  } else {
    TimeRange data = store->DataInterval();
    if (data.Empty()) return Status::NotFound("series is empty");
    query.tqs = data.start;
    query.tqe = data.end + 1;
  }
  TSVIZ_RETURN_IF_ERROR(query.Validate());
  return query;
}

int CmdInfo(const Flags& flags) {
  auto db = OpenDb(flags);
  if (!db.ok()) return Fail(db.status().ToString());
  auto series = flags.Get("series");
  for (const std::string& name : (*db)->ListSeries()) {
    if (series.has_value() && *series != name) continue;
    auto store = (*db)->GetSeries(name);
    if (!store.ok()) return Fail(store.status().ToString());
    TimeRange range = (*store)->DataInterval();
    std::printf("%s: %llu points, %zu chunks, %zu deletes, overlap %.1f%%, "
                "range [%lld, %lld]\n",
                name.c_str(),
                static_cast<unsigned long long>(
                    (*store)->TotalStoredPoints()),
                (*store)->chunks().size(), (*store)->deletes().size(),
                (*store)->OverlapFraction() * 100,
                static_cast<long long>(range.start),
                static_cast<long long>(range.end));
  }
  return 0;
}

int CmdImport(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  auto csv = flags.Get("csv");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value() || !csv.has_value()) {
    return Fail("--series and --csv are required");
  }
  auto points = LoadPointsCsv(*csv);
  if (!points.ok()) return Fail(points.status().ToString());
  auto store = (*db)->GetOrCreateSeries(*series);
  if (!store.ok()) return Fail(store.status().ToString());
  if (Status s = (*store)->WriteAll(*points); !s.ok()) {
    return Fail(s.ToString());
  }
  if (Status s = (*store)->Flush(); !s.ok()) return Fail(s.ToString());
  std::printf("imported %zu points into %s\n", points->size(),
              series->c_str());
  return 0;
}

int CmdExport(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  auto csv = flags.Get("csv");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value() || !csv.has_value()) {
    return Fail("--series and --csv are required");
  }
  auto store = (*db)->GetSeries(*series);
  if (!store.ok()) return Fail(store.status().ToString());
  TimeRange range = (*store)->DataInterval();
  auto merged = ReadMergedSeries(**store, range, nullptr);
  if (!merged.ok()) return Fail(merged.status().ToString());
  if (Status s = SavePointsCsv(*merged, *csv); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("exported %zu live points from %s\n", merged->size(),
              series->c_str());
  return 0;
}

int CmdWrite(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  auto t = flags.GetInt("t");
  auto v = flags.Get("v");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value() || !t.has_value() || !v.has_value()) {
    return Fail("--series, --t and --v are required");
  }
  if (Status s = (*db)->Write(*series, *t, std::stod(*v)); !s.ok()) {
    return Fail(s.ToString());
  }
  if (Status s = (*db)->FlushAll(); !s.ok()) return Fail(s.ToString());
  return 0;
}

int CmdDelete(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  auto from = flags.GetInt("from");
  auto to = flags.GetInt("to");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value() || !from.has_value() || !to.has_value()) {
    return Fail("--series, --from and --to are required");
  }
  if (Status s = (*db)->DeleteRange(*series, TimeRange(*from, *to));
      !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("deleted [%lld, %lld] in %s\n",
              static_cast<long long>(*from), static_cast<long long>(*to),
              series->c_str());
  return 0;
}

int CmdM4(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value()) return Fail("--series is required");
  auto store = (*db)->GetSeries(*series);
  if (!store.ok()) return Fail(store.status().ToString());
  auto query = QueryFor(*store, flags, flags.GetInt("w").value_or(1000));
  if (!query.ok()) return Fail(query.status().ToString());

  QueryStats stats;
  Timer timer;
  int threads = static_cast<int>(flags.GetInt("threads").value_or(1));
  auto rows = threads > 1
                  ? RunM4LsmParallel(**store, *query, threads, &stats)
                  : RunM4Lsm(**store, *query, &stats);
  if (!rows.ok()) return Fail(rows.status().ToString());
  double ms = timer.ElapsedMillis();

  auto csv = flags.Get("csv");
  if (csv.has_value()) {
    std::FILE* out = std::fopen(csv->c_str(), "w");
    if (out == nullptr) return Fail("cannot open " + *csv);
    std::fprintf(out,
                 "span,first_t,first_v,last_t,last_v,bottom_t,bottom_v,"
                 "top_t,top_v\n");
    for (size_t i = 0; i < rows->size(); ++i) {
      const M4Row& row = (*rows)[i];
      if (!row.has_data) continue;
      std::fprintf(out, "%zu,%lld,%.17g,%lld,%.17g,%lld,%.17g,%lld,%.17g\n",
                   i, static_cast<long long>(row.first.t), row.first.v,
                   static_cast<long long>(row.last.t), row.last.v,
                   static_cast<long long>(row.bottom.t), row.bottom.v,
                   static_cast<long long>(row.top.t), row.top.v);
    }
    std::fclose(out);
  } else {
    for (size_t i = 0; i < rows->size(); ++i) {
      std::printf("span %4zu: %s\n", i, (*rows)[i].ToString().c_str());
    }
  }
  std::fprintf(stderr, "m4 over %lld spans in %.1f ms (%s)\n",
               static_cast<long long>(query->w), ms,
               stats.ToString().c_str());
  return 0;
}

int CmdRender(const Flags& flags) {
  auto db = OpenDb(flags);
  auto series = flags.Get("series");
  auto out = flags.Get("out");
  if (!db.ok()) return Fail(db.status().ToString());
  if (!series.has_value() || !out.has_value()) {
    return Fail("--series and --out are required");
  }
  auto store = (*db)->GetSeries(*series);
  if (!store.ok()) return Fail(store.status().ToString());
  int width = static_cast<int>(flags.GetInt("width").value_or(1000));
  int height = static_cast<int>(flags.GetInt("height").value_or(500));
  auto query = QueryFor(*store, flags, width);
  if (!query.ok()) return Fail(query.status().ToString());

  auto rows = RunM4Lsm(**store, *query, nullptr);
  if (!rows.ok()) return Fail(rows.status().ToString());
  std::vector<Point> polyline = M4Polyline(*rows);
  CanvasSpec canvas = FitCanvas(polyline, *query, width, height);
  Bitmap chart = RasterizeM4(*rows, canvas);
  if (Status s = chart.WritePgm(*out); !s.ok()) return Fail(s.ToString());
  std::printf("rendered %s (%dx%d) from %zu representation points\n",
              out->c_str(), width, height, polyline.size());
  return 0;
}

int CmdSql(const Flags& flags) {
  auto db = OpenDb(flags);
  if (!db.ok()) return Fail(db.status().ToString());
  if (flags.extra().empty()) {
    return Fail("usage: tsviz_cli sql --db DIR \"SELECT ...\"");
  }
  std::string statement;
  for (const std::string& part : flags.extra()) {
    if (!statement.empty()) statement += ' ';
    statement += part;
  }
  QueryStats stats;
  Timer timer;
  auto result = sql::ExecuteQuery(db->get(), statement, &stats);
  if (!result.ok()) return Fail(result.status().ToString());
  double ms = timer.ElapsedMillis();
  auto csv = flags.Get("csv");
  if (csv.has_value()) {
    std::FILE* out = std::fopen(csv->c_str(), "w");
    if (out == nullptr) return Fail("cannot open " + *csv);
    std::string text = result->ToCsv();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  } else {
    std::printf("%s", result->ToString().c_str());
  }
  std::fprintf(stderr, "%zu rows in %.1f ms (%s)\n", result->num_rows(), ms,
               stats.ToString().c_str());
  return 0;
}

int CmdCompact(const Flags& flags) {
  auto db = OpenDb(flags);
  if (!db.ok()) return Fail(db.status().ToString());
  auto series = flags.Get("series");
  for (const std::string& name : (*db)->ListSeries()) {
    if (series.has_value() && *series != name) continue;
    auto store = (*db)->GetSeries(name);
    if (!store.ok()) return Fail(store.status().ToString());
    Timer timer;
    if (Status s = (*store)->Compact(); !s.ok()) return Fail(s.ToString());
    std::printf("compacted %s in %.1f ms (%zu chunks)\n", name.c_str(),
                timer.ElapsedMillis(), (*store)->chunks().size());
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  auto db = OpenDb(flags);
  if (!db.ok()) return Fail(db.status().ToString());
  int port = static_cast<int>(flags.GetInt("port").value_or(5555));
  SqlServer server(db->get());
  if (Status s = server.Start(port); !s.ok()) return Fail(s.ToString());
  std::printf("serving SQL on 127.0.0.1:%d — one statement per line, "
              "'quit' to disconnect, Ctrl-C to stop\n",
              server.port());
  // Serve until killed.
  while (true) {
    ::pause();
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv);
  if (command == "info") return CmdInfo(flags);
  if (command == "import") return CmdImport(flags);
  if (command == "export") return CmdExport(flags);
  if (command == "write") return CmdWrite(flags);
  if (command == "delete") return CmdDelete(flags);
  if (command == "m4") return CmdM4(flags);
  if (command == "render") return CmdRender(flags);
  if (command == "sql") return CmdSql(flags);
  if (command == "compact") return CmdCompact(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}

}  // namespace
}  // namespace tsviz

int main(int argc, char** argv) { return tsviz::Main(argc, argv); }
