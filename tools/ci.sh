#!/usr/bin/env bash
# Full pre-PR gate: builds and tests every preset (default, tsan, asan),
# re-runs the crash/fault torture suite standalone under asan, and lints
# the metrics catalog and crash-point coverage against the docs/tests.
#
# Usage: tools/ci.sh [preset ...]
#   With no arguments all three presets run. Pass a subset (e.g.
#   `tools/ci.sh default`) for a quicker local loop.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset" >/dev/null
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

# The torture tests already run inside each preset's ctest pass; re-run
# them standalone under asan so a crash-recovery regression fails loudly
# even when someone trims the main test pass, and so the label stays wired.
for preset in "${presets[@]}"; do
  if [ "$preset" = "asan" ]; then
    echo "=== [asan] crash/fault torture ==="
    ctest --preset asan -L torture --output-on-failure
  fi
done

# Same idea for the network subsystem: the event loop, worker pool, and
# backpressure paths are where data races would live, so the net tests get
# a dedicated standalone pass under tsan.
for preset in "${presets[@]}"; do
  if [ "$preset" = "tsan" ]; then
    echo "=== [tsan] net subsystem ==="
    ctest --preset tsan -L net --output-on-failure
  fi
done

# The sharded series catalog's concurrency hammer (creates/drops/listings/
# maintenance ticks racing across shards) only bites with the race detector
# on, so the catalog label gets the same standalone tsan pass.
for preset in "${presets[@]}"; do
  if [ "$preset" = "tsan" ]; then
    echo "=== [tsan] sharded catalog ==="
    ctest --preset tsan -L catalog --output-on-failure
  fi
done

# Replication: the relay workers, applier thread, heartbeat and client
# reads all race, so the repl label gets a standalone tsan pass; the
# fork-kill replication torture additionally carries the torture label, so
# the asan torture rerun above covers its crash-recovery paths too.
for preset in "${presets[@]}"; do
  if [ "$preset" = "tsan" ]; then
    echo "=== [tsan] replication ==="
    ctest --preset tsan -L repl --output-on-failure
  fi
done

echo "=== metrics catalog lint ==="
python3 tools/check_metrics.py

echo "=== crash-point coverage lint ==="
python3 tools/check_crashpoints.py

echo "=== span taxonomy lint ==="
python3 tools/check_spans.py

echo "ci.sh: all green (${presets[*]})"
