#!/usr/bin/env bash
# Full pre-PR gate: builds and tests every preset (default, tsan, asan)
# and lints the metrics catalog against docs/OBSERVABILITY.md.
#
# Usage: tools/ci.sh [preset ...]
#   With no arguments all three presets run. Pass a subset (e.g.
#   `tools/ci.sh default`) for a quicker local loop.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset" >/dev/null
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$jobs"
done

echo "=== metrics catalog lint ==="
python3 tools/check_metrics.py

echo "ci.sh: all green (${presets[*]})"
