#!/usr/bin/env python3
"""Lints crash-point coverage: every TSVIZ_CRASHPOINT("...") registered in
src/ must appear in tests/fault_torture_test.cc (whose discovery test then
proves the torture script actually reaches it). A crash point nobody
tortures is a recovery guarantee nobody checks. Run from anywhere; wired
into ctest as `check_crashpoints`.

Usage: check_crashpoints.py [repo_root]
"""

import re
import sys
from pathlib import Path

CRASHPOINT = re.compile(r'TSVIZ_CRASHPOINT\(\s*"([a-z0-9_.]+)"')


def registered_crashpoints(src_root: Path) -> set[str]:
    names: set[str] = set()
    for path in sorted(src_root.rglob("*.cc")):
        names.update(CRASHPOINT.findall(path.read_text(encoding="utf-8")))
    return names


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    test_path = root / "tests" / "fault_torture_test.cc"
    if not test_path.is_file():
        print(f"check_crashpoints: missing {test_path}", file=sys.stderr)
        return 1
    test_source = test_path.read_text(encoding="utf-8")

    names = registered_crashpoints(root / "src")
    if not names:
        print("check_crashpoints: found no TSVIZ_CRASHPOINT under src/ — "
              "the regex is probably stale", file=sys.stderr)
        return 1

    missing = sorted(n for n in names if f'"{n}"' not in test_source)
    if missing:
        print("check_crashpoints: crash points registered in src/ but never "
              "exercised by tests/fault_torture_test.cc:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1

    print(f"check_crashpoints: {len(names)} crash points, all tortured")
    return 0


if __name__ == "__main__":
    sys.exit(main())
