#!/usr/bin/env python3
"""Lints crash-point coverage: every TSVIZ_CRASHPOINT("...") registered in
src/ must appear in the torture test that exercises its subsystem — storage
points (flush.*, wal.*, compact.*, ttl.*) in tests/fault_torture_test.cc,
replication points (repl.*) in tests/repl_torture_test.cc — whose discovery
tests then prove the torture scripts actually reach them. A crash point
nobody tortures is a recovery guarantee nobody checks. Run from anywhere;
wired into ctest as `check_crashpoints`.

Usage: check_crashpoints.py [repo_root]
"""

import re
import sys
from pathlib import Path

CRASHPOINT = re.compile(r'TSVIZ_CRASHPOINT\(\s*"([a-z0-9_.]+)"')


def registered_crashpoints(src_root: Path) -> set[str]:
    names: set[str] = set()
    for path in sorted(src_root.rglob("*.cc")):
        names.update(CRASHPOINT.findall(path.read_text(encoding="utf-8")))
    return names


def torture_test_for(name: str) -> str:
    if name.startswith("repl."):
        return "repl_torture_test.cc"
    return "fault_torture_test.cc"


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    sources: dict[str, str] = {}
    for test_name in ("fault_torture_test.cc", "repl_torture_test.cc"):
        test_path = root / "tests" / test_name
        if not test_path.is_file():
            print(f"check_crashpoints: missing {test_path}", file=sys.stderr)
            return 1
        sources[test_name] = test_path.read_text(encoding="utf-8")

    names = registered_crashpoints(root / "src")
    if not names:
        print("check_crashpoints: found no TSVIZ_CRASHPOINT under src/ — "
              "the regex is probably stale", file=sys.stderr)
        return 1

    missing = sorted(n for n in names
                     if f'"{n}"' not in sources[torture_test_for(n)])
    if missing:
        print("check_crashpoints: crash points registered in src/ but never "
              "exercised by their torture test:", file=sys.stderr)
        for name in missing:
            print(f"  {name} (expected in tests/{torture_test_for(name)})",
                  file=sys.stderr)
        return 1

    print(f"check_crashpoints: {len(names)} crash points, all tortured")
    return 0


if __name__ == "__main__":
    sys.exit(main())
