#!/usr/bin/env python3
"""Lints the metric catalog: every metric name registered in src/ must be
documented in docs/OBSERVABILITY.md, so the docs cannot silently drift from
the code. Run from anywhere; wired into ctest as `check_metrics`.

Usage: check_metrics.py [repo_root]
"""

import re
import sys
from pathlib import Path

# Matches the registration calls, tolerating a line break between the call
# and the name literal (clang-format wraps long help strings).
REGISTRATION = re.compile(
    r'(?:GetCounter|GetGauge|GetHistogram|RegisterCallback)\(\s*"([a-z0-9_]+)"'
)


def registered_metrics(src_root: Path) -> set[str]:
    names: set[str] = set()
    for path in sorted(src_root.rglob("*.cc")):
        names.update(REGISTRATION.findall(path.read_text(encoding="utf-8")))
    return names


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    doc_path = root / "docs" / "OBSERVABILITY.md"
    if not doc_path.is_file():
        print(f"check_metrics: missing {doc_path}", file=sys.stderr)
        return 1
    doc = doc_path.read_text(encoding="utf-8")

    names = registered_metrics(root / "src")
    if not names:
        print("check_metrics: found no registered metrics under src/ — "
              "the regex is probably stale", file=sys.stderr)
        return 1

    missing = sorted(n for n in names if n not in doc)
    if missing:
        print("check_metrics: metrics registered in src/ but absent from "
              "docs/OBSERVABILITY.md:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1

    print(f"check_metrics: {len(names)} metrics, all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
