#include "encoding/ts2diff.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace tsviz {
namespace {

void ExpectRoundTrip(const std::vector<Timestamp>& ts) {
  std::string buf;
  ASSERT_OK(EncodeTs2Diff(ts, &buf));
  std::string_view view = buf;
  std::vector<Timestamp> decoded;
  ASSERT_OK(DecodeTs2Diff(&view, ts.size(), &decoded));
  EXPECT_EQ(decoded, ts);
  EXPECT_TRUE(view.empty());
}

TEST(Ts2DiffTest, EmptyAndSingle) {
  ExpectRoundTrip({});
  ExpectRoundTrip({1234567890});
  ExpectRoundTrip({-5});  // negative timestamps are legal
}

TEST(Ts2DiffTest, RegularCadenceCompressesToOneByteishPerPoint) {
  std::vector<Timestamp> ts;
  for (int i = 0; i < 10000; ++i) ts.push_back(1600000000000LL + i * 9000LL);
  std::string buf;
  ASSERT_OK(EncodeTs2Diff(ts, &buf));
  // first ts (8 bytes) + first delta (2 bytes) + 9998 zero deltas (1 byte).
  EXPECT_LT(buf.size(), 10100u);
  std::string_view view = buf;
  std::vector<Timestamp> decoded;
  ASSERT_OK(DecodeTs2Diff(&view, ts.size(), &decoded));
  EXPECT_EQ(decoded, ts);
}

TEST(Ts2DiffTest, IrregularWithGaps) {
  std::vector<Timestamp> ts = {0, 10, 20, 1000000, 1000010, 1000021, 5000000};
  ExpectRoundTrip(ts);
}

TEST(Ts2DiffTest, RandomIncreasingRoundTrip) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<Timestamp> ts;
    Timestamp t = rng.Uniform(-1000000, 1000000);
    size_t n = static_cast<size_t>(rng.Uniform(1, 2000));
    for (size_t i = 0; i < n; ++i) {
      ts.push_back(t);
      t += rng.Uniform(1, 100000);
    }
    ExpectRoundTrip(ts);
  }
}

TEST(Ts2DiffTest, RejectsNonIncreasing) {
  std::string buf;
  EXPECT_EQ(EncodeTs2Diff({10, 10}, &buf).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodeTs2Diff({10, 5}, &buf).code(),
            StatusCode::kInvalidArgument);
}

TEST(Ts2DiffTest, TruncatedStreamIsCorruption) {
  std::vector<Timestamp> ts = {0, 100, 200, 300};
  std::string buf;
  ASSERT_OK(EncodeTs2Diff(ts, &buf));
  std::string truncated = buf.substr(0, buf.size() - 1);
  std::string_view view = truncated;
  std::vector<Timestamp> decoded;
  EXPECT_EQ(DecodeTs2Diff(&view, ts.size(), &decoded).code(),
            StatusCode::kCorruption);
}

TEST(Ts2DiffTest, CorruptDeltaDetected) {
  // Hand-build a stream whose second delta drives the cadence negative.
  std::string buf;
  ASSERT_OK(EncodeTs2Diff({0, 10, 20}, &buf));
  // Append a bogus decoded count: claim 4 points so the decoder reads into
  // garbage. The remaining bytes are empty -> corruption.
  std::string_view view = buf;
  std::vector<Timestamp> decoded;
  EXPECT_EQ(DecodeTs2Diff(&view, 4, &decoded).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace tsviz
