#include "bg/maintenance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "db/database.h"
#include "m4/m4_lsm.h"
#include "read/series_reader.h"
#include "test_util.h"

namespace tsviz {
namespace {

using bg::MaintenanceOptions;
using std::chrono::milliseconds;

DatabaseConfig SmallConfig(const std::string& root) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 50;
  // Huge point-count threshold: flushing is the maintenance policy's call.
  config.series_defaults.memtable_flush_threshold = 1u << 20;
  config.series_defaults.encoding.page_size_points = 16;
  return config;
}

// Policy evaluation driven manually through Tick(): the periodic loop is
// disabled so each test controls exactly when policy runs.
DatabaseConfig ManualTickConfig(const std::string& root) {
  DatabaseConfig config = SmallConfig(root);
  config.maintenance.enabled = false;
  return config;
}

template <typename Pred>
bool Eventually(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

TEST(MaintenancePolicyTest, AutoFlushWhenMemtableCrossesBytes) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(ManualTickConfig(dir.path())));
  db->StartMaintenance();
  bg::MaintenanceManager& mgr = db->maintenance();
  mgr.set_memtable_flush_bytes(64);  // a couple of points
  for (int i = 0; i < 100; ++i) ASSERT_OK(db->Write("s", i, 1.0 * i));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("s"));
  EXPECT_EQ(store->NumFiles(), 0u);

  EXPECT_GE(mgr.Tick(), 1u);
  mgr.Drain();
  EXPECT_EQ(store->memtable_size(), 0u);
  EXPECT_EQ(store->NumFiles(), 1u);
  // Below the threshold nothing is enqueued.
  EXPECT_EQ(mgr.Tick(), 0u);
}

TEST(MaintenancePolicyTest, CompactionWhenFileCountCrosses) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(ManualTickConfig(dir.path())));
  db->StartMaintenance();
  bg::MaintenanceManager& mgr = db->maintenance();
  mgr.set_memtable_flush_bytes(0);
  mgr.set_compaction_files(3);
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetOrCreateSeries("s"));
  for (int file = 0; file < 3; ++file) {
    for (int i = 0; i < 30; ++i) {
      ASSERT_OK(store->Write(file * 100 + i, 1.0));
    }
    ASSERT_OK(store->Flush());
  }
  EXPECT_EQ(store->NumFiles(), 3u);

  EXPECT_GE(mgr.Tick(), 1u);
  mgr.Drain();
  EXPECT_EQ(store->NumFiles(), 1u);
  EXPECT_EQ(store->TotalStoredPoints(), 90u);
  EXPECT_EQ(mgr.Tick(), 0u);  // back under the threshold
}

TEST(MaintenancePolicyTest, TtlExpiryDeletesOldPointsAndReclaimsFiles) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(ManualTickConfig(dir.path())));
  db->StartMaintenance();
  bg::MaintenanceManager& mgr = db->maintenance();
  mgr.set_memtable_flush_bytes(0);
  mgr.set_compaction_files(0);
  mgr.set_ttl(100);
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetOrCreateSeries("s"));
  // One wholly-expired file (t <= 99) and one live file ending at t=999.
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(i * 2, 1.0));
  ASSERT_OK(store->Flush());
  for (int i = 0; i < 50; ++i) ASSERT_OK(store->Write(950 + i, 2.0));
  ASSERT_OK(store->Flush());

  // Watermark = 999 - 100 = 899: the tick enqueues both the expiry
  // tombstone and the reclaim compaction of the fully-expired file.
  EXPECT_GE(mgr.Tick(), 2u);
  mgr.Drain();
  // The expiry may land after the compaction job (same key, separate jobs);
  // a second tick reclaims whatever the first left behind.
  mgr.Tick();
  mgr.Drain();

  ASSERT_OK_AND_ASSIGN(std::vector<Point> live,
                       ReadMergedSeries(*store, TimeRange(0, 2000), nullptr));
  ASSERT_EQ(live.size(), 50u);
  for (const Point& p : live) EXPECT_GE(p.t, 899);
  EXPECT_GE(store->DataInterval().start, 899);
  // Once everything old is reclaimed the policy goes quiet.
  EXPECT_EQ(mgr.Tick(), 0u);
}

TEST(MaintenancePolicyTest, PeriodicLoopFlushesWithoutManualTicks) {
  TempDir dir;
  DatabaseConfig config = SmallConfig(dir.path());
  config.maintenance.tick_interval = milliseconds(1);
  config.maintenance.memtable_flush_bytes = 64;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(config));
  db->StartMaintenance();
  for (int i = 0; i < 100; ++i) ASSERT_OK(db->Write("s", i, 1.0));
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("s"));
  EXPECT_TRUE(Eventually([&] { return store->NumFiles() >= 1; }));
  EXPECT_TRUE(Eventually([&] { return store->memtable_size() == 0; }));
  db->StopMaintenance();
}

TEST(MaintenancePolicyTest, DropSeriesDuringMaintenanceIsSafe) {
  TempDir dir;
  DatabaseConfig config = SmallConfig(dir.path());
  config.maintenance.tick_interval = milliseconds(1);
  config.maintenance.memtable_flush_bytes = 1;  // flush on every tick
  config.maintenance.compaction_files = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(config));
  db->StartMaintenance();
  for (int round = 0; round < 10; ++round) {
    std::string name = "s" + std::to_string(round);
    for (int i = 0; i < 200; ++i) ASSERT_OK(db->Write(name, i, 1.0));
    std::this_thread::sleep_for(milliseconds(2));
    ASSERT_OK(db->DropSeries(name));
  }
  db->StopMaintenance();
  EXPECT_TRUE(db->ListSeries().empty());
}

// The acceptance invariant of the background subsystem: M4 results over a
// fixed window are bit-identical while flush, compaction and TTL expiry run
// concurrently with out-of-window ingestion. Layout:
//   [0, 1000)     junk the TTL progressively expires (watermark <= 1000)
//   [1000, 2000)  the queried window — never touched after setup
//   [2000, 3000)  the concurrent writer's territory
TEST(MaintenanceConcurrencyTest, M4ResultsInvariantUnderBackgroundWork) {
  TempDir dir;
  DatabaseConfig config = SmallConfig(dir.path());
  config.maintenance.tick_interval = milliseconds(1);
  config.maintenance.memtable_flush_bytes = 48 * 8;  // flush every ~8 points
  config.maintenance.compaction_files = 2;
  // Watermark = data_end - ttl <= 3000 - 2000 = 1000: junk-only expiry.
  config.maintenance.ttl = 2000;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(config));
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(db->Write("s", i * 2, -1.0));  // junk
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(db->Write("s", 1000 + i * 2, std::sin(i * 0.1) * 100));
  }
  ASSERT_OK(db->FlushAll());

  const M4Query query{1000, 2000, 37};  // deliberately non-divisor width
  ASSERT_OK_AND_ASSIGN(M4Result expected, db->QueryM4("s", query, nullptr));

  db->StartMaintenance();
  std::atomic<bool> stop{false};
  std::atomic<int> written{0};
  std::thread writer([&] {
    // Ascending out-of-window writes; each one nudges the TTL watermark
    // upward and feeds the auto-flush/compaction policy.
    for (int i = 0; i < 1000 && !stop.load(); ++i) {
      Status s = db->Write("s", 2000 + i, 1.0 * i);
      if (!s.ok()) break;
      ++written;
      if (i % 16 == 0) std::this_thread::sleep_for(milliseconds(1));
    }
  });

  for (int round = 0; round < 200; ++round) {
    ASSERT_OK_AND_ASSIGN(M4Result got, db->QueryM4("s", query, nullptr));
    ASSERT_TRUE(ResultsEquivalent(expected, got))
        << "round " << round << ": " << FirstMismatch(expected, got);
  }
  stop = true;
  writer.join();
  db->StopMaintenance();
  EXPECT_GT(written.load(), 0);

  // Quiesced store agrees too, and background work actually happened.
  ASSERT_OK_AND_ASSIGN(M4Result final_result, db->QueryM4("s", query, nullptr));
  EXPECT_TRUE(ResultsEquivalent(expected, final_result))
      << FirstMismatch(expected, final_result);
  uint64_t bg_runs = 0;
  for (const bg::JobInfo& info : db->maintenance().ListJobs()) {
    if (info.type == "flush" || info.type == "compact" || info.type == "ttl") {
      bg_runs += info.runs;
    }
  }
  EXPECT_GT(bg_runs, 0u);
  // TTL kept its hands off the window: everything below the final watermark
  // is gone, everything in [1000, 2000) plus the writer's points remain.
  ASSERT_OK_AND_ASSIGN(TsStore * store, db->GetSeries("s"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> window,
      ReadMergedSeries(*store, TimeRange(1000, 1999), nullptr));
  EXPECT_EQ(window.size(), 500u);
}

// Crash-recovery: ingest with background auto-flush racing the writer, then
// drop the database without flushing the tail (it survives only in the WAL,
// possibly spread across a rotated segment pair). Reopening must replay to
// exactly the state of a control database that never ran maintenance.
TEST(MaintenanceRecoveryTest, WalReplayMatchesNeverCrashedStore) {
  TempDir crashed_dir;
  TempDir control_dir;
  auto ingest = [](Database* db) {
    for (int i = 0; i < 700; ++i) {
      ASSERT_OK(db->Write("s", i * 3, std::cos(i * 0.05) * 50));
      if (i % 2 == 0) {
        ASSERT_OK(db->Write("s", i * 3, std::cos(i * 0.05) * 50 + 1));
      }
    }
  };
  {
    DatabaseConfig config = SmallConfig(crashed_dir.path());
    config.maintenance.tick_interval = milliseconds(1);
    config.maintenance.memtable_flush_bytes = 48 * 16;
    config.maintenance.compaction_files = 2;
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(config));
    db->StartMaintenance();
    ingest(db.get());
    // No FlushAll: whatever the policy didn't flush lives only in the WAL.
    // ~Database stops the scheduler but never flushes memtables.
  }
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(ManualTickConfig(control_dir.path())));
    ingest(db.get());
  }

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> crashed,
                       Database::Open(ManualTickConfig(crashed_dir.path())));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> control,
                       Database::Open(ManualTickConfig(control_dir.path())));
  ASSERT_OK_AND_ASSIGN(TsStore * crashed_store, crashed->GetSeries("s"));
  ASSERT_OK_AND_ASSIGN(TsStore * control_store, control->GetSeries("s"));

  // Reads only see flushed state; flush both twins so the comparison
  // covers the WAL-replayed tails too. The crashed store holds whatever
  // maintenance flushed before the crash plus its replayed remainder, the
  // control store everything in one memtable — after a flush both must
  // read back the identical full dataset.
  ASSERT_OK(crashed->FlushAll());
  ASSERT_OK(control->FlushAll());

  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> crashed_points,
      ReadMergedSeries(*crashed_store, TimeRange(0, 3000), nullptr));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Point> control_points,
      ReadMergedSeries(*control_store, TimeRange(0, 3000), nullptr));
  EXPECT_EQ(crashed_points.size(), 700u);  // one live value per timestamp
  EXPECT_EQ(crashed_points, control_points);

  const M4Query query{0, 2100, 50};
  ASSERT_OK_AND_ASSIGN(M4Result crashed_m4,
                       crashed->QueryM4("s", query, nullptr));
  ASSERT_OK_AND_ASSIGN(M4Result control_m4,
                       control->QueryM4("s", query, nullptr));
  EXPECT_TRUE(ResultsEquivalent(crashed_m4, control_m4))
      << FirstMismatch(crashed_m4, control_m4);
}

}  // namespace
}  // namespace tsviz
