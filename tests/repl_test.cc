// Replication subsystem tests: record framing and chain hashing, the
// primary's replication log, and end-to-end primary/follower pairs over
// loopback — bootstrap, live streaming, watermark resume, divergence
// quarantine + resync, follower read gating (read-only writes, bounded
// staleness) and the SQL/server surface (SHOW REPLICATION, SET replica_of,
// the replica_lag_ms trailer row).

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "db/database.h"
#include "net/client_channel.h"
#include "repl/log.h"
#include "repl/record.h"
#include "server/server.h"
#include "sql/executor.h"
#include "test_util.h"

namespace tsviz {
namespace {

using repl::ChainHash;
using repl::DecodeFrame;
using repl::EncodeFrame;
using repl::HexDecode;
using repl::HexEncode;
using repl::kChainSeed;
using repl::ReplLog;
using repl::ReplOp;
using repl::ReplRecord;

DatabaseConfig TestConfig(const std::string& root) {
  DatabaseConfig config;
  config.root_dir = root;
  config.series_defaults.points_per_chunk = 50;
  config.series_defaults.memtable_flush_threshold = 100000;
  return config;
}

// Polls `pred` until it holds or `deadline_ms` passes.
bool WaitUntil(const std::function<bool()>& pred, int deadline_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// The follower has applied everything the primary has logged and left the
// SYNCING quarantine.
bool CaughtUp(Database& follower, Database& primary) {
  const ReplicationStatus fs = follower.replication_status();
  const ReplicationStatus ps = primary.replication_status();
  return fs.state == "STREAMING" && fs.last_seq == ps.last_seq;
}

void AssertM4Identical(Database& got_db, Database& want_db,
                       const std::string& series, Timestamp start,
                       Timestamp end, int64_t spans,
                       const std::string& label) {
  const M4Query query{start, end, spans};
  M4Result got;
  M4Result want;
  ASSERT_OK_AND_ASSIGN(got, got_db.QueryM4(series, query, nullptr));
  ASSERT_OK_AND_ASSIGN(want, want_db.QueryM4(series, query, nullptr));
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].has_data, want[i].has_data) << label << " span " << i;
    if (!got[i].has_data) continue;
    EXPECT_EQ(got[i].first, want[i].first) << label << " span " << i;
    EXPECT_EQ(got[i].last, want[i].last) << label << " span " << i;
    EXPECT_EQ(got[i].bottom, want[i].bottom) << label << " span " << i;
    EXPECT_EQ(got[i].top, want[i].top) << label << " span " << i;
  }
}

// --- record framing ------------------------------------------------------

TEST(ReplRecordTest, FrameRoundTripsAndChains) {
  ReplRecord first;
  first.seq = 1;
  first.op = ReplOp::kPutBatch;
  first.series = "temp";
  first.payload = repl::EncodePointsPayload({{10, 1.5}, {20, -2.5}});
  first.chain =
      ChainHash(kChainSeed, first.seq, first.op, first.series, first.payload);

  ReplRecord second;
  second.seq = 2;
  second.op = ReplOp::kDeleteRange;
  second.series = "temp";
  second.payload = repl::EncodeRangePayload(TimeRange(5, 15));
  second.chain = ChainHash(first.chain, second.seq, second.op, second.series,
                           second.payload);

  std::string bytes;
  EncodeFrame(first, &bytes);
  EncodeFrame(second, &bytes);

  std::string_view cursor = bytes;
  ASSERT_OK_AND_ASSIGN(ReplRecord got1, DecodeFrame(&cursor, kChainSeed));
  EXPECT_EQ(got1, first);
  ASSERT_OK_AND_ASSIGN(ReplRecord got2, DecodeFrame(&cursor, got1.chain));
  EXPECT_EQ(got2, second);
  EXPECT_TRUE(cursor.empty());

  ASSERT_OK_AND_ASSIGN(std::vector<Point> points,
                       repl::DecodePointsPayload(got1.payload));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t, 10);
  EXPECT_EQ(points[1].v, -2.5);
  ASSERT_OK_AND_ASSIGN(TimeRange range,
                       repl::DecodeRangePayload(got2.payload));
  EXPECT_EQ(range, TimeRange(5, 15));
}

TEST(ReplRecordTest, CorruptionAndWrongChainAreDetected) {
  ReplRecord record;
  record.seq = 1;
  record.op = ReplOp::kDropSeries;
  record.series = "doomed";
  record.chain = ChainHash(kChainSeed, 1, record.op, record.series, "");
  std::string bytes;
  EncodeFrame(record, &bytes);

  // Every single-byte flip must fail the decode: the chain hash covers the
  // whole body and the trailing hash itself cannot be forged.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    std::string_view cursor = mutated;
    EXPECT_FALSE(DecodeFrame(&cursor, kChainSeed).ok()) << "byte " << i;
  }
  // A pristine frame against the wrong previous chain is a divergence, not
  // a valid record.
  std::string_view cursor = bytes;
  EXPECT_FALSE(DecodeFrame(&cursor, kChainSeed ^ 1).ok());
  // A truncated frame is a torn tail.
  std::string torn = bytes.substr(0, bytes.size() - 3);
  cursor = torn;
  EXPECT_FALSE(DecodeFrame(&cursor, kChainSeed).ok());
}

TEST(ReplRecordTest, HexCodec) {
  const std::string bytes("\x00\x7f\xff\x10zz", 6);
  const std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex, "007fff107a7a");
  ASSERT_OK_AND_ASSIGN(std::string back, HexDecode(hex));
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // bad digit
}

// --- the replication log -------------------------------------------------

TEST(ReplLogTest, AppendReadChainAndReopen) {
  TempDir dir;
  const std::string path = dir.path() + "/log";
  uint64_t chain5 = 0;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ReplLog> log,
                         ReplLog::Open(path, /*durable=*/false));
    EXPECT_EQ(log->last_seq(), 0u);
    ASSERT_OK_AND_ASSIGN(uint64_t seed, log->ChainAt(0));
    EXPECT_EQ(seed, kChainSeed);
    for (uint64_t i = 1; i <= 5; ++i) {
      uint64_t seq = 0;
      const ReplOp op = i % 2 ? ReplOp::kPutBatch : ReplOp::kDeleteRange;
      const std::string payload =
          i % 2 ? repl::EncodePointsPayload(
                      {{static_cast<Timestamp>(i), 1.0 * i}})
                : repl::EncodeRangePayload(TimeRange(0, i));
      ASSERT_OK(log->Append(op, "s" + std::to_string(i), payload, &seq));
      EXPECT_EQ(seq, i);
    }
    EXPECT_EQ(log->last_seq(), 5u);
    ASSERT_OK_AND_ASSIGN(chain5, log->ChainAt(5));
    EXPECT_FALSE(log->ChainAt(6).ok());

    ASSERT_OK_AND_ASSIGN(std::vector<ReplRecord> all, log->Read(1, 100));
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].seq, 1u);
    EXPECT_EQ(all[4].series, "s5");
    ASSERT_OK_AND_ASSIGN(std::vector<ReplRecord> mid, log->Read(3, 2));
    ASSERT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid[0].seq, 3u);
    EXPECT_EQ(mid[1].seq, 4u);
    ASSERT_OK_AND_ASSIGN(std::vector<ReplRecord> none, log->Read(6, 10));
    EXPECT_TRUE(none.empty());
    EXPECT_FALSE(log->Read(0, 1).ok());
    EXPECT_FALSE(log->Read(7, 1).ok());
  }
  // Reopen: the index rebuilds from the file and the chain continues.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ReplLog> log,
                       ReplLog::Open(path, /*durable=*/false));
  EXPECT_EQ(log->last_seq(), 5u);
  ASSERT_OK_AND_ASSIGN(uint64_t chain5_again, log->ChainAt(5));
  EXPECT_EQ(chain5_again, chain5);
  uint64_t seq = 0;
  ASSERT_OK(log->Append(ReplOp::kDropSeries, "s1", "", &seq));
  EXPECT_EQ(seq, 6u);
}

TEST(ReplLogTest, TornTailTruncatedOnOpen) {
  TempDir dir;
  const std::string path = dir.path() + "/log";
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<ReplLog> log,
                         ReplLog::Open(path, false));
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK(log->Append(ReplOp::kPutBatch, "s",
                            repl::EncodePointsPayload({{i, 1.0}})));
    }
  }
  {
    // Simulate a crash mid-append: garbage (a plausible length prefix with
    // a short body) lands past the last committed record.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00partial", 11);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ReplLog> log, ReplLog::Open(path, false));
  EXPECT_EQ(log->last_seq(), 3u);
  // The torn bytes are gone: the next append lands cleanly and re-reads.
  uint64_t seq = 0;
  ASSERT_OK(log->Append(ReplOp::kPutBatch, "s",
                        repl::EncodePointsPayload({{9, 9.0}}), &seq));
  EXPECT_EQ(seq, 4u);
  ASSERT_OK_AND_ASSIGN(std::vector<ReplRecord> all, log->Read(1, 100));
  ASSERT_EQ(all.size(), 4u);
}

// --- end-to-end primary/follower pairs -----------------------------------

TEST(ReplicationTest, BootstrapAndLiveStreamingConverge) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                       Database::Open(TestConfig(primary_dir.path())));
  // Pre-replication history: the baseline bootstrap must carry it over.
  std::vector<Point> history;
  for (int64_t t = 0; t < 200; ++t) {
    history.push_back({t, static_cast<double>(t) * 0.5});
  }
  ASSERT_OK(primary->WriteBatch("temp", history));
  ASSERT_OK(primary->Write("doomed", 1, 1.0));
  ASSERT_OK(primary->EnablePrimary(0));
  const int port = primary->repl_port();
  ASSERT_GT(port, 0);
  EXPECT_EQ(primary->replication_role(), ReplicationRole::kPrimary);

  // Live mutations after the log exists: every replicated op kind.
  std::vector<Point> live;
  for (int64_t t = 200; t < 400; ++t) {
    live.push_back({t, 1000.0 - static_cast<double>(t)});
  }
  ASSERT_OK(primary->WriteBatch("temp", live));
  ASSERT_OK(primary->DeleteRange("temp", TimeRange(50, 99)));
  ASSERT_OK(primary->DropSeries("doomed"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", port));
  EXPECT_TRUE(follower->IsReplica());
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }))
      << "follower state: " << follower->replication_status().state
      << " applied " << follower->replication_status().last_seq << "/"
      << primary->replication_status().last_seq;

  ASSERT_OK(primary->FlushAll());
  ASSERT_OK(follower->FlushAll());
  EXPECT_EQ(follower->ListSeries(), std::vector<std::string>{"temp"});
  AssertM4Identical(*follower, *primary, "temp", 0, 400, 25, "bootstrap");

  // Still live: another burst streams through and converges again.
  ASSERT_OK(primary->WriteBatch("temp", {{400, 7.0}, {401, -7.0}}));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));
  AssertM4Identical(*follower, *primary, "temp", 0, 402, 25, "live burst");

  const ReplicationStatus status = follower->replication_status();
  EXPECT_EQ(status.role, ReplicationRole::kReplica);
  EXPECT_EQ(status.primary, "127.0.0.1:" + std::to_string(port));
  EXPECT_EQ(status.divergences, 0u);
  EXPECT_EQ(follower->replication_lag_ms(), 0);
  ASSERT_OK(follower->CheckReplicaRead());
}

TEST(ReplicationTest, FollowerResumesFromDurableWatermark) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                       Database::Open(TestConfig(primary_dir.path())));
  ASSERT_OK(primary->EnablePrimary(0));
  const int port = primary->repl_port();
  ASSERT_OK(primary->WriteBatch("s", {{1, 1.0}, {2, 2.0}, {3, 3.0}}));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", port));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));
  const uint64_t applied_before = follower->replication_status().last_seq;
  ASSERT_GT(applied_before, 0u);
  ASSERT_OK(follower->DisableReplica());
  EXPECT_EQ(follower->replication_role(), ReplicationRole::kStandalone);

  // The durable watermark survives the detach.
  std::ifstream watermark(follower_dir.path() + "/repl/watermark");
  uint64_t persisted = 0;
  watermark >> persisted;
  EXPECT_EQ(persisted, applied_before);

  // New history lands while the follower is away; re-attach resumes from
  // the watermark (no divergence, no wipe) and converges.
  ASSERT_OK(primary->WriteBatch("s", {{4, 4.0}, {5, 5.0}}));
  ASSERT_OK(primary->DeleteRange("s", TimeRange(2, 2)));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", port));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));
  EXPECT_GT(follower->replication_status().last_seq, applied_before);
  EXPECT_EQ(follower->replication_status().divergences, 0u);
  ASSERT_OK(primary->FlushAll());
  ASSERT_OK(follower->FlushAll());
  AssertM4Identical(*follower, *primary, "s", 0, 6, 3, "resume");
}

TEST(ReplicationTest, DivergenceQuarantinesAndResyncs) {
  TempDir a_dir;
  TempDir b_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> a,
                       Database::Open(TestConfig(a_dir.path())));
  ASSERT_OK(a->EnablePrimary(0));
  ASSERT_OK(a->WriteBatch("alpha", {{1, 1.0}, {2, 2.0}}));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", a->repl_port()));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *a); }));
  ASSERT_OK(follower->DisableReplica());

  // A different primary with an incompatible history: the follower's
  // watermark chain can never verify against B's log.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> b,
                       Database::Open(TestConfig(b_dir.path())));
  ASSERT_OK(b->EnablePrimary(0));
  ASSERT_OK(b->WriteBatch("beta", {{1, -1.0}, {2, -2.0}, {3, -3.0}}));

  ASSERT_OK(follower->EnableReplica("127.0.0.1", b->repl_port()));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *b); }))
      << "state: " << follower->replication_status().state;
  const ReplicationStatus status = follower->replication_status();
  EXPECT_GE(status.divergences, 1u);
  // The wipe dropped A's history; only B's survives the resync.
  EXPECT_EQ(follower->ListSeries(), std::vector<std::string>{"beta"});
  ASSERT_OK(b->FlushAll());
  ASSERT_OK(follower->FlushAll());
  AssertM4Identical(*follower, *b, "beta", 0, 4, 2, "post-resync");
}

TEST(ReplicationTest, FollowerRejectsClientWritesRetryably) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                       Database::Open(TestConfig(primary_dir.path())));
  ASSERT_OK(primary->EnablePrimary(0));
  ASSERT_OK(primary->Write("s", 1, 1.0));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", primary->repl_port()));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));

  for (const Status& rejected :
       {follower->Write("s", 9, 9.0),
        follower->WriteBatch("s", {{9, 9.0}}),
        follower->DeleteRange("s", TimeRange(0, 9)),
        follower->DropSeries("s")}) {
    EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(rejected.retryable());
    EXPECT_NE(rejected.ToString().find("read-only replica"),
              std::string::npos);
  }
  // The SQL surface reports the same rejection.
  const Status sql =
      sql::ExecuteQuery(follower.get(), "INSERT INTO s VALUES (9, 9.0)")
          .status();
  EXPECT_EQ(sql.code(), StatusCode::kUnavailable);

  // Becoming a primary while a replica is a guarded transition.
  EXPECT_EQ(follower->EnablePrimary(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(primary->EnableReplica("127.0.0.1", 9).code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplicationTest, BoundedStalenessGatesFollowerReads) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(dir.path())));
  // A primary that never answers: lag grows from the moment of attach.
  ASSERT_OK(follower->EnableReplica("127.0.0.1", 1));
  ASSERT_OK(follower->ApplySetting("max_staleness_ms", 1));
  ASSERT_TRUE(WaitUntil([&] { return !follower->CheckReplicaRead().ok(); },
                        5000));
  const Status stale = follower->CheckReplicaRead();
  EXPECT_EQ(stale.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(stale.retryable());
  EXPECT_NE(stale.ToString().find("max_staleness_ms"), std::string::npos);

  // The executor's SELECT path enforces the bound before touching series.
  const Status select =
      sql::ExecuteQuery(follower.get(), "SELECT v FROM anything").status();
  EXPECT_EQ(select.code(), StatusCode::kUnavailable);
  EXPECT_NE(select.ToString().find("max_staleness_ms"), std::string::npos);

  // No bound (0): reads are governed by the application again.
  ASSERT_OK(follower->ApplySetting("max_staleness_ms", 0));
  EXPECT_OK(follower->CheckReplicaRead());
}

// --- SQL and server surface ----------------------------------------------

std::string RowValue(const sql::ResultSet& rows, const std::string& key) {
  const std::string csv = rows.ToCsv();
  const std::string needle = key + ",";
  size_t pos = csv.find(needle);
  if (pos == std::string::npos) return "<missing " + key + ">";
  pos += needle.size();
  return csv.substr(pos, csv.find('\n', pos) - pos);
}

TEST(ReplicationSqlTest, ShowReplicationAndSetKnobs) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                       Database::Open(TestConfig(primary_dir.path())));
  ASSERT_OK_AND_ASSIGN(sql::ResultSet rows,
                       sql::ExecuteQuery(primary.get(), "SHOW REPLICATION"));
  EXPECT_EQ(RowValue(rows, "role"), "STANDALONE");

  // SET repl_listen_port = 0 on a standalone node is a no-op disable; an
  // ephemeral bind comes from the Database API (SQL has no port 0 idiom
  // that would be useful to a real deployment, but it works the same way).
  ASSERT_OK(primary->EnablePrimary(0));
  const int port = primary->repl_port();
  ASSERT_OK(primary->WriteBatch("temp", {{1, 1.0}, {2, 2.0}}));
  ASSERT_OK_AND_ASSIGN(rows,
                       sql::ExecuteQuery(primary.get(), "SHOW REPLICATION"));
  EXPECT_EQ(RowValue(rows, "role"), "PRIMARY");
  EXPECT_EQ(RowValue(rows, "state"), "SERVING");
  EXPECT_EQ(RowValue(rows, "listen_port"), std::to_string(port));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  // Attach through SQL: the quoted-string SET form.
  ASSERT_OK(sql::ExecuteQuery(
                follower.get(),
                "SET replica_of = '127.0.0.1:" + std::to_string(port) + "'")
                .status());
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));
  ASSERT_OK_AND_ASSIGN(rows,
                       sql::ExecuteQuery(follower.get(), "SHOW REPLICATION"));
  EXPECT_EQ(RowValue(rows, "role"), "REPLICA");
  EXPECT_EQ(RowValue(rows, "state"), "STREAMING");
  EXPECT_EQ(RowValue(rows, "primary"),
            "127.0.0.1:" + std::to_string(port));

  // Detach through SQL: the bare-word form.
  ASSERT_OK(sql::ExecuteQuery(follower.get(), "SET replica_of = off")
                .status());
  ASSERT_OK_AND_ASSIGN(rows,
                       sql::ExecuteQuery(follower.get(), "SHOW REPLICATION"));
  EXPECT_EQ(RowValue(rows, "role"), "STANDALONE");

  // Malformed targets are rejected without changing the role.
  EXPECT_FALSE(
      sql::ExecuteQuery(follower.get(), "SET replica_of = 'noport'").ok());
  EXPECT_EQ(RowValue(rows, "role"), "STANDALONE");
}

TEST(ReplicationServerTest, FollowerSelectCarriesLagRowAndRetryableErrors) {
  TempDir primary_dir;
  TempDir follower_dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> primary,
                       Database::Open(TestConfig(primary_dir.path())));
  ASSERT_OK(primary->EnablePrimary(0));
  ASSERT_OK(primary->WriteBatch("temp", {{1, 1.0}, {2, 2.0}, {3, 3.0}}));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> follower,
                       Database::Open(TestConfig(follower_dir.path())));
  ASSERT_OK(follower->EnableReplica("127.0.0.1", primary->repl_port()));
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(*follower, *primary); }));
  ASSERT_OK(follower->FlushAll());

  SqlServer server(follower.get());
  ASSERT_OK(server.Start(0));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<net::ClientChannel> client,
      net::ClientChannel::Connect("127.0.0.1", server.port(), 1000));

  // A follower SELECT reply ends with the replica_lag_ms trailer row.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> reply,
                       client->Call("SELECT count(v) FROM temp", 2000));
  ASSERT_GE(reply.size(), 2u);
  EXPECT_EQ(reply.back().rfind("replica_lag_ms,", 0), 0u) << reply.back();

  // A rejected follower write names the condition and flags retryability.
  ASSERT_OK_AND_ASSIGN(reply,
                       client->Call("INSERT INTO temp VALUES (9, 9.0)", 2000));
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0].rfind("ERROR: ", 0), 0u);
  EXPECT_NE(reply[0].find("read-only replica"), std::string::npos);
  EXPECT_NE(reply[0].find("(retryable)"), std::string::npos);

  // Non-retryable errors carry no such suffix.
  ASSERT_OK_AND_ASSIGN(reply, client->Call("SELECT v FROM ghost", 2000));
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0].rfind("ERROR: ", 0), 0u);
  EXPECT_EQ(reply[0].find("(retryable)"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace tsviz
