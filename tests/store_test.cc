#include "storage/store.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "test_util.h"

namespace tsviz {
namespace {

StoreConfig TestConfig(const std::string& dir, size_t chunk = 100) {
  StoreConfig config;
  config.data_dir = dir;
  config.points_per_chunk = chunk;
  config.memtable_flush_threshold = chunk;
  config.encoding.page_size_points = 25;
  return config;
}

TEST(StoreTest, OpenRequiresValidConfig) {
  EXPECT_EQ(TsStore::Open(StoreConfig{}).status().code(),
            StatusCode::kInvalidArgument);
  StoreConfig config;
  config.data_dir = "/tmp/tsviz_store_cfg";
  config.points_per_chunk = 0;
  EXPECT_EQ(TsStore::Open(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, WriteFlushProducesChunksWithVersions) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 250; ++i) {
    ASSERT_OK(store->Write(i * 10, i * 1.0));
  }
  ASSERT_OK(store->Flush());  // flush the 50-point remainder
  ASSERT_EQ(store->chunks().size(), 3u);
  EXPECT_EQ(store->chunks()[0].meta->count, 100u);
  EXPECT_EQ(store->chunks()[2].meta->count, 50u);
  // Versions strictly increase in flush order.
  EXPECT_LT(store->chunks()[0].meta->version,
            store->chunks()[1].meta->version);
  EXPECT_LT(store->chunks()[1].meta->version,
            store->chunks()[2].meta->version);
  EXPECT_EQ(store->TotalStoredPoints(), 250u);
  EXPECT_EQ(store->DataInterval(), TimeRange(0, 2490));
}

TEST(StoreTest, MemtableLastWriteWins) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->Write(5, 1.0));
  ASSERT_OK(store->Write(5, 2.0));
  EXPECT_EQ(store->memtable_size(), 1u);
  ASSERT_OK(store->Flush());
  LazyChunk chunk(store->chunks()[0], nullptr);
  ASSERT_OK_AND_ASSIGN(std::vector<Point> points, chunk.ReadAllPoints());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].v, 2.0);
}

TEST(StoreTest, FlushOnEmptyMemtableIsNoop) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  ASSERT_OK(store->Flush());
  EXPECT_TRUE(store->chunks().empty());
}

TEST(StoreTest, DeleteRangeAssignsIncreasingVersions) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i, 0.0));
  ASSERT_OK(store->DeleteRange(TimeRange(10, 20)));
  ASSERT_OK(store->DeleteRange(TimeRange(50, 60)));
  ASSERT_EQ(store->deletes().size(), 2u);
  Version chunk_version = store->chunks()[0].meta->version;
  EXPECT_GT(store->deletes()[0].version, chunk_version);
  EXPECT_GT(store->deletes()[1].version, store->deletes()[0].version);
}

TEST(StoreTest, RejectsNonFiniteValues) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_EQ(store->Write(1, std::numeric_limits<double>::quiet_NaN()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->Write(1, std::numeric_limits<double>::infinity()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->Write(1, -std::numeric_limits<double>::infinity()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->memtable_size(), 0u);
  ASSERT_OK(store->Write(1, 1.0));  // finite values still fine
}

TEST(StoreTest, RejectsEmptyDeleteRange) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_EQ(store->DeleteRange(TimeRange(10, 5)).code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, RecoveryRestoresChunksDeletesAndVersionCounter) {
  TempDir dir;
  Version last_delete_version;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                         TsStore::Open(TestConfig(dir.path())));
    for (int i = 0; i < 300; ++i) ASSERT_OK(store->Write(i * 2, i * 1.5));
    ASSERT_OK(store->Flush());
    ASSERT_OK(store->DeleteRange(TimeRange(100, 200)));
    last_delete_version = store->deletes()[0].version;
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_EQ(store->chunks().size(), 3u);
  ASSERT_EQ(store->deletes().size(), 1u);
  EXPECT_EQ(store->deletes()[0].range, TimeRange(100, 200));
  EXPECT_EQ(store->deletes()[0].version, last_delete_version);
  EXPECT_EQ(store->TotalStoredPoints(), 300u);

  // New operations continue the version sequence past recovered state.
  ASSERT_OK(store->DeleteRange(TimeRange(0, 1)));
  EXPECT_GT(store->deletes()[1].version, last_delete_version);
}

TEST(StoreTest, SequentialWritesProduceDisjointChunks) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  for (int i = 0; i < 1000; ++i) ASSERT_OK(store->Write(i, 0.0));
  EXPECT_EQ(store->OverlapFraction(), 0.0);
}

TEST(StoreTest, OutOfOrderWritesProduceOverlappingChunks) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // Two interleaved flushes covering the same time region.
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i * 2, 0.0));
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i * 2 + 1, 0.0));
  ASSERT_EQ(store->chunks().size(), 2u);
  EXPECT_EQ(store->OverlapFraction(), 1.0);
}

TEST(StoreTest, SequenceVsUnsequenceFiles) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  // Three in-order flushes: all sequence files.
  for (int i = 0; i < 300; ++i) ASSERT_OK(store->Write(i, 0.0));
  EXPECT_EQ(store->NumFiles(), 3u);
  EXPECT_EQ(store->CountUnsequenceFiles(), 0u);
  // A late batch covering old time territory: one unsequence file.
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(i * 2 + 1, 1.0));
  EXPECT_EQ(store->NumFiles(), 4u);
  EXPECT_EQ(store->CountUnsequenceFiles(), 1u);
  // Back to the future: sequence again.
  for (int i = 0; i < 100; ++i) ASSERT_OK(store->Write(10000 + i, 0.0));
  EXPECT_EQ(store->CountUnsequenceFiles(), 1u);
}

TEST(StoreTest, AutoFlushOnThreshold) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path(), 10)));
  for (int i = 0; i < 10; ++i) ASSERT_OK(store->Write(i, 0.0));
  EXPECT_EQ(store->memtable_size(), 0u);  // flushed automatically
  EXPECT_EQ(store->chunks().size(), 1u);
}

TEST(StoreTest, DataIntervalEmptyWhenNoChunks) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TsStore> store,
                       TsStore::Open(TestConfig(dir.path())));
  EXPECT_TRUE(store->DataInterval().Empty());
}

}  // namespace
}  // namespace tsviz
